"""Shared configuration for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation at
a reduced scale (see DESIGN.md §3), prints the series the figure plots, and
saves the rows under ``results/``.  ``pytest benchmarks/ --benchmark-only``
runs the full harness.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Scale applied to the synthetic dataset analogues for the benchmark runs.
BENCH_SCALE = 0.1

#: Directory where every benchmark saves its rows (text + JSON).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(rows, columns, title, filename, results_path: Path) -> None:
    """Print a figure's series and persist it under ``results/``."""
    from repro.bench import format_table, save_rows

    table = format_table(rows, columns=columns, title=title)
    print("\n" + table)
    save_rows(rows, results_path / filename, columns=columns, title=title)
