"""Batch-ingestion speedup — ``insert_batch`` versus per-item ``insert``.

Replays a 100k-edge synthetic stream (power-law vertex popularity, ~10 items
per time slice, the regime of the paper's real traces) into every method
twice — per-item and batched — and reports the throughput ratio.  The HIGGS
batch path (one-pass hashing, per-batch fingerprint/probe memo, deferred
upward aggregation, placement memo) typically lands at ≥2×; the assertion
threshold below is set lower to absorb shared-machine noise.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments


def test_batch_ingestion_speedup(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_batch_speedup(),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "method", "items", "per_item_eps", "batch_eps",
                  "speedup"],
         title="Batch Ingestion Speedup (insert_batch vs insert)",
         filename="batch_speedup.txt", results_path=results_dir)

    speedups = {row["method"]: row["speedup"] for row in rows}
    # Wall-clock ratios flake on noisy shared runners, so only the methods
    # with a structural batch win are asserted, and with generous margin
    # (typical local ratios: HIGGS ~2×, Horae/AuxoTime ~2.1-2.4×).  The full
    # table is persisted to results/ for inspection either way.
    assert speedups["HIGGS"] >= 1.3, speedups
    assert speedups["Horae"] >= 1.3, speedups
    assert speedups["AuxoTime"] >= 1.3, speedups
