"""Figure 2 — skewness of vertex degrees (paper Section I).

The paper plots the degree distribution of each dataset to motivate that
graph streams are irregular; this benchmark reports the equivalent skewness
statistics for the synthetic analogues.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig02_degree_skewness(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig2_skewness(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "vertices", "edges", "max_out_degree",
                  "mean_out_degree", "median_out_degree", "degree_gini",
                  "top1pct_edge_share"],
         title="Figure 2: Skewness of Vertex Degrees",
         filename="fig02_skewness.txt", results_path=results_dir)
    assert len(rows) == 3
    # Power-law analogues: the maximum degree dwarfs the median.
    assert all(row["max_out_degree"] > 10 * max(1, row["median_out_degree"])
               for row in rows)
