"""Figure 3 — irregularity of graph stream item arrivals (paper Section I).

Reports the per-time-slice arrival statistics (hot intervals) of each
synthetic dataset analogue.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig03_arrival_irregularity(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig3_irregularity(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "edges", "time_bins", "mean_edges_per_bin",
                  "peak_edges_per_bin", "peak_to_mean_ratio", "arrival_variance"],
         title="Figure 3: Irregularity of Graph Stream Item Arrivals",
         filename="fig03_irregularity.txt", results_path=results_dir)
    assert len(rows) == 3
    # Bursty arrivals: the hottest slice is well above the average slice.
    assert all(row["peak_to_mean_ratio"] > 1.5 for row in rows)
