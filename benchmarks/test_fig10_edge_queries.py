"""Figure 10 — edge queries: AAE, ARE and latency versus the query-range
length Lq, for all six methods on all three datasets.

Paper shape to check: HIGGS has (near-)zero error at every Lq and never
underestimates; the top-down baselines' errors grow with Lq; PGSS is the
least accurate.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import BENCH_SCALE, emit

from repro.bench import experiments

RANGE_LENGTHS = (10, 100, 1_000, 10_000)
QUERIES_PER_LENGTH = 150


def test_fig10_edge_queries(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig10_edge_queries(
            scale=BENCH_SCALE, range_lengths=RANGE_LENGTHS,
            queries_per_length=QUERIES_PER_LENGTH),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "range_length", "method", "aae", "are",
                  "latency_us", "underestimates"],
         title="Figure 10: Edge Queries (AAE / ARE / latency vs Lq)",
         filename="fig10_edge_queries.txt", results_path=results_dir)

    higgs_rows = [row for row in rows if row["method"] == "HIGGS"]
    assert higgs_rows and all(row["underestimates"] == 0 for row in higgs_rows)

    # HIGGS is at least as accurate as every baseline on every (dataset, Lq).
    by_setting = defaultdict(dict)
    for row in rows:
        by_setting[(row["dataset"], row["range_length"])][row["method"]] = row["aae"]
    for setting, per_method in by_setting.items():
        for method, aae in per_method.items():
            assert per_method["HIGGS"] <= aae + 1e-9, (setting, method)
