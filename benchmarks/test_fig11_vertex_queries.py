"""Figure 11 — vertex queries: AAE, ARE and latency versus the query-range
length Lq (same sweep as Fig. 10 but on the vertex-query primitive).
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments

RANGE_LENGTHS = (10, 100, 1_000, 10_000)
QUERIES_PER_LENGTH = 120  # divided by 4 internally for vertex workloads


def test_fig11_vertex_queries(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig11_vertex_queries(
            scale=BENCH_SCALE, range_lengths=RANGE_LENGTHS,
            queries_per_length=QUERIES_PER_LENGTH),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "range_length", "method", "aae", "are",
                  "latency_us", "underestimates"],
         title="Figure 11: Vertex Queries (AAE / ARE / latency vs Lq)",
         filename="fig11_vertex_queries.txt", results_path=results_dir)

    higgs_rows = [row for row in rows if row["method"] == "HIGGS"]
    assert higgs_rows and all(row["underestimates"] == 0 for row in higgs_rows)
    assert all(row["queries"] > 0 for row in rows)
