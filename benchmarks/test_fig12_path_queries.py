"""Figure 12 — path queries: AAE, ARE and latency versus the number of hops
(1-7), with the temporal range fixed.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments

HOPS = (1, 2, 3, 4, 5, 6, 7)


def test_fig12_path_queries(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig12_path_queries(
            scale=BENCH_SCALE, hops=HOPS, queries_per_setting=25),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "hops", "method", "aae", "are", "latency_us"],
         title="Figure 12: Path Queries (AAE / ARE / latency vs hops)",
         filename="fig12_path_queries.txt", results_path=results_dir)

    assert {row["hops"] for row in rows} == set(HOPS)
    # Longer paths cost more per query for every method (more edge queries).
    for method in {row["method"] for row in rows}:
        one_hop = [r["latency_us"] for r in rows
                   if r["method"] == method and r["hops"] == 1]
        seven_hop = [r["latency_us"] for r in rows
                     if r["method"] == method and r["hops"] == 7]
        assert sum(seven_hop) > sum(one_hop) * 0.8
