"""Figure 13 — subgraph queries: AAE, ARE and latency versus the subgraph
size (the paper sweeps 50-350 edges; the sweep is scaled together with the
datasets).
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments

SIZES = (10, 25, 50, 75, 100)


def test_fig13_subgraph_queries(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig13_subgraph_queries(
            scale=BENCH_SCALE, sizes=SIZES, queries_per_setting=10),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "subgraph_size", "method", "aae", "are",
                  "latency_us"],
         title="Figure 13: Subgraph Queries (AAE / ARE / latency vs size)",
         filename="fig13_subgraph_queries.txt", results_path=results_dir)

    assert {row["subgraph_size"] for row in rows} == set(SIZES)
    # Bigger subgraphs cost more to answer.
    for method in {row["method"] for row in rows}:
        small = [r["latency_us"] for r in rows
                 if r["method"] == method and r["subgraph_size"] == SIZES[0]]
        large = [r["latency_us"] for r in rows
                 if r["method"] == method and r["subgraph_size"] == SIZES[-1]]
        assert sum(large) > sum(small)
