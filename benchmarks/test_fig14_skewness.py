"""Figure 14 — vertex queries and update cost under varied degree skewness.

Six synthetic streams with power-law exponents 1.5-3.0 (the paper's sweep,
scaled down); for each, the four panels: vertex-query AAE, vertex-query
latency, space cost, and insertion throughput.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments

SKEWNESS = (1.5, 1.8, 2.1, 2.4, 2.7, 3.0)


def test_fig14_skewness(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig14_skewness(
            skewness_values=SKEWNESS, num_vertices=1_000, num_edges=8_000,
            vertex_queries=25),
        rounds=1, iterations=1)
    emit(rows,
         columns=["skewness", "method", "aae", "latency_us", "memory_mb",
                  "throughput_eps"],
         title="Figure 14: Vertex Queries and Update Cost by Skewness",
         filename="fig14_skewness.txt", results_path=results_dir)

    assert {row["skewness"] for row in rows} == set(SKEWNESS)
    higgs = [row for row in rows if row["method"] == "HIGGS"]
    others = [row for row in rows if row["method"] != "HIGGS"]
    # HIGGS accuracy is never worse than the average baseline accuracy.
    assert sum(r["aae"] for r in higgs) / len(higgs) <= \
        sum(r["aae"] for r in others) / len(others) + 1e-9
