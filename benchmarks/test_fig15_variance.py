"""Figure 15 — vertex queries and update cost under varied arrival variance.

Six synthetic streams with per-slice arrival variance 600-1600 (the paper's
sweep, scaled down); same four panels as Fig. 14.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments

VARIANCES = (600, 800, 1000, 1200, 1400, 1600)


def test_fig15_variance(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig15_variance(
            variance_values=VARIANCES, num_vertices=1_000, num_edges=8_000,
            vertex_queries=25),
        rounds=1, iterations=1)
    emit(rows,
         columns=["variance", "method", "aae", "latency_us", "memory_mb",
                  "throughput_eps"],
         title="Figure 15: Vertex Queries and Update Cost by Variance",
         filename="fig15_variance.txt", results_path=results_dir)

    assert {row["variance"] for row in rows} == set(VARIANCES)
    assert all(row["throughput_eps"] > 0 for row in rows)
