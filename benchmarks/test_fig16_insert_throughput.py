"""Figure 16 — insertion throughput (items per second) of every method on
every dataset.  Paper shape: HIGGS leads every competitor.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig16_insert_throughput(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig16_17_update_cost(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "method", "items", "insert_seconds",
                  "throughput_eps"],
         title="Figure 16: Insertion Throughput",
         filename="fig16_insert_throughput.txt", results_path=results_dir)

    by_dataset = defaultdict(dict)
    for row in rows:
        by_dataset[row["dataset"]][row["method"]] = row["throughput_eps"]
    for dataset, per_method in by_dataset.items():
        higgs = per_method["HIGGS"]
        # HIGGS out-ingests the top-down multi-layer baselines.
        assert higgs > per_method["Horae"], dataset
        assert higgs > per_method["AuxoTime"], dataset
