"""Figure 17 — per-item insertion latency (µs) of every method on every
dataset.  Paper shape: HIGGS has the lowest latency among the TRQ methods.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig17_insert_latency(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig16_17_update_cost(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "method", "items", "latency_us"],
         title="Figure 17: Insertion Latency",
         filename="fig17_insert_latency.txt", results_path=results_dir)

    by_dataset = defaultdict(dict)
    for row in rows:
        by_dataset[row["dataset"]][row["method"]] = row["latency_us"]
    for dataset, per_method in by_dataset.items():
        assert per_method["HIGGS"] < per_method["Horae"], dataset
        assert per_method["HIGGS"] < per_method["AuxoTime"], dataset
