"""Figure 18 — deletion throughput of every method on every dataset.

A sample of previously inserted items is deleted again; the paper reports
HIGGS ahead of all baselines.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig18_delete_throughput(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig18_delete_throughput(scale=BENCH_SCALE,
                                                        delete_fraction=0.15),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "method", "deletions", "delete_seconds",
                  "throughput_dps"],
         title="Figure 18: Deletion Throughput",
         filename="fig18_delete_throughput.txt", results_path=results_dir)

    assert all(row["throughput_dps"] > 0 for row in rows)
    datasets = {row["dataset"] for row in rows}
    for dataset in datasets:
        per_method = {row["method"]: row["throughput_dps"]
                      for row in rows if row["dataset"] == dataset}
        # HIGGS deletes faster than the multi-layer baselines, which must
        # locate and update every temporal layer.
        assert per_method["HIGGS"] > per_method["AuxoTime"], dataset
