"""Figure 19 — space cost of every method on every dataset.

Paper shape: HIGGS has the lowest footprint overall (≈30 % average saving),
driven by dropping timestamps and fingerprint bits during aggregation while
the top-down baselines replicate the stream across every temporal layer.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig19_space_cost(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig19_space_cost(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "method", "items", "memory_mb", "bytes_per_item",
                  "higgs_saving_vs_method"],
         title="Figure 19: Space Cost",
         filename="fig19_space_cost.txt", results_path=results_dir)

    datasets = {row["dataset"] for row in rows}
    savings = []
    for dataset in datasets:
        per_method = {row["method"]: row["memory_mb"]
                      for row in rows if row["dataset"] == dataset}
        # HIGGS is smaller than Horae (the full multi-layer baseline) on every
        # dataset, and no more than marginally larger than any other method.
        assert per_method["HIGGS"] < per_method["Horae"], dataset
        assert per_method["HIGGS"] <= per_method["AuxoTime"] * 1.05, dataset
        savings.extend(1.0 - per_method["HIGGS"] / size
                       for name, size in per_method.items() if name != "HIGGS")
    # Averaged over all competitors and datasets the saving is positive
    # (the paper reports ~30 % on its full-size traces).
    assert sum(savings) / len(savings) > 0.0
