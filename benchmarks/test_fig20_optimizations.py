"""Figure 20 — effect of the proposed optimizations.

Panel (a): insertion throughput of HIGGS with the pipelined inserter versus
plain sequential insertion.  Panel (b): space cost without multiple mapping
buckets (MMB) and accuracy without overflow blocks (OB).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_fig20a_parallelization(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig20a_parallelization(scale=BENCH_SCALE),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "variant", "items", "insert_seconds",
                  "throughput_eps"],
         title="Figure 20(a): HIGGS Insertion Throughput by Pipeline Mode",
         filename="fig20a_parallelization.txt", results_path=results_dir)
    variants = {row["variant"] for row in rows}
    assert variants == {"HIGGS-serial", "HIGGS-batched", "HIGGS-threaded"}


def test_fig20b_mmb_and_overflow_blocks(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig20b_mmb_and_ob(scale=BENCH_SCALE,
                                                  edge_queries=120),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "variant", "memory_mb", "leaf_count", "aae", "are"],
         title="Figure 20(b): Effect of MMB (space) and Overflow Blocks (accuracy)",
         filename="fig20b_mmb_ob.txt", results_path=results_dir)

    by_dataset = defaultdict(dict)
    for row in rows:
        by_dataset[row["dataset"]][row["variant"]] = row
    for dataset, variants in by_dataset.items():
        # MMB improves space efficiency: disabling it needs more leaves/space.
        assert variants["HIGGS-noMMB"]["memory_mb"] > \
            variants["HIGGS"]["memory_mb"] * 0.95, dataset
        assert variants["HIGGS-noMMB"]["leaf_count"] >= \
            variants["HIGGS"]["leaf_count"], dataset
        # Overflow blocks never hurt accuracy.
        assert variants["HIGGS"]["aae"] <= \
            variants["HIGGS-noOB"]["aae"] + 1e-9, dataset
