"""Figure 21 — parameter analysis: the effect of the leaf matrix size d1 on
HIGGS's space overhead and query latency.

Paper shape: larger leaf matrices cost more space but answer queries faster
(fewer leaves per range); d1 = 16 is the recommended balance.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import BENCH_SCALE, emit

from repro.bench import experiments

LEAF_SIZES = (4, 8, 16, 32, 64)


def test_fig21_leaf_matrix_size(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_fig21_parameters(scale=BENCH_SCALE,
                                                 leaf_sizes=LEAF_SIZES,
                                                 edge_queries=80),
        rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "d1", "memory_mb", "latency_us", "aae",
                  "leaf_count", "height", "insert_throughput_eps"],
         title="Figure 21: Space Cost and Query Latency vs Leaf Matrix Size d1",
         filename="fig21_parameters.txt", results_path=results_dir)

    assert {row["d1"] for row in rows} == set(LEAF_SIZES)
    by_dataset = defaultdict(dict)
    for row in rows:
        by_dataset[row["dataset"]][row["d1"]] = row
    for dataset, per_size in by_dataset.items():
        # Larger leaves -> fewer leaves and a shallower tree.
        assert per_size[64]["leaf_count"] < per_size[4]["leaf_count"], dataset
        assert per_size[64]["height"] <= per_size[4]["height"], dataset
