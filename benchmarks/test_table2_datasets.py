"""Table II — dataset summary (paper Section VI-A).

Regenerates the dataset summary table for the synthetic analogues used by
this reproduction, next to the original trace sizes from the paper.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, emit

from repro.bench import experiments


def test_table2_datasets(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.run_table2(scale=BENCH_SCALE), rounds=1, iterations=1)
    emit(rows,
         columns=["dataset", "paper_nodes", "paper_edges", "paper_time_span",
                  "nodes", "edges", "time_span", "time_slice"],
         title="Table II: Summary of Datasets (paper traces vs synthetic analogues)",
         filename="table2_datasets.txt", results_path=results_dir)
    assert len(rows) == 3
    assert all(row["edges"] > 0 for row in rows)
