#!/usr/bin/env python
"""Compare HIGGS against every baseline on one dataset, end to end.

This example is a miniature version of the paper's evaluation pipeline: load
a dataset analogue, build HIGGS and the five TRQ baselines (PGSS, Horae,
Horae-cpt, AuxoTime, AuxoTime-cpt), replay the stream into each, and report
insertion throughput, space cost, and edge/vertex query accuracy (AAE/ARE)
against the exact ground truth.

Run with::

    python examples/baseline_comparison.py [dataset] [scale]

where ``dataset`` is one of ``lkml``, ``wiki_talk``, ``stackoverflow``
(default ``lkml``) and ``scale`` shrinks or grows the synthetic analogue
(default ``0.1``).
"""

from __future__ import annotations

import sys
import time

from repro.baselines import ExactTemporalGraph
from repro.bench import format_table, make_methods
from repro.queries import QueryWorkloadGenerator, evaluate_queries
from repro.streams import load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "lkml"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1

    stream = load_dataset(dataset, scale=scale)
    t_min, t_max = stream.time_span
    print(f"dataset={dataset} scale={scale}: {len(stream):,} edges, "
          f"{len(stream.vertices()):,} vertices, span {t_max - t_min + 1:,}")

    truth = ExactTemporalGraph()
    truth.insert_stream(stream)
    workload = QueryWorkloadGenerator(stream)
    edge_queries = workload.edge_queries(200, range_length=(t_max - t_min) // 3)
    vertex_queries = workload.vertex_queries(50, range_length=(t_max - t_min) // 3)

    rows = []
    for name, summary in make_methods(stream).items():
        start = time.perf_counter()
        summary.insert_stream(stream)
        insert_seconds = time.perf_counter() - start
        edge_result = evaluate_queries(summary, edge_queries, truth)
        vertex_result = evaluate_queries(summary, vertex_queries, truth)
        rows.append({
            "method": name,
            "throughput (edges/s)": len(stream) / insert_seconds,
            "memory (MB)": summary.memory_bytes() / 1e6,
            "edge AAE": edge_result.aae,
            "edge ARE": edge_result.are,
            "edge latency (us)": edge_result.average_latency_micros,
            "vertex AAE": vertex_result.aae,
            "vertex latency (us)": vertex_result.average_latency_micros,
        })

    print()
    print(format_table(rows, title=f"HIGGS vs baselines on {dataset} (scale {scale})"))
    print()
    print("Expected shape (paper Figs. 10-19): HIGGS has the lowest error and "
          "memory and the highest insertion throughput; PGSS is fast but the "
          "least accurate; the -cpt variants trade accuracy/latency for space.")


if __name__ == "__main__":
    main()
