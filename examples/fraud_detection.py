#!/usr/bin/env python
"""Fraud detection: score suspicious transaction paths inside a time window.

Financial organizations use graph stream summarization to identify fraudulent
transaction patterns within specific time frames (paper Section I).  This
example builds a synthetic account-to-account transfer stream, injects a
small "smurfing" ring that rapidly cycles money through mule accounts during
a short burst, and then uses HIGGS path and subgraph queries to score the
ring against ordinary activity — over exactly the burst window and over a
quiet window, to show the value of temporal range queries.

Run with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

import random

from repro import Higgs
from repro.bench.methods import scaled_higgs_config
from repro.streams import GraphStream, StreamEdge, StreamSpec, generate_stream


RING = ["acct-origin", "mule-1", "mule-2", "mule-3", "acct-cashout"]
BURST_START, BURST_END = 6_000, 6_400


def build_transaction_stream() -> GraphStream:
    """Background transfers plus an injected high-frequency ring."""
    background = generate_stream(StreamSpec(
        num_vertices=1_500, num_edges=20_000, skewness=2.0, time_span=12_000,
        arrival_variance=400, seed=7, name="transfers"))

    rng = random.Random(99)
    ring_items = []
    for _ in range(120):
        timestamp = rng.randint(BURST_START, BURST_END)
        amount = float(rng.randint(5, 20))
        for src, dst in zip(RING[:-1], RING[1:], strict=True):
            ring_items.append(StreamEdge(src, dst, amount, timestamp))
    merged = list(background.edges) + ring_items
    return GraphStream(merged, sort_by_time=True, name="transfers+ring")


def main() -> None:
    stream = build_transaction_stream()
    summary = Higgs(scaled_higgs_config(len(stream)))
    summary.insert_stream(stream)
    t_min, t_max = stream.time_span
    print(f"Summarized {len(stream):,} transfers "
          f"({summary.memory_bytes() / 1e6:.2f} MB, "
          f"{summary.leaf_count} leaves)")
    print()

    # Score the suspected ring as a path query in different windows.
    windows = {
        "burst window": (BURST_START, BURST_END),
        "same-length quiet window": (1_000, 1_400),
        "full history": (t_min, t_max),
    }
    print(f"suspected ring: {' -> '.join(RING)}")
    for label, (start, end) in windows.items():
        flow = summary.path_query(RING, start, end)
        print(f"    {label:28s} [{start:>6}, {end:>6}]  total flow {flow:10.1f}")
    print()

    # Compare against randomly chosen benign paths of the same length.
    rng = random.Random(3)
    vertices = sorted(stream.vertices())
    benign_scores = []
    for _ in range(25):
        path = [rng.choice(vertices) for _ in range(len(RING))]
        benign_scores.append(summary.path_query(path, BURST_START, BURST_END))
    benign_avg = sum(benign_scores) / len(benign_scores)
    ring_score = summary.path_query(RING, BURST_START, BURST_END)
    print(f"average benign path flow in the burst window: {benign_avg:.1f}")
    print(f"ring path flow in the burst window:           {ring_score:.1f}")
    if benign_avg > 0:
        print(f"ring stands out by a factor of {ring_score / max(benign_avg, 1e-9):.0f}x")
    print()

    # The ring as a subgraph query (the paper's subgraph primitive).
    ring_edges = tuple(zip(RING[:-1], RING[1:], strict=True))
    print("ring subgraph weight, burst window:",
          summary.subgraph_query(ring_edges, BURST_START, BURST_END))
    print("ring subgraph weight, quiet window:",
          summary.subgraph_query(ring_edges, 1_000, 1_400))


if __name__ == "__main__":
    main()
