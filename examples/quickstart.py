#!/usr/bin/env python
"""Quickstart: summarize a small graph stream with HIGGS and query it.

Run with::

    python examples/quickstart.py

The script builds the paper's running example (Fig. 5): a stream of directed,
weighted, timestamped edges.  It then answers the temporal range queries from
the paper's Example 1, shows a few structural statistics of the summary, and
repeats the queries through a 4-way :class:`~repro.sharding.ShardedSummary`
to demonstrate that sharding is invisible to callers.
"""

from __future__ import annotations

from repro import Higgs, HiggsConfig, HiggsShardFactory, ShardedSummary
from repro.streams import GraphStream, StreamEdge


def build_example_stream() -> GraphStream:
    """The graph stream of the paper's Fig. 5 (12 items, 7 vertices)."""
    items = [
        ("v1", "v2", 1.0, 1),
        ("v4", "v5", 1.0, 2),
        ("v2", "v3", 2.0, 3),
        ("v3", "v7", 1.0, 3),
        ("v4", "v6", 3.0, 5),
        ("v2", "v3", 1.0, 6),
        ("v3", "v7", 2.0, 7),
        ("v4", "v7", 2.0, 8),
        ("v2", "v3", 2.0, 9),
        ("v1", "v2", 2.0, 10),
        ("v5", "v6", 1.0, 11),
        ("v2", "v4", 4.0, 11),
    ]
    return GraphStream([StreamEdge(*item) for item in items], name="fig5-example")


def main() -> None:
    stream = build_example_stream()

    # A small leaf matrix keeps the example readable; the defaults
    # (d1=16, F1=19, b=3, four mapping buckets) match the paper's setup.
    summary = Higgs(HiggsConfig(leaf_matrix_size=8))
    summary.insert_stream(stream)

    print("Inserted", len(stream), "stream items into HIGGS")
    print("Structure:", summary.stats())
    print()

    # Example 1 of the paper: edge, vertex, and subgraph queries over ranges.
    print("edge   v2->v3 over [t5, t10]   =",
          summary.edge_query("v2", "v3", 5, 10), "(paper: 3)")
    print("vertex v4 outgoing over [t1, t11] =",
          summary.vertex_query("v4", 1, 11), "(paper: 6)")
    subgraph = (("v2", "v3"), ("v3", "v7"), ("v2", "v4"))
    print("subgraph {(v2,v3),(v3,v7),(v2,v4)} over [t4, t8] =",
          summary.subgraph_query(subgraph, 4, 8), "(paper: 3)")
    print("path   v1->v2->v3 over [t1, t11] =",
          summary.path_query(["v1", "v2", "v3"], 1, 11))

    # Deletions are supported too (decrement and re-query).
    summary.delete("v2", "v3", 2.0, 9)
    print()
    print("after deleting (v2,v3,w=2,t=9): edge v2->v3 over [t5, t10] =",
          summary.edge_query("v2", "v3", 5, 10))

    # The same stream through the sharded engine: the stream is
    # hash-partitioned across 4 independent HIGGS summaries, ingestion runs
    # through each shard's batch fast path, and queries scatter-gather with
    # an exact sum-merge — same interface, same answers at this scale.
    print()
    with ShardedSummary(HiggsShardFactory(HiggsConfig(leaf_matrix_size=8)),
                        shards=4) as sharded:
        sharded.insert_stream(stream)
        print("ShardedSummary(4 shards):", sharded.stats())
        print("edge   v2->v3 over [t5, t10]   =",
              sharded.edge_query("v2", "v3", 5, 10))
        print("vertex v4 outgoing over [t1, t11] =",
              sharded.vertex_query("v4", 1, 11))
        print("path   v1->v2->v3 over [t1, t11] =",
              sharded.path_query(["v1", "v2", "v3"], 1, 11))


if __name__ == "__main__":
    main()
