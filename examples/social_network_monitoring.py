#!/usr/bin/env python
"""Social-network monitoring: find trending users over sliding time windows.

The paper motivates graph stream summarization with social network analysis:
detecting trending topics and the evolution of discussions over defined
temporal intervals.  This example replays a synthetic communication stream
(power-law degrees, bursty arrivals — a scaled analogue of the Wikipedia-talk
trace) into HIGGS and uses vertex queries over consecutive windows to spot
users whose interaction volume is spiking, without storing the raw stream.

Run with::

    python examples/social_network_monitoring.py
"""

from __future__ import annotations

from repro import Higgs
from repro.bench.methods import scaled_higgs_config
from repro.streams import StreamSpec, generate_stream


def main() -> None:
    # A synthetic "who-talks-to-whom" stream: 25k messages between 2k users.
    spec = StreamSpec(num_vertices=2_000, num_edges=25_000, skewness=2.4,
                      time_span=20_000, arrival_variance=1_000, seed=2024,
                      name="social")
    stream = generate_stream(spec)
    t_min, t_max = stream.time_span

    summary = Higgs(scaled_higgs_config(len(stream)))
    summary.insert_stream(stream)
    print(f"Summarized {len(stream):,} messages between "
          f"{len(stream.vertices()):,} users")
    print(f"Summary footprint: {summary.memory_bytes() / 1e6:.2f} MB, "
          f"{summary.leaf_count} leaves, height {summary.height}")
    print()

    # Slide a window over the stream and report the most active senders.
    window = (t_max - t_min + 1) // 4
    watchlist = sorted(stream.vertices())[:400]

    previous: dict = {}
    for window_index in range(4):
        start = t_min + window_index * window
        end = min(t_max, start + window - 1)
        activity = {user: summary.vertex_query(user, start, end)
                    for user in watchlist}
        top = sorted(activity.items(), key=lambda kv: kv[1], reverse=True)[:5]
        print(f"window [{start}, {end}] — top senders:")
        for user, weight in top:
            change = ""
            if user in previous and previous[user] > 0:
                ratio = weight / previous[user]
                if ratio >= 2.0:
                    change = f"  (trending: {ratio:.1f}x previous window)"
            print(f"    {user:>8}  outgoing weight {weight:8.1f}{change}")
        previous = activity
        print()

    # Drill into one conversation: how much did the top user talk to whom?
    top_user = max(previous, key=previous.get)
    partners = sorted(stream.vertices())[:50]
    conversations = [(partner, summary.edge_query(top_user, partner, t_min, t_max))
                     for partner in partners]
    conversations = [item for item in conversations if item[1] > 0][:5]
    print(f"heaviest conversations of {top_user} over the full stream:")
    for partner, weight in sorted(conversations, key=lambda kv: kv[1], reverse=True):
        print(f"    {top_user} -> {partner}: total weight {weight:.1f}")


if __name__ == "__main__":
    main()
