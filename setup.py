"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on older toolchains (setuptools < 70
without the ``wheel`` package, as found on some offline machines).
"""

from setuptools import setup

setup()
