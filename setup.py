"""Setuptools configuration.

The library is pure Python with **zero hard dependencies**: every numpy
path degrades to a retained pure-Python fallback (see
``repro.core.config.accelerator``).  numpy ships as the ``[fast]`` extra —
``pip install .[fast]`` — which turns on the vectorized kernels and the
packed-edge shared-memory transport for process shard workers.
"""

from setuptools import find_packages, setup

setup(
    name="repro-higgs",
    version="0.10.0",
    description=("HIGGS temporal graph stream summarization: "
                 "aggregated B-tree of compressed matrices"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Optional accelerator: vectorized hash/probe/aggregation kernels
        # and the shared-memory batch transport.  Results are bit-identical
        # with or without it; only the constant factors change.
        "fast": ["numpy"],
    },
)
