"""repro — a full reproduction of "HIGGS: HIerarchy-Guided Graph Stream
Summarization" (ICDE 2025).

The package provides:

* :class:`repro.Higgs` — the paper's hierarchical graph stream summary,
* the baselines it is evaluated against (TCM, GSS, Auxo, PGSS, Horae,
  Horae-cpt, AuxoTime, AuxoTime-cpt) under :mod:`repro.baselines`,
* the sharded scale-out engine (:class:`repro.ShardedSummary`) under
  :mod:`repro.sharding`,
* the concurrent serving engine (:class:`repro.ServingEngine`) under
  :mod:`repro.serving`,
* graph stream substrates (synthetic datasets, generators, readers) under
  :mod:`repro.streams`,
* query workloads and accuracy metrics under :mod:`repro.queries` and
  :mod:`repro.metrics`, and
* the experiment harness that regenerates every figure of the paper's
  evaluation under :mod:`repro.bench`.
"""

from .core import Higgs, HiggsConfig, ServingConfig, ShardingConfig
from .errors import SnapshotError
from .summary import TemporalGraphSummary
from .streams import GraphStream, StreamEdge
from .sharding import (HiggsShardFactory, RebalancePlan, ShardedSummary,
                       SnapshotConfig)
from .serving import ServingEngine

__version__ = "1.3.0"

__all__ = [
    "Higgs", "HiggsConfig", "ServingConfig", "ShardingConfig",
    "SnapshotConfig", "SnapshotError", "TemporalGraphSummary", "GraphStream",
    "StreamEdge", "ShardedSummary", "HiggsShardFactory", "RebalancePlan",
    "ServingEngine",
    "__version__",
]
