"""repro — a full reproduction of "HIGGS: HIerarchy-Guided Graph Stream
Summarization" (ICDE 2025).

The package provides:

* :class:`repro.Higgs` — the paper's hierarchical graph stream summary,
* the baselines it is evaluated against (TCM, GSS, Auxo, PGSS, Horae,
  Horae-cpt, AuxoTime, AuxoTime-cpt) under :mod:`repro.baselines`,
* the sharded scale-out engine (:class:`repro.ShardedSummary`) under
  :mod:`repro.sharding`,
* graph stream substrates (synthetic datasets, generators, readers) under
  :mod:`repro.streams`,
* query workloads and accuracy metrics under :mod:`repro.queries` and
  :mod:`repro.metrics`, and
* the experiment harness that regenerates every figure of the paper's
  evaluation under :mod:`repro.bench`.
"""

from .core import Higgs, HiggsConfig, ShardingConfig
from .summary import TemporalGraphSummary
from .streams import GraphStream, StreamEdge
from .sharding import HiggsShardFactory, ShardedSummary

__version__ = "1.1.0"

__all__ = [
    "Higgs", "HiggsConfig", "ShardingConfig", "TemporalGraphSummary",
    "GraphStream", "StreamEdge", "ShardedSummary", "HiggsShardFactory",
    "__version__",
]
