"""Baseline summaries and substrates the paper evaluates HIGGS against.

Temporal-range-query (TRQ) baselines implement the same
:class:`~repro.summary.TemporalGraphSummary` interface as HIGGS:
:class:`PGSS`, :class:`Horae`, :class:`HoraeCompact`, :class:`AuxoTime`,
:class:`AuxoTimeCompact`, plus the loss-less :class:`ExactTemporalGraph`
ground truth.  The non-temporal substrates they build on — :class:`CountMinSketch`,
:class:`TCM`, :class:`GSS`, :class:`Auxo` — are exported as well.
"""

from .exact import ExactTemporalGraph
from .countmin import CountMinSketch
from .tcm import TCM
from .gss import GSS
from .auxo import Auxo
from .pgss import PGSS
from .horae import Horae, HoraeCompact
from .auxotime import AuxoTime, AuxoTimeCompact
from .dyadic import (compact_levels, dyadic_intervals, interval_bounds,
                     levels_for_span)

__all__ = [
    "ExactTemporalGraph", "CountMinSketch", "TCM", "GSS", "Auxo",
    "PGSS", "Horae", "HoraeCompact", "AuxoTime", "AuxoTimeCompact",
    "compact_levels", "dyadic_intervals", "interval_bounds", "levels_for_span",
]
