"""Auxo — scalable graph stream summarization with a prefix-embedded tree (VLDB'23).

Auxo organizes GSS-style fingerprint matrices in a *prefix embedded tree*
(PET): level ``ℓ`` of the tree holds ``2^ℓ`` matrices, and an edge is routed
to the matrix selected by the leading ``ℓ`` bits of its source fingerprint
(those bits are implicit in the routing, so stored fingerprints shrink as the
tree deepens — the "prefix embedding").  When the deepest level can no longer
absorb an edge, a new, twice-as-wide level is appended; existing entries stay
where they are (Auxo's proportional incremental strategy), so the structure
scales without rehashing.

Auxo itself is non-temporal; :mod:`repro.baselines.auxotime` combines it with
Horae's dyadic layer scheme to build the AuxoTime baselines used in the
paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..core.hashing import hash64
from ..core.matrix import CompressedMatrix
from ..streams.edge import Vertex


class Auxo:
    """Prefix-embedded tree of fingerprint matrices (non-temporal).

    Parameters
    ----------
    matrix_size:
        Dimension of each PET node's matrix.
    fingerprint_bits:
        Fingerprint length at the root level; each deeper level embeds one
        more leading bit into the routing and stores one bit less.
    bucket_entries, num_probes:
        Matrix bucket parameters (same semantics as GSS / HIGGS leaves).
    max_levels:
        Safety bound on tree depth.
    """

    name = "Auxo"

    def __init__(self, *, matrix_size: int = 32, fingerprint_bits: int = 14,
                 bucket_entries: int = 3, num_probes: int = 2,
                 max_levels: int = 12, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if matrix_size < 2:
            raise ConfigurationError("matrix_size must be >= 2")
        if not 2 <= fingerprint_bits <= 32:
            raise ConfigurationError("fingerprint_bits must be in [2, 32]")
        self.matrix_size = matrix_size
        self.fingerprint_bits = fingerprint_bits
        self.bucket_entries = bucket_entries
        self.num_probes = num_probes
        self.max_levels = max_levels
        self.seed = seed
        self.counter_bytes = counter_bytes
        #: ``_levels[ℓ]`` maps a routing prefix (ℓ bits of the source
        #: fingerprint) to that node's matrix; nodes are created lazily.
        self._levels: List[Dict[int, CompressedMatrix]] = [{}]
        #: Exact catch-all for edges that overflow even the deepest level at
        #: the maximum depth (keeps the estimate one-sided).
        self._buffer: Dict[Tuple[int, int, int, int], float] = {}
        self._entry_bytes = (2 * fingerprint_bits + 7) // 8 + counter_bytes

    # ------------------------------------------------------------------ #
    # hashing / routing
    # ------------------------------------------------------------------ #

    def _split(self, vertex: Vertex) -> Tuple[int, int]:
        raw = hash64(vertex, self.seed)
        fingerprint = raw & ((1 << self.fingerprint_bits) - 1)
        address = (raw >> self.fingerprint_bits) % self.matrix_size
        return fingerprint, address

    def _route(self, src_fingerprint: int, dst_fingerprint: int, level: int) -> int:
        """Routing prefix at ``level``: the leading ``level`` bits of the edge
        fingerprint (source XOR destination), so one high-degree vertex's edges
        spread over many PET nodes rather than saturating a single one."""
        if level == 0:
            return 0
        combined = src_fingerprint ^ dst_fingerprint
        return combined >> (self.fingerprint_bits - level)

    def _node(self, level: int, prefix: int, *, create: bool) -> Optional[CompressedMatrix]:
        nodes = self._levels[level]
        matrix = nodes.get(prefix)
        if matrix is None and create:
            matrix = CompressedMatrix(self.matrix_size, self.bucket_entries,
                                      num_probes=self.num_probes,
                                      store_timestamps=False,
                                      entry_bytes=self._entry_bytes)
            nodes[prefix] = matrix
        return matrix

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Insert at the deepest level, growing the PET when that level is full."""
        src_fp, src_addr = self._split(source)
        dst_fp, dst_addr = self._split(destination)
        self.insert_hashed(src_fp, src_addr, dst_fp, dst_addr, weight)

    def insert_hashed(self, src_fp: int, src_addr: int, dst_fp: int,
                      dst_addr: int, weight: float) -> None:
        """Insert one pre-hashed item (the post-``_split`` half of insert)."""
        deepest = len(self._levels) - 1
        matrix = self._node(deepest, self._route(src_fp, dst_fp, deepest), create=True)
        if matrix.insert(src_fp, dst_fp, src_addr, dst_addr, weight):
            return
        if len(self._levels) <= self.max_levels:
            self._levels.append({})
            deepest = len(self._levels) - 1
            matrix = self._node(deepest, self._route(src_fp, dst_fp, deepest), create=True)
            if matrix.insert(src_fp, dst_fp, src_addr, dst_addr, weight):
                return
        key = (src_fp, dst_fp, src_addr, dst_addr)
        self._buffer[key] = self._buffer.get(key, 0.0) + weight

    def insert_batch(self, items) -> int:
        """Bulk insert of ``(source, destination, weight)`` triples with a
        per-batch vertex-hash memo; identical in effect to per-item inserts."""
        split = self._split
        memo: Dict[Vertex, Tuple[int, int]] = {}
        count = 0
        for source, destination, weight in items:
            src = memo.get(source)
            if src is None:
                src = memo[source] = split(source)
            dst = memo.get(destination)
            if dst is None:
                dst = memo[destination] = split(destination)
            self.insert_hashed(src[0], src[1], dst[0], dst[1], weight)
            count += 1
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Subtract weight from the first matching entry found along the PET path."""
        src_fp, src_addr = self._split(source)
        dst_fp, dst_addr = self._split(destination)
        for level in range(len(self._levels) - 1, -1, -1):
            matrix = self._node(level, self._route(src_fp, dst_fp, level), create=False)
            if matrix is not None and matrix.decrement(src_fp, dst_fp,
                                                       src_addr, dst_addr, weight):
                return
        key = (src_fp, dst_fp, src_addr, dst_addr)
        if key in self._buffer:
            self._buffer[key] -= weight

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def edge_query(self, source: Vertex, destination: Vertex) -> float:
        """Sum of matches along the edge's PET routing path."""
        src_fp, src_addr = self._split(source)
        dst_fp, dst_addr = self._split(destination)
        total = 0.0
        for level in range(len(self._levels)):
            matrix = self._node(level, self._route(src_fp, dst_fp, level), create=False)
            if matrix is not None:
                total += matrix.query_edge(src_fp, dst_fp, src_addr, dst_addr)
        total += self._buffer.get((src_fp, dst_fp, src_addr, dst_addr), 0.0)
        return total

    def vertex_query(self, vertex: Vertex, direction: str = "out") -> float:
        """Row/column scan over every PET node (routing mixes both endpoints,
        so a vertex's edges may live in any node of each level)."""
        fingerprint, address = self._split(vertex)
        total = 0.0
        for nodes in self._levels:
            for matrix in nodes.values():
                total += matrix.query_vertex(fingerprint, address, direction=direction)
        for (fs, fd, hs, hd), weight in self._buffer.items():
            if direction == "out" and fs == fingerprint and hs == address:
                total += weight
            elif direction == "in" and fd == fingerprint and hd == address:
                total += weight
        return total

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Footprint of every materialized PET node plus the exact buffer."""
        total = sum(matrix.memory_bytes()
                    for nodes in self._levels for matrix in nodes.values())
        total += len(self._buffer) * (self._entry_bytes + 8)
        return total

    @property
    def depth(self) -> int:
        """Number of PET levels currently allocated."""
        return len(self._levels)

    @property
    def node_count(self) -> int:
        """Number of materialized PET node matrices."""
        return sum(len(nodes) for nodes in self._levels)
