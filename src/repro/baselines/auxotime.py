"""AuxoTime — Auxo extended with Horae's temporal range decomposition.

The paper builds this stronger baseline itself (Section VI-A): Auxo is the
state-of-the-art *non-temporal* graph stream summary, so the authors combine
it with Horae's dyadic layer scheme to obtain a scalable TRQ-capable
competitor.  Each temporal layer is an independent :class:`~repro.baselines.auxo.Auxo`
prefix-embedded tree whose keys are ``(vertex, time prefix)`` pairs; queries
decompose the range into dyadic intervals and sum the per-layer estimates.

``AuxoTimeCompact`` ("AuxoTime-cpt") keeps every second layer only, mirroring
Horae-cpt's space/time trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..streams.edge import Vertex
from ..summary import TemporalGraphSummary
from .auxo import Auxo
from .dyadic import compact_levels, dyadic_intervals, levels_for_span


class AuxoTime(TemporalGraphSummary):
    """Auxo + dyadic temporal layers (the paper's constructed baseline).

    Parameters
    ----------
    time_span:
        Expected stream duration; determines the number of temporal layers.
    matrix_size, fingerprint_bits, bucket_entries, num_probes, max_levels:
        Parameters of each per-layer Auxo PET.
    layer_stride:
        Keep only every ``layer_stride``-th temporal layer (1 = AuxoTime,
        2 = the compact variant).
    """

    name = "AuxoTime"

    def __init__(self, time_span: int, *, matrix_size: int = 32,
                 fingerprint_bits: int = 14, bucket_entries: int = 3,
                 num_probes: int = 2, max_levels: int = 12,
                 layer_stride: int = 1, seed: int = 0) -> None:
        if time_span < 1:
            raise ConfigurationError("time_span must be positive")
        if layer_stride < 1:
            raise ConfigurationError("layer_stride must be >= 1")
        self.max_level = levels_for_span(time_span)
        if layer_stride == 1:
            self._levels: List[int] = list(range(self.max_level + 1))
        else:
            self._levels = compact_levels(self.max_level, stride=layer_stride)
        self._layers: Dict[int, Auxo] = {
            level: Auxo(matrix_size=matrix_size, fingerprint_bits=fingerprint_bits,
                        bucket_entries=bucket_entries, num_probes=num_probes,
                        max_levels=max_levels, seed=seed + level)
            for level in self._levels
        }

    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        timestamp = int(timestamp)
        for level in self._levels:
            prefix = timestamp >> level
            self._layers[level].insert((source, prefix), (destination, prefix), weight)

    def insert_batch(self, edges) -> int:
        """Bulk insert with per-layer ``(vertex, prefix)`` hash memos.

        Each temporal layer is an independent Auxo PET with its own hash
        seed, so the memo is kept per layer; coarse layers see few distinct
        prefixes within a batch and graph streams repeat vertices heavily,
        which makes most splits memo hits.  Results are identical to the
        per-item path.
        """
        layers = self._layers
        levels = self._levels
        memos = {level: {} for level in levels}
        count = 0
        for edge in edges:
            timestamp = int(edge.timestamp)
            source, destination, weight = edge.source, edge.destination, edge.weight
            for level in levels:
                prefix = timestamp >> level
                layer = layers[level]
                memo = memos[level]
                skey = (source, prefix)
                src = memo.get(skey)
                if src is None:
                    src = memo[skey] = layer._split(skey)
                dkey = (destination, prefix)
                dst = memo.get(dkey)
                if dst is None:
                    dst = memo[dkey] = layer._split(dkey)
                layer.insert_hashed(src[0], src[1], dst[0], dst[1], weight)
            count += 1
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        timestamp = int(timestamp)
        for level in self._levels:
            prefix = timestamp >> level
            self._layers[level].delete((source, prefix), (destination, prefix), weight)

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        self.check_range(t_start, t_end)
        total = 0.0
        for level, prefix in dyadic_intervals(t_start, t_end,
                                              allowed_levels=self._levels,
                                              max_level=self.max_level):
            total += self._layers[level].edge_query((source, prefix),
                                                    (destination, prefix))
        return total

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        self.check_range(t_start, t_end)
        total = 0.0
        for level, prefix in dyadic_intervals(t_start, t_end,
                                              allowed_levels=self._levels,
                                              max_level=self.max_level):
            total += self._layers[level].vertex_query((vertex, prefix),
                                                      direction=direction)
        return total

    def memory_bytes(self) -> int:
        return sum(layer.memory_bytes() for layer in self._layers.values())

    @property
    def num_layers(self) -> int:
        """Number of temporal layers actually kept."""
        return len(self._layers)


class AuxoTimeCompact(AuxoTime):
    """The space-optimized AuxoTime variant ("AuxoTime-cpt")."""

    name = "AuxoTime-cpt"

    def __init__(self, time_span: int, **kwargs) -> None:
        kwargs.setdefault("layer_stride", 2)
        super().__init__(time_span, **kwargs)
