"""Count-Min sketch — the frequency-estimation substrate of the TCM family.

The CM sketch (Cormode & Muthukrishnan 2005) keeps ``depth`` rows of
``width`` counters, each row with an independent hash function.  Updates add
the item weight to one counter per row; a point query returns the minimum of
the hashed counters, which over-estimates with bounded error.

This module is included both as a tested substrate (TCM is literally a CM
sketch whose key space is the edge set) and as a standalone utility for the
examples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..core.hashing import hash64


class CountMinSketch:
    """Classic count-min sketch over arbitrary hashable items."""

    def __init__(self, width: int, depth: int = 3, *, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("count-min width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counter_bytes = counter_bytes
        self._seeds = [seed * 1_000_003 + row for row in range(depth)]
        self._table = np.zeros((depth, width), dtype=np.float64)

    def _index(self, item: object, row: int) -> int:
        return hash64(item, self._seeds[row]) % self.width

    def update(self, item: object, weight: float = 1.0) -> None:
        """Add ``weight`` to the item's counters."""
        for row in range(self.depth):
            self._table[row, self._index(item, row)] += weight

    def update_batch(self, items) -> int:
        """Bulk update of ``(item, weight)`` pairs with a per-batch index memo;
        equivalent to per-item :meth:`update` calls."""
        memo = {}
        table = self._table
        count = 0
        for item, weight in items:
            indices = memo.get(item)
            if indices is None:
                indices = memo[item] = [self._index(item, row)
                                        for row in range(self.depth)]
            for row, index in enumerate(indices):
                table[row, index] += weight
            count += 1
        return count

    def remove(self, item: object, weight: float = 1.0) -> None:
        """Subtract ``weight`` (count-min supports deletions symmetrically)."""
        self.update(item, -weight)

    def estimate(self, item: object) -> float:
        """Point estimate: the minimum hashed counter."""
        return float(min(self._table[row, self._index(item, row)]
                         for row in range(self.depth)))

    def memory_bytes(self) -> int:
        """Analytic footprint of the counter array."""
        return self.width * self.depth * self.counter_bytes

    def row_values(self, row: int) -> np.ndarray:
        """Return a copy of one counter row (used in tests)."""
        return self._table[row].copy()

    @property
    def total_weight(self) -> float:
        """Sum of all weights inserted (taken from the first row)."""
        return float(self._table[0].sum())
