"""Dyadic temporal range decomposition (the Horae / PGSS layer scheme).

The top-down baselines cover the time domain with layers of geometrically
growing granularity: layer ``k`` partitions time into intervals of length
``2^k`` starting at multiples of ``2^k`` (identified by the prefix
``t >> k``).  A temporal range query is decomposed into O(log L) such
canonical intervals; the "-cpt" (compact) variants drop some layers to save
space, at the cost of decomposing into more (O(log² L)) intervals.

The decomposition is a pure function of ``(t_start, t_end, allowed levels,
max_level)``, so it is memoized process-wide: repeated-range workloads (the
paper's Figs. 10-13 re-issue the same ranges hundreds of times) compute each
plan once — the dyadic baselines' counterpart of HIGGS's
:class:`~repro.core.boundary.QueryPlanCache`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Set, Tuple


from ..errors import QueryError


@lru_cache(maxsize=16384)
def _cached_intervals(t_start: int, t_end: int,
                      allowed_key: Optional[Tuple[int, ...]],
                      max_level: Optional[int]) -> Tuple[Tuple[int, int], ...]:
    """Memoized core of :func:`dyadic_intervals` (arguments pre-validated)."""
    allowed: Optional[Set[int]] = None
    if allowed_key is not None:
        allowed = set(allowed_key)
        allowed.add(0)

    intervals: List[Tuple[int, int]] = []
    position = t_start
    end_exclusive = t_end + 1
    while position < end_exclusive:
        level = 0
        while True:
            size = 1 << (level + 1)
            if position % size != 0 or position + size > end_exclusive:
                break
            if max_level is not None and level + 1 > max_level:
                break
            level += 1
        if allowed is not None:
            while level > 0 and level not in allowed:
                level -= 1
        intervals.append((level, position >> level))
        position += 1 << level
    return tuple(intervals)


def dyadic_intervals(t_start: int, t_end: int, *,
                     allowed_levels: Optional[Iterable[int]] = None,
                     max_level: Optional[int] = None) -> List[Tuple[int, int]]:
    """Decompose the inclusive range ``[t_start, t_end]`` into dyadic intervals.

    Returns a list of ``(level, prefix)`` pairs where each pair denotes the
    interval ``[prefix * 2^level, (prefix + 1) * 2^level)``.  The intervals
    are disjoint and exactly cover the query range.  Decompositions are
    memoized process-wide (see module docstring).

    Parameters
    ----------
    allowed_levels:
        If given, only these levels may be used (level 0 is always usable,
        otherwise arbitrary boundaries could not be matched).  This models the
        compact variants that keep a subset of layers.
    max_level:
        Upper bound on the interval size (``2^max_level``).
    """
    if t_end < t_start:
        raise QueryError(f"inverted temporal range [{t_start}, {t_end}]")
    if t_start < 0:
        raise QueryError("dyadic decomposition requires non-negative timestamps")

    allowed_key = (tuple(sorted(set(allowed_levels)))
                   if allowed_levels is not None else None)
    return list(_cached_intervals(t_start, t_end, allowed_key, max_level))


def interval_bounds(level: int, prefix: int) -> Tuple[int, int]:
    """Inclusive ``(start, end)`` timestamps of the dyadic interval ``(level, prefix)``."""
    start = prefix << level
    return start, start + (1 << level) - 1


def levels_for_span(time_span: int) -> int:
    """Smallest level count whose top layer interval covers ``time_span`` units."""
    span = max(1, int(time_span))
    return max(1, (span - 1).bit_length())


def compact_levels(max_level: int, stride: int = 2) -> List[int]:
    """Levels kept by a compact ('-cpt') variant: every ``stride``-th level."""
    if stride < 1:
        raise QueryError("stride must be >= 1")
    return [level for level in range(0, max_level + 1) if level % stride == 0]
