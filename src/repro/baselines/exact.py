"""Exact temporal graph store — the ground truth used to measure AAE/ARE.

The store keeps every stream item indexed by edge and by vertex endpoint with
per-key time-sorted prefix sums, so any temporal range query is answered
exactly in ``O(log n)`` after an amortized sort.  It implements the same
:class:`~repro.summary.TemporalGraphSummary` interface as the sketches, which
lets the evaluation harness treat it as just another (loss-less) summary.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Tuple

from ..streams.edge import Vertex
from ..summary import TemporalGraphSummary


class _TemporalSeries:
    """Weights attached to timestamps for one key, queryable by time range."""

    __slots__ = ("_times", "_weights", "_prefix", "_dirty")

    def __init__(self) -> None:
        self._times: List[int] = []
        self._weights: List[float] = []
        self._prefix: List[float] = []
        self._dirty = False

    def add(self, timestamp: int, weight: float) -> None:
        self._times.append(timestamp)
        self._weights.append(weight)
        self._dirty = True

    def _rebuild(self) -> None:
        order = sorted(range(len(self._times)), key=lambda i: self._times[i])
        self._times = [self._times[i] for i in order]
        self._weights = [self._weights[i] for i in order]
        prefix: List[float] = []
        running = 0.0
        for weight in self._weights:
            running += weight
            prefix.append(running)
        self._prefix = prefix
        self._dirty = False

    def range_sum(self, t_start: int, t_end: int) -> float:
        if self._dirty:
            self._rebuild()
        if not self._times:
            return 0.0
        lo = bisect.bisect_left(self._times, t_start)
        hi = bisect.bisect_right(self._times, t_end)
        if hi <= lo:
            return 0.0
        upper = self._prefix[hi - 1]
        lower = self._prefix[lo - 1] if lo > 0 else 0.0
        return upper - lower

    def __len__(self) -> int:
        return len(self._times)


class ExactTemporalGraph(TemporalGraphSummary):
    """Loss-less reference summary storing the full stream."""

    name = "Exact"

    def __init__(self) -> None:
        self._edges: Dict[Tuple[Vertex, Vertex], _TemporalSeries] = defaultdict(_TemporalSeries)
        self._out: Dict[Vertex, _TemporalSeries] = defaultdict(_TemporalSeries)
        self._in: Dict[Vertex, _TemporalSeries] = defaultdict(_TemporalSeries)
        self._items = 0

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        self._edges[(source, destination)].add(timestamp, weight)
        self._out[source].add(timestamp, weight)
        self._in[destination].add(timestamp, weight)
        self._items += 1

    def insert_batch(self, edges) -> int:
        """Bulk insert: identical appends with the hot attribute lookups
        hoisted out of the loop."""
        edge_series = self._edges
        out_series = self._out
        in_series = self._in
        count = 0
        for edge in edges:
            timestamp, weight = edge.timestamp, edge.weight
            edge_series[(edge.source, edge.destination)].add(timestamp, weight)
            out_series[edge.source].add(timestamp, weight)
            in_series[edge.destination].add(timestamp, weight)
            count += 1
        self._items += count
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        self.insert(source, destination, -weight, timestamp)

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        self.check_range(t_start, t_end)
        series = self._edges.get((source, destination))
        return series.range_sum(t_start, t_end) if series is not None else 0.0

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        self.check_range(t_start, t_end)
        table = self._out if direction == "out" else self._in
        series = table.get(vertex)
        return series.range_sum(t_start, t_end) if series is not None else 0.0

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the exact store.

        Counted as one (timestamp, weight) pair per item per index (edge, out
        and in) plus dictionary keys — the exact store is expected to be much
        larger than any sketch.
        """
        per_item = 3 * (8 + 8)
        key_bytes = (len(self._edges) + len(self._out) + len(self._in)) * 16
        return self._items * per_item + key_bytes

    @property
    def item_count(self) -> int:
        """Number of stream items recorded."""
        return self._items
