"""GSS — fast and accurate graph stream summarization (ICDE'19).

GSS improves on TCM by storing a short *fingerprint* of both endpoints inside
each matrix cell, so different edges that hash to the same cell are no longer
merged.  Square hashing gives each edge several candidate cells; edges that
cannot be placed go into an exact adjacency buffer.  GSS is non-temporal; it
is the per-layer building block Horae reuses, and the structure Auxo makes
scalable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..core.hashing import hash64
from ..streams.edge import Vertex


@dataclass(slots=True)
class _Cell:
    """One matrix cell: fingerprints of both endpoints plus the accumulated weight."""
    src_fingerprint: int
    dst_fingerprint: int
    weight: float


class GSS:
    """Gou et al.'s fingerprint matrix + adjacency buffer (non-temporal).

    Parameters
    ----------
    width:
        Matrix dimension ``d``.
    fingerprint_bits:
        Bits kept as each endpoint's fingerprint.
    num_probes:
        Square-hashing probe count per endpoint (candidate cells are the
        cross product of the two probe sequences).
    """

    name = "GSS"

    def __init__(self, width: int, *, fingerprint_bits: int = 12,
                 num_probes: int = 2, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if width < 1:
            raise ConfigurationError("GSS width must be positive")
        if not 1 <= fingerprint_bits <= 32:
            raise ConfigurationError("fingerprint_bits must be in [1, 32]")
        self.width = width
        self.fingerprint_bits = fingerprint_bits
        self.num_probes = max(1, num_probes)
        self.seed = seed
        self.counter_bytes = counter_bytes
        self._cells: Dict[Tuple[int, int], _Cell] = {}
        #: Exact adjacency buffer for edges whose candidate cells are all taken.
        self._buffer: Dict[Tuple[int, int], float] = {}

    # -- hashing ------------------------------------------------------------

    def _split(self, vertex: Vertex) -> Tuple[int, int]:
        raw = hash64(vertex, self.seed)
        fingerprint = raw & ((1 << self.fingerprint_bits) - 1)
        address = (raw >> self.fingerprint_bits) % self.width
        return fingerprint, address

    def _probes(self, fingerprint: int, address: int) -> List[int]:
        step = 2 * fingerprint + 1
        return [(address + i * step) % self.width for i in range(self.num_probes)]

    # -- updates --------------------------------------------------------------

    def insert(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Insert an edge, aggregating on fingerprint match, spilling to the buffer."""
        src_fp, src_addr = self._split(source)
        dst_fp, dst_addr = self._split(destination)
        free_cell: Optional[Tuple[int, int]] = None
        for row in self._probes(src_fp, src_addr):
            for col in self._probes(dst_fp, dst_addr):
                cell = self._cells.get((row, col))
                if cell is None:
                    if free_cell is None:
                        free_cell = (row, col)
                    continue
                if cell.src_fingerprint == src_fp and cell.dst_fingerprint == dst_fp:
                    cell.weight += weight
                    return
        if free_cell is not None:
            self._cells[free_cell] = _Cell(src_fp, dst_fp, weight)
            return
        key = (src_fp << self.fingerprint_bits) | dst_fp, src_addr * self.width + dst_addr
        self._buffer[key] = self._buffer.get(key, 0.0) + weight

    def delete(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Subtract weight from the matching cell or buffer entry."""
        self.insert(source, destination, -weight)

    # -- queries --------------------------------------------------------------

    def edge_query(self, source: Vertex, destination: Vertex) -> float:
        """Weight of the cell (or buffer entry) whose fingerprints match."""
        src_fp, src_addr = self._split(source)
        dst_fp, dst_addr = self._split(destination)
        total = 0.0
        for row in self._probes(src_fp, src_addr):
            for col in self._probes(dst_fp, dst_addr):
                cell = self._cells.get((row, col))
                if (cell is not None and cell.src_fingerprint == src_fp
                        and cell.dst_fingerprint == dst_fp):
                    total += cell.weight
        key = (src_fp << self.fingerprint_bits) | dst_fp, src_addr * self.width + dst_addr
        total += self._buffer.get(key, 0.0)
        return total

    def vertex_query(self, vertex: Vertex, direction: str = "out") -> float:
        """Sum of cells in the vertex's candidate rows (out) / columns (in)."""
        fingerprint, address = self._split(vertex)
        lanes = set(self._probes(fingerprint, address))
        total = 0.0
        for (row, col), cell in self._cells.items():
            if direction == "out":
                if row in lanes and cell.src_fingerprint == fingerprint:
                    total += cell.weight
            else:
                if col in lanes and cell.dst_fingerprint == fingerprint:
                    total += cell.weight
        for (fp_key, addr_key), weight in self._buffer.items():
            if direction == "out":
                if (fp_key >> self.fingerprint_bits) == fingerprint and \
                        addr_key // self.width == address:
                    total += weight
            else:
                if (fp_key & ((1 << self.fingerprint_bits) - 1)) == fingerprint and \
                        addr_key % self.width == address:
                    total += weight
        return total

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        """Analytic footprint: the pre-allocated matrix plus the buffer entries."""
        cell_bytes = (2 * self.fingerprint_bits + 7) // 8 + self.counter_bytes
        buffer_bytes = len(self._buffer) * (cell_bytes + 8)
        return self.width * self.width * cell_bytes + buffer_bytes

    @property
    def buffer_size(self) -> int:
        """Number of edges stored in the exact adjacency buffer."""
        return len(self._buffer)
