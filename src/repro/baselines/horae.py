"""Horae — top-down, domain-based multi-layer summarization (ICDE'22).

Horae keeps one GSS-style fingerprint matrix per *temporal layer*: layer ``k``
has granularity ``2^k`` time units, and an item with timestamp ``t`` is
inserted into every layer under the key ``(vertex, t >> k)`` — the vertex
identifier concatenated with the layer's time prefix.  A temporal range query
is decomposed into canonical dyadic intervals (one matrix access per
interval) and the per-interval estimates are summed.

``HoraeCompact`` ("Horae-cpt" in the paper) keeps only every second layer to
reduce space; queries then decompose into more, finer sub-ranges, trading
query time and accuracy for memory — exactly the trade-off the paper reports.

Every layer's matrix is sized for the whole stream (the global, domain-based
design the paper contrasts with HIGGS's item-based locality).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..core.hashing import hash64
from ..core.matrix import CompressedMatrix
from ..streams.edge import Vertex
from ..summary import TemporalGraphSummary
from .dyadic import compact_levels, dyadic_intervals, levels_for_span


class _Layer:
    """One temporal layer: a fingerprint matrix plus an exact spill-over map."""

    __slots__ = ("level", "matrix", "overflow")

    def __init__(self, level: int, width: int, bucket_entries: int,
                 num_probes: int, entry_bytes: int) -> None:
        self.level = level
        self.matrix = CompressedMatrix(width, bucket_entries,
                                       num_probes=num_probes,
                                       store_timestamps=False,
                                       entry_bytes=entry_bytes)
        self.overflow: Dict[Tuple[int, int, int, int], float] = {}

    def insert(self, src_fingerprint: int, dst_fingerprint: int,
               src_address: int, dst_address: int, weight: float) -> None:
        if not self.matrix.insert(src_fingerprint, dst_fingerprint,
                                  src_address, dst_address, weight):
            key = (src_fingerprint, dst_fingerprint, src_address, dst_address)
            self.overflow[key] = self.overflow.get(key, 0.0) + weight

    def query_edge(self, src_fingerprint: int, dst_fingerprint: int,
                   src_address: int, dst_address: int) -> float:
        total = self.matrix.query_edge(src_fingerprint, dst_fingerprint,
                                       src_address, dst_address)
        total += self.overflow.get(
            (src_fingerprint, dst_fingerprint, src_address, dst_address), 0.0)
        return total

    def query_vertex(self, fingerprint: int, address: int, direction: str) -> float:
        total = self.matrix.query_vertex(fingerprint, address, direction=direction)
        for (fs, fd, hs, hd), weight in self.overflow.items():
            if direction == "out" and fs == fingerprint and hs == address:
                total += weight
            elif direction == "in" and fd == fingerprint and hd == address:
                total += weight
        return total

    def memory_bytes(self, entry_bytes: int) -> int:
        return self.matrix.memory_bytes() + len(self.overflow) * (entry_bytes + 8)


class Horae(TemporalGraphSummary):
    """Chen et al.'s multi-layer temporal graph sketch.

    Parameters
    ----------
    expected_items:
        Expected stream size, used to size every layer's matrix.
    time_span:
        Expected stream duration; determines the number of layers
        (``ceil(log2(time_span)) + 1``).
    fingerprint_bits, bucket_entries, num_probes:
        Per-layer matrix parameters (GSS-style).
    load_factor:
        Target stored-items / allocated-slots ratio per layer.
    layer_stride:
        Keep only every ``layer_stride``-th layer (1 = full Horae,
        2 = the compact variant).
    """

    name = "Horae"

    def __init__(self, expected_items: int, time_span: int, *,
                 fingerprint_bits: int = 12, bucket_entries: int = 3,
                 num_probes: int = 2, load_factor: float = 0.8,
                 layer_stride: int = 1, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if expected_items < 1:
            raise ConfigurationError("expected_items must be positive")
        if time_span < 1:
            raise ConfigurationError("time_span must be positive")
        if layer_stride < 1:
            raise ConfigurationError("layer_stride must be >= 1")
        self.fingerprint_bits = fingerprint_bits
        self.bucket_entries = bucket_entries
        self.num_probes = num_probes
        self.seed = seed
        self.counter_bytes = counter_bytes
        self.max_level = levels_for_span(time_span)
        if layer_stride == 1:
            self._levels: List[int] = list(range(self.max_level + 1))
        else:
            self._levels = compact_levels(self.max_level, stride=layer_stride)

        slots_needed = max(16, int(expected_items / max(load_factor, 1e-6)))
        width = 1 << max(2, math.ceil(math.log2(math.sqrt(slots_needed / bucket_entries))))
        self._entry_bytes = (2 * fingerprint_bits + 7) // 8 + counter_bytes
        self._layers: Dict[int, _Layer] = {
            level: _Layer(level, width, bucket_entries, num_probes, self._entry_bytes)
            for level in self._levels
        }
        self.width = width

    # ------------------------------------------------------------------ #

    def _split(self, vertex: Vertex, prefix: int) -> Tuple[int, int]:
        """Fingerprint/address of a vertex combined with a layer time prefix."""
        raw = hash64((vertex, prefix), self.seed)
        fingerprint = raw & ((1 << self.fingerprint_bits) - 1)
        address = (raw >> self.fingerprint_bits) % self.width
        return fingerprint, address

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        timestamp = int(timestamp)
        for level in self._levels:
            prefix = timestamp >> level
            src_fp, src_addr = self._split(source, prefix)
            dst_fp, dst_addr = self._split(destination, prefix)
            self._layers[level].insert(src_fp, dst_fp, src_addr, dst_addr, weight)

    def insert_batch(self, edges) -> int:
        """Bulk insert with a per-batch ``(vertex, prefix)`` hash memo.

        Horae hashes every item once per temporal layer; within a batch the
        coarse layers see few distinct prefixes and graph streams repeat
        vertices heavily, so most ``(vertex, prefix)`` splits hit the memo
        instead of recomputing the 64-bit hash.  Insertion order and results
        are identical to the per-item path.
        """
        split = self._split
        layers = self._layers
        levels = self._levels
        memo: Dict[Tuple[Vertex, int], Tuple[int, int]] = {}
        count = 0
        for edge in edges:
            timestamp = int(edge.timestamp)
            source, destination, weight = edge.source, edge.destination, edge.weight
            for level in levels:
                prefix = timestamp >> level
                key = (source, prefix)
                src = memo.get(key)
                if src is None:
                    src = memo[key] = split(source, prefix)
                key = (destination, prefix)
                dst = memo.get(key)
                if dst is None:
                    dst = memo[key] = split(destination, prefix)
                layers[level].insert(src[0], dst[0], src[1], dst[1], weight)
            count += 1
        return count

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        self.check_range(t_start, t_end)
        total = 0.0
        for level, prefix in dyadic_intervals(t_start, t_end,
                                              allowed_levels=self._levels,
                                              max_level=self.max_level):
            src_fp, src_addr = self._split(source, prefix)
            dst_fp, dst_addr = self._split(destination, prefix)
            total += self._layers[level].query_edge(src_fp, dst_fp,
                                                    src_addr, dst_addr)
        return total

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        self.check_range(t_start, t_end)
        total = 0.0
        for level, prefix in dyadic_intervals(t_start, t_end,
                                              allowed_levels=self._levels,
                                              max_level=self.max_level):
            fingerprint, address = self._split(vertex, prefix)
            total += self._layers[level].query_vertex(fingerprint, address, direction)
        return total

    def memory_bytes(self) -> int:
        return sum(layer.memory_bytes(self._entry_bytes)
                   for layer in self._layers.values())

    @property
    def num_layers(self) -> int:
        """Number of temporal layers actually kept."""
        return len(self._layers)


class HoraeCompact(Horae):
    """The space-optimized Horae variant ("Horae-cpt"): every second layer only."""

    name = "Horae-cpt"

    def __init__(self, expected_items: int, time_span: int, **kwargs) -> None:
        kwargs.setdefault("layer_stride", 2)
        super().__init__(expected_items, time_span, **kwargs)
