"""PGSS — persistent graph stream summarization (WWW'23).

PGSS extends TCM for temporal range queries: every matrix bucket holds an
array of counters, one per *time granularity* (the dyadic levels of the
stream's lifetime).  Inserting an edge updates, in every hash matrix, the
bucket's counter for each granularity at the prefix ``t >> level``; a range
query decomposes the range into canonical dyadic intervals, reads one counter
per interval, and returns the minimum over the hash matrices.

PGSS keeps no fingerprints, so distinct edges hashing to the same bucket are
merged — its queries are fast but comparatively inaccurate, and the
per-granularity counters make both its updates and its space cost heavy
(the behaviour reported in the paper's Figs. 10-13, 16-19).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..core.hashing import hash64
from ..streams.edge import Vertex
from ..summary import TemporalGraphSummary
from .dyadic import dyadic_intervals, levels_for_span


class PGSS(TemporalGraphSummary):
    """Persistent TCM-style sketch with per-granularity counters.

    Parameters
    ----------
    expected_items:
        Expected number of stream items; used to size the matrices (the
        original system pre-allocates from a memory budget).
    time_span:
        Expected stream duration; determines how many granularities each
        bucket maintains.
    depth:
        Number of independent hash matrices.
    load_factor:
        Target ratio of stored items to allocated buckets.
    """

    name = "PGSS"

    def __init__(self, expected_items: int, *, time_span: int = 1 << 20,
                 depth: int = 2, load_factor: float = 1.0, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if expected_items < 1:
            raise ConfigurationError("expected_items must be positive")
        if time_span < 1:
            raise ConfigurationError("time_span must be positive")
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        buckets_needed = max(16, int(expected_items / max(load_factor, 1e-6)))
        self.width = 1 << max(2, math.ceil(math.log2(math.sqrt(buckets_needed))))
        self.depth = depth
        self.counter_bytes = counter_bytes
        self.max_level = levels_for_span(time_span)
        self._levels = list(range(self.max_level + 1))
        self._seeds = [seed * 40_503 + 17 * row for row in range(depth)]
        # One counter table per matrix per granularity:
        # table[(row, col)][prefix] -> accumulated weight.
        self._tables: List[List[Dict[Tuple[int, int], Dict[int, float]]]] = [
            [{} for _ in self._levels] for _ in range(depth)]
        # Row/column indices so vertex queries touch only the relevant lane.
        self._row_index: List[Dict[int, List[Tuple[int, int]]]] = [
            {} for _ in range(depth)]
        self._col_index: List[Dict[int, List[Tuple[int, int]]]] = [
            {} for _ in range(depth)]
        self._seen_cells: List[set] = [set() for _ in range(depth)]

    def _address(self, vertex: Vertex, row: int) -> int:
        return hash64(vertex, self._seeds[row]) % self.width

    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        timestamp = int(timestamp)
        for row in range(self.depth):
            cell = (self._address(source, row), self._address(destination, row))
            if cell not in self._seen_cells[row]:
                self._seen_cells[row].add(cell)
                self._row_index[row].setdefault(cell[0], []).append(cell)
                self._col_index[row].setdefault(cell[1], []).append(cell)
            for level in self._levels:
                prefix = timestamp >> level
                counters = self._tables[row][level].setdefault(cell, {})
                counters[prefix] = counters.get(prefix, 0.0) + weight

    def insert_batch(self, edges) -> int:
        """Bulk insert with a per-batch ``(vertex, row)`` address memo.

        PGSS hashes both endpoints once per hash matrix; the memo collapses
        repeated vertices within a batch to dictionary lookups.  Counter
        updates are identical to the per-item path.
        """
        memo: Dict[Tuple[Vertex, int], int] = {}
        count = 0
        for edge in edges:
            timestamp = int(edge.timestamp)
            source, destination, weight = edge.source, edge.destination, edge.weight
            for row in range(self.depth):
                skey = (source, row)
                src_addr = memo.get(skey)
                if src_addr is None:
                    src_addr = memo[skey] = self._address(source, row)
                dkey = (destination, row)
                dst_addr = memo.get(dkey)
                if dst_addr is None:
                    dst_addr = memo[dkey] = self._address(destination, row)
                cell = (src_addr, dst_addr)
                if cell not in self._seen_cells[row]:
                    self._seen_cells[row].add(cell)
                    self._row_index[row].setdefault(cell[0], []).append(cell)
                    self._col_index[row].setdefault(cell[1], []).append(cell)
                row_tables = self._tables[row]
                for level in self._levels:
                    prefix = timestamp >> level
                    counters = row_tables[level].setdefault(cell, {})
                    counters[prefix] = counters.get(prefix, 0.0) + weight
            count += 1
        return count

    def _cell_range_sum(self, row: int, cell: Tuple[int, int],
                        t_start: int, t_end: int) -> float:
        total = 0.0
        for level, prefix in dyadic_intervals(t_start, t_end,
                                              max_level=self.max_level):
            counters = self._tables[row][level].get(cell)
            if counters:
                total += counters.get(prefix, 0.0)
        return total

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        self.check_range(t_start, t_end)
        estimates = []
        for row in range(self.depth):
            cell = (self._address(source, row), self._address(destination, row))
            estimates.append(self._cell_range_sum(row, cell, t_start, t_end))
        return min(estimates)

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        self.check_range(t_start, t_end)
        estimates = []
        for row in range(self.depth):
            address = self._address(vertex, row)
            index = self._row_index[row] if direction == "out" else self._col_index[row]
            total = sum(self._cell_range_sum(row, cell, t_start, t_end)
                        for cell in index.get(address, ()))
            estimates.append(total)
        return min(estimates)

    def memory_bytes(self) -> int:
        """Allocated bucket directory plus every stored (prefix, counter) pair."""
        directory = self.depth * self.width * self.width * 8
        pairs = sum(len(counters)
                    for matrix_levels in self._tables
                    for level_table in matrix_levels
                    for counters in level_table.values())
        return directory + pairs * (4 + self.counter_bytes)

    @property
    def num_granularities(self) -> int:
        """Number of per-bucket counter granularities maintained."""
        return len(self._levels)
