"""TCM — graph stream summarization with compressed matrices (SIGMOD'16).

TCM keeps ``depth`` independent ``width × width`` matrices of counters.  Each
matrix has its own hash function mapping a vertex to a row/column index; an
edge update adds its weight at ``[h_r(s), h_r(d)]`` in every matrix, and a
query returns the minimum across matrices.  Vertex queries aggregate a whole
row (outgoing) or column (incoming).

TCM does not keep temporal information — it is the non-temporal substrate
that PGSS, Horae and the other TRQ baselines extend.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..core.hashing import hash64
from ..streams.edge import Vertex


class TCM:
    """Tang et al.'s multi-matrix graph sketch (non-temporal)."""

    name = "TCM"

    def __init__(self, width: int, depth: int = 2, *, seed: int = 0,
                 counter_bytes: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("TCM width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counter_bytes = counter_bytes
        self._seeds = [seed * 7_368_787 + 31 * row for row in range(depth)]
        self._matrices = [np.zeros((width, width), dtype=np.float64)
                          for _ in range(depth)]

    def _address(self, vertex: Vertex, row: int) -> int:
        return hash64(vertex, self._seeds[row]) % self.width

    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Add ``weight`` at the hashed cell of every matrix."""
        for row in range(self.depth):
            matrix = self._matrices[row]
            matrix[self._address(source, row), self._address(destination, row)] += weight

    def insert_batch(self, items) -> int:
        """Bulk insert of ``(source, destination, weight)`` triples with a
        per-batch ``(vertex, row)`` address memo; equivalent to per-item
        inserts."""
        memo = {}
        count = 0
        for source, destination, weight in items:
            for row in range(self.depth):
                skey = (source, row)
                src_addr = memo.get(skey)
                if src_addr is None:
                    src_addr = memo[skey] = self._address(source, row)
                dkey = (destination, row)
                dst_addr = memo.get(dkey)
                if dst_addr is None:
                    dst_addr = memo[dkey] = self._address(destination, row)
                self._matrices[row][src_addr, dst_addr] += weight
            count += 1
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float = 1.0) -> None:
        """Subtract ``weight`` (counters support deletion symmetrically)."""
        self.insert(source, destination, -weight)

    def edge_query(self, source: Vertex, destination: Vertex) -> float:
        """Minimum of the hashed cells across matrices."""
        return float(min(
            self._matrices[row][self._address(source, row),
                                self._address(destination, row)]
            for row in range(self.depth)))

    def vertex_query(self, vertex: Vertex, direction: str = "out") -> float:
        """Minimum across matrices of the vertex's row (out) / column (in) sum."""
        estimates: List[float] = []
        for row in range(self.depth):
            address = self._address(vertex, row)
            matrix = self._matrices[row]
            if direction == "out":
                estimates.append(float(matrix[address, :].sum()))
            else:
                estimates.append(float(matrix[:, address].sum()))
        return min(estimates)

    def memory_bytes(self) -> int:
        """Analytic footprint of all counter matrices."""
        return self.depth * self.width * self.width * self.counter_bytes
