"""Experiment harness: method factories, shared contexts, reporting, and one
runner per paper table/figure."""

from .methods import (DEFAULT_Z_MULTIPLE, METHOD_ORDER, make_methods,
                      scaled_higgs_config)
from .context import (DEFAULT_SCALE, ExperimentContext, build_context,
                      clear_context_cache, get_context)
from .reporting import format_table, pivot, save_rows
from . import experiments

__all__ = [
    "DEFAULT_Z_MULTIPLE", "METHOD_ORDER", "make_methods", "scaled_higgs_config",
    "DEFAULT_SCALE", "ExperimentContext", "build_context",
    "clear_context_cache", "get_context",
    "format_table", "pivot", "save_rows",
    "experiments",
]
