"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.bench.cli list
    python -m repro.bench.cli run fig10 --scale 0.1 --results-dir results
    python -m repro.bench.cli run all   --scale 0.05

``run`` executes one (or all) of the per-figure experiments, prints the
series the figure plots, and saves it (text + JSON) under the results
directory — the same artifacts the pytest benchmark harness produces, but
callable directly and with a configurable scale.

The registry below is the single source of truth for everything the CLI
shows: the ``list`` command, the ``--help`` epilogue, and ``run all`` are
all generated from it, so a registered experiment can never be missing from
the listings (``tests/test_cli.py`` asserts this).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..errors import BenchmarkError
from . import experiments
from .reporting import format_table, save_rows


@dataclass(frozen=True)
class Experiment:
    """One registry entry: a runnable experiment and its presentation.

    Attributes
    ----------
    runner:
        Zero-or-keyword-argument callable returning the experiment's rows.
    title:
        Human-readable title shown in listings and result tables.
    filename:
        Basename of the text artifact written under the results directory
        (the JSON twin derives from it).
    scaled:
        Whether the runner accepts the CLI's ``scale`` keyword (dataset- and
        stream-driven experiments do; fixed-shape ones do not).
    """

    runner: Callable[..., List[dict]]
    title: str
    filename: str
    scaled: bool = True


#: Registry mapping experiment ids to their :class:`Experiment` entries.
EXPERIMENTS: Dict[str, Experiment] = {
    "table2": Experiment(experiments.run_table2,
                         "Table II: Summary of Datasets", "table2_datasets.txt"),
    "fig2": Experiment(experiments.run_fig2_skewness,
                       "Figure 2: Skewness of Vertex Degrees",
                       "fig02_skewness.txt"),
    "fig3": Experiment(experiments.run_fig3_irregularity,
                       "Figure 3: Irregularity of Item Arrivals",
                       "fig03_irregularity.txt"),
    "fig10": Experiment(experiments.run_fig10_edge_queries,
                        "Figure 10: Edge Queries", "fig10_edge_queries.txt"),
    "fig11": Experiment(experiments.run_fig11_vertex_queries,
                        "Figure 11: Vertex Queries", "fig11_vertex_queries.txt"),
    "fig12": Experiment(experiments.run_fig12_path_queries,
                        "Figure 12: Path Queries", "fig12_path_queries.txt"),
    "fig13": Experiment(experiments.run_fig13_subgraph_queries,
                        "Figure 13: Subgraph Queries",
                        "fig13_subgraph_queries.txt"),
    "fig14": Experiment(experiments.run_fig14_skewness,
                        "Figure 14: Irregularity (Skewness)",
                        "fig14_skewness.txt", scaled=False),
    "fig15": Experiment(experiments.run_fig15_variance,
                        "Figure 15: Irregularity (Variance)",
                        "fig15_variance.txt", scaled=False),
    "fig16": Experiment(experiments.run_fig16_17_update_cost,
                        "Figures 16/17: Insertion Throughput and Latency",
                        "fig16_17_update_cost.txt"),
    "fig18": Experiment(experiments.run_fig18_delete_throughput,
                        "Figure 18: Deletion Throughput",
                        "fig18_delete_throughput.txt"),
    "fig19": Experiment(experiments.run_fig19_space_cost,
                        "Figure 19: Space Cost", "fig19_space_cost.txt"),
    "fig20a": Experiment(experiments.run_fig20a_parallelization,
                         "Figure 20(a): Parallelization",
                         "fig20a_parallelization.txt"),
    "fig20b": Experiment(experiments.run_fig20b_mmb_and_ob,
                         "Figure 20(b): MMB and Overflow Blocks",
                         "fig20b_mmb_ob.txt"),
    "fig21": Experiment(experiments.run_fig21_parameters,
                        "Figure 21: Parameter Analysis (d1)",
                        "fig21_parameters.txt"),
    "batch": Experiment(experiments.run_batch_speedup,
                        "Batch Ingestion Speedup (insert_batch vs insert)",
                        "batch_speedup.txt"),
    "sharded": Experiment(experiments.run_sharded_scaling,
                          "Sharded Ingestion Scaling (wall-clock and "
                          "projected parallel)", "sharded_scaling.txt"),
    "serve": Experiment(experiments.run_serving,
                        "Concurrent Serving (mixed read/write, "
                        "latency percentiles)", "serving_mixed.txt"),
    "rebalance": Experiment(experiments.run_rebalance,
                            "Elastic Rebalancing (hot-shard recovery and "
                            "kill-a-worker restore)", "rebalance.txt"),
}


def _experiments_epilog() -> str:
    """One line per registered experiment, rendered into ``--help``.

    Generated from :data:`EXPERIMENTS` — never assembled by hand — so a
    newly registered experiment appears here automatically.
    """
    lines = ["experiments:"]
    for experiment_id, entry in EXPERIMENTS.items():
        lines.append(f"  {experiment_id:8s} {entry.title}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the HIGGS paper's evaluation tables and figures.",
        epilog=_experiments_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--scale", type=float, default=0.1,
                     help="dataset scale factor (default 0.1)")
    run.add_argument("--results-dir", default="results",
                     help="directory for saved series (default ./results)")
    run.add_argument("--no-save", action="store_true",
                     help="print only; do not write result files")
    return parser


def run_experiment(experiment_id: str, *, scale: float, results_dir: str,
                   save: bool = True) -> List[dict]:
    """Run one registered experiment and return its rows."""
    if experiment_id not in EXPERIMENTS:
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}")
    entry = EXPERIMENTS[experiment_id]
    kwargs = {"scale": scale} if entry.scaled else {}
    start = time.perf_counter()
    rows = entry.runner(**kwargs)
    elapsed = time.perf_counter() - start
    print(format_table(rows, title=f"{entry.title}  [{elapsed:.1f}s]"))
    print()
    if save:
        save_rows(rows, f"{results_dir}/{entry.filename}", title=entry.title)
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id, entry in EXPERIMENTS.items():
            print(f"{experiment_id:8s} {entry.title}")
        return 0

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for experiment_id in targets:
            run_experiment(experiment_id, scale=args.scale,
                           results_dir=args.results_dir, save=not args.no_save)
    except BenchmarkError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
