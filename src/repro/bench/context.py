"""Shared experiment context: datasets, ground truth and pre-built methods.

Several figures (10-13, 16-19) evaluate the same six methods over the same
three datasets; building and filling the structures dominates the wall-clock
cost of the harness.  ``get_context`` memoizes one fully inserted context per
``(dataset, scale, z_multiple)`` so that running the full benchmark suite
replays each stream into each method only once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..baselines.exact import ExactTemporalGraph
from ..queries.workload import QueryWorkloadGenerator, WorkloadConfig
from ..streams.datasets import load_dataset
from ..streams.edge import GraphStream
from ..summary import TemporalGraphSummary
from .methods import DEFAULT_Z_MULTIPLE, METHOD_ORDER, ingest, make_methods

#: Default dataset scale used by the pytest benchmark harness.  0.2 keeps the
#: full suite under a few minutes in CPython while preserving the relative
#: dataset sizes (see DESIGN.md §3).
DEFAULT_SCALE = 0.2


@dataclass
class ExperimentContext:
    """Everything an accuracy/latency experiment needs for one dataset."""

    dataset: str
    stream: GraphStream
    truth: ExactTemporalGraph
    methods: Dict[str, TemporalGraphSummary]
    insert_seconds: Dict[str, float]
    workload: QueryWorkloadGenerator

    @property
    def time_span(self) -> Tuple[int, int]:
        """Inclusive ``(t_min, t_max)`` of the stream."""
        return self.stream.time_span

    @property
    def span_length(self) -> int:
        """Total number of time units covered by the stream."""
        t_min, t_max = self.stream.time_span
        return t_max - t_min + 1


_CACHE: Dict[Tuple[str, float, float, Tuple[str, ...]], ExperimentContext] = {}


def build_context(dataset: str, *, scale: float = DEFAULT_SCALE,
                  z_multiple: float = DEFAULT_Z_MULTIPLE,
                  include: Optional[Iterable[str]] = None,
                  workload_seed: int = 42) -> ExperimentContext:
    """Build (without caching) a fully inserted experiment context."""
    stream = load_dataset(dataset, scale=scale)
    truth = ExactTemporalGraph()
    truth.insert_stream(stream)
    methods = make_methods(stream, include=include, z_multiple=z_multiple)
    insert_seconds: Dict[str, float] = {}
    for name, method in methods.items():
        _count, insert_seconds[name] = ingest(method, stream)
    workload = QueryWorkloadGenerator(stream, WorkloadConfig(seed=workload_seed))
    return ExperimentContext(dataset=dataset, stream=stream, truth=truth,
                             methods=methods, insert_seconds=insert_seconds,
                             workload=workload)


def get_context(dataset: str, *, scale: float = DEFAULT_SCALE,
                z_multiple: float = DEFAULT_Z_MULTIPLE,
                include: Optional[Iterable[str]] = None) -> ExperimentContext:
    """Return a cached, fully inserted context for ``dataset`` at ``scale``."""
    key = (dataset, scale, z_multiple,
           tuple(include) if include is not None else tuple(METHOD_ORDER))
    context = _CACHE.get(key)
    if context is None:
        context = build_context(dataset, scale=scale, z_multiple=z_multiple,
                                include=include)
        _CACHE[key] = context
    return context


def clear_context_cache() -> None:
    """Drop every cached context (used by tests to keep memory bounded)."""
    _CACHE.clear()
