"""One module per paper experiment (tables and figures)."""

from .motivation import run_table2, run_fig2_skewness, run_fig3_irregularity
from .primitives import (run_query_experiment, run_fig10_edge_queries,
                         run_fig11_vertex_queries)
from .composite import run_fig12_path_queries, run_fig13_subgraph_queries
from .irregularity import run_fig14_skewness, run_fig15_variance
from .update_cost import (run_batch_speedup, run_fig16_17_update_cost,
                          run_fig18_delete_throughput)
from .rebalance import run_rebalance
from .serve import run_serving
from .sharded import run_sharded_scaling
from .space_cost import run_fig19_space_cost
from .ablation import run_fig20a_parallelization, run_fig20b_mmb_and_ob
from .parameters import run_fig21_parameters

__all__ = [
    "run_table2", "run_fig2_skewness", "run_fig3_irregularity",
    "run_query_experiment", "run_fig10_edge_queries", "run_fig11_vertex_queries",
    "run_fig12_path_queries", "run_fig13_subgraph_queries",
    "run_fig14_skewness", "run_fig15_variance",
    "run_fig16_17_update_cost", "run_fig18_delete_throughput",
    "run_batch_speedup", "run_sharded_scaling", "run_serving",
    "run_rebalance",
    "run_fig19_space_cost",
    "run_fig20a_parallelization", "run_fig20b_mmb_and_ob",
    "run_fig21_parameters",
]
