"""Optimization ablation (paper Fig. 20).

Three panels:

* **Parallelization** — insertion throughput of HIGGS with the pipelined
  inserter versus plain sequential insertion (the paper reports ≥3× from
  thread-per-layer; in CPython the batched pipeline captures the structural
  benefit, see DESIGN.md §3).
* **Multiple mapping buckets (MMB)** — space efficiency with ``r = 4``
  candidate addresses versus ``r = 1`` (single bucket).
* **Overflow blocks (OB)** — edge-query accuracy with and without overflow
  blocks on streams with many simultaneous arrivals.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ...baselines.exact import ExactTemporalGraph
from ...core import Higgs
from ...core.parallel import insert_stream_parallel
from ...queries.evaluation import evaluate_queries
from ...queries.workload import QueryWorkloadGenerator, WorkloadConfig
from ...streams.datasets import DATASET_ORDER, load_dataset
from ..context import DEFAULT_SCALE
from ..methods import scaled_higgs_config


def run_fig20a_parallelization(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                               scale: float = DEFAULT_SCALE
                               ) -> List[Dict[str, object]]:
    """Fig. 20(a): HIGGS insertion throughput with and without the pipeline."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        for mode in ("serial", "batched", "threaded"):
            summary = Higgs(scaled_higgs_config(len(stream)))
            start = time.perf_counter()
            insert_stream_parallel(summary, stream, mode=mode)
            elapsed = time.perf_counter() - start
            rows.append({
                "figure": "fig20a",
                "dataset": dataset,
                "variant": f"HIGGS-{mode}",
                "items": len(stream),
                "insert_seconds": elapsed,
                "throughput_eps": len(stream) / elapsed if elapsed else 0.0,
            })
    return rows


def run_fig20b_mmb_and_ob(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                          scale: float = DEFAULT_SCALE,
                          edge_queries: int = 150,
                          range_fraction: float = 0.05,
                          workload_seed: int = 29) -> List[Dict[str, object]]:
    """Fig. 20(b): space cost without MMB and accuracy without overflow blocks.

    Four HIGGS variants are compared: the full structure, MMB disabled
    (``num_probes = 1``), OB disabled, and both disabled.
    """
    variants = {
        "HIGGS": dict(num_probes=4, enable_overflow_blocks=True),
        "HIGGS-noMMB": dict(num_probes=1, enable_overflow_blocks=True),
        "HIGGS-noOB": dict(num_probes=4, enable_overflow_blocks=False),
        "HIGGS-noMMB-noOB": dict(num_probes=1, enable_overflow_blocks=False),
    }
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        truth = ExactTemporalGraph()
        truth.insert_stream(stream)
        workload = QueryWorkloadGenerator(stream, WorkloadConfig(seed=workload_seed))
        t_min, t_max = stream.time_span
        range_length = max(1, int((t_max - t_min + 1) * range_fraction))
        queries = workload.edge_queries(edge_queries, range_length)
        for variant, options in variants.items():
            summary = Higgs(scaled_higgs_config(len(stream), **options))
            summary.insert_stream(stream)
            result = evaluate_queries(summary, queries, truth)
            rows.append({
                "figure": "fig20b",
                "dataset": dataset,
                "variant": variant,
                "memory_mb": summary.memory_bytes() / 1e6,
                "leaf_count": summary.leaf_count,
                "aae": result.aae,
                "are": result.are,
            })
    return rows
