"""Path and subgraph query experiments (paper Figs. 12 and 13).

Path queries sweep the number of hops (1-7 in the paper) with the temporal
range fixed; subgraph queries sweep the subgraph size (50-350 edges in the
paper, scaled down here together with the streams).  Both report AAE, ARE and
latency per method.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ...queries.evaluation import evaluate_queries
from ...streams.datasets import DATASET_ORDER
from ..context import DEFAULT_SCALE, get_context

#: Hop counts swept for path queries (matches the paper's 1-7 range).
DEFAULT_HOPS: Sequence[int] = (1, 2, 3, 4, 5, 6, 7)

#: Subgraph sizes swept; the paper uses 50-350 edges, scaled here to keep
#: laptop runtimes while preserving the growth trend.
DEFAULT_SUBGRAPH_SIZES: Sequence[int] = (10, 25, 50, 75, 100)

#: Fraction of the stream's span used as the fixed temporal range (the paper
#: fixes the range to 10^5 seconds, roughly mid-span for its traces).
DEFAULT_RANGE_FRACTION = 0.3


def run_fig12_path_queries(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                           scale: float = DEFAULT_SCALE,
                           hops: Sequence[int] = DEFAULT_HOPS,
                           queries_per_setting: int = 50,
                           range_fraction: float = DEFAULT_RANGE_FRACTION,
                           methods: Optional[Iterable[str]] = None,
                           use_batch: bool = True
                           ) -> List[Dict[str, object]]:
    """Fig. 12: path-query AAE / ARE / latency versus the number of hops."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        context = get_context(dataset, scale=scale, include=methods)
        range_length = max(1, int(context.span_length * range_fraction))
        for hop_count in hops:
            queries = context.workload.path_queries(queries_per_setting,
                                                    hop_count, range_length)
            for name, summary in context.methods.items():
                result = evaluate_queries(summary, queries, context.truth,
                                          use_batch=use_batch)
                rows.append({
                    "figure": "fig12",
                    "dataset": dataset,
                    "hops": hop_count,
                    "method": name,
                    "aae": result.aae,
                    "are": result.are,
                    "latency_us": result.average_latency_micros,
                    "queries": result.total_queries,
                })
    return rows


def run_fig13_subgraph_queries(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                               scale: float = DEFAULT_SCALE,
                               sizes: Sequence[int] = DEFAULT_SUBGRAPH_SIZES,
                               queries_per_setting: int = 20,
                               range_fraction: float = DEFAULT_RANGE_FRACTION,
                               methods: Optional[Iterable[str]] = None,
                               use_batch: bool = True
                               ) -> List[Dict[str, object]]:
    """Fig. 13: subgraph-query AAE / ARE / latency versus the subgraph size."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        context = get_context(dataset, scale=scale, include=methods)
        range_length = max(1, int(context.span_length * range_fraction))
        for size in sizes:
            queries = context.workload.subgraph_queries(queries_per_setting,
                                                        size, range_length)
            for name, summary in context.methods.items():
                result = evaluate_queries(summary, queries, context.truth,
                                          use_batch=use_batch)
                rows.append({
                    "figure": "fig13",
                    "dataset": dataset,
                    "subgraph_size": size,
                    "method": name,
                    "aae": result.aae,
                    "are": result.are,
                    "latency_us": result.average_latency_micros,
                    "queries": result.total_queries,
                })
    return rows
