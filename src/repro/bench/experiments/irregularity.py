"""Stream-irregularity experiments (paper Figs. 14 and 15).

The paper synthesizes datasets with controlled vertex-degree skewness
(power-law exponents 1.5-3.0) and controlled arrival variance (600-1600) and
reports, for each setting: vertex-query AAE, vertex-query latency, space
cost, and insertion throughput of every method.  This module reproduces both
sweeps at reduced scale with the same four panels.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ...baselines.exact import ExactTemporalGraph
from ...queries.evaluation import evaluate_queries
from ...queries.workload import QueryWorkloadGenerator, WorkloadConfig
from ...streams.edge import GraphStream
from ...streams.generators import StreamSpec, generate_stream
from ..methods import make_methods

#: Power-law exponents swept by Fig. 14 (same values as the paper).
DEFAULT_SKEWNESS: Sequence[float] = (1.5, 1.8, 2.1, 2.4, 2.7, 3.0)

#: Arrival-variance values swept by Fig. 15 (same values as the paper).
DEFAULT_VARIANCES: Sequence[float] = (600, 800, 1000, 1200, 1400, 1600)

#: Synthetic stream size: the paper uses 100 K nodes / 5 M edges; scaled here.
DEFAULT_NUM_VERTICES = 1_500
DEFAULT_NUM_EDGES = 12_000


def _evaluate_stream(stream: GraphStream, *, setting: str, value: float,
                     figure: str, vertex_queries: int,
                     methods: Optional[Iterable[str]],
                     range_fraction: float = 0.3,
                     workload_seed: int = 23) -> List[Dict[str, object]]:
    truth = ExactTemporalGraph()
    truth.insert_stream(stream)
    workload = QueryWorkloadGenerator(stream, WorkloadConfig(seed=workload_seed))
    t_min, t_max = stream.time_span
    range_length = max(1, int((t_max - t_min + 1) * range_fraction))
    queries = workload.vertex_queries(vertex_queries, range_length)

    rows: List[Dict[str, object]] = []
    summaries = make_methods(stream, include=methods)
    for name, summary in summaries.items():
        start = time.perf_counter()
        summary.insert_stream(stream)
        insert_elapsed = time.perf_counter() - start
        result = evaluate_queries(summary, queries, truth)
        rows.append({
            "figure": figure,
            setting: value,
            "method": name,
            "aae": result.aae,
            "latency_us": result.average_latency_micros,
            "memory_mb": summary.memory_bytes() / 1e6,
            "throughput_eps": len(stream) / insert_elapsed if insert_elapsed else 0.0,
        })
    return rows


def run_fig14_skewness(*, skewness_values: Sequence[float] = DEFAULT_SKEWNESS,
                       num_vertices: int = DEFAULT_NUM_VERTICES,
                       num_edges: int = DEFAULT_NUM_EDGES,
                       vertex_queries: int = 40,
                       methods: Optional[Iterable[str]] = None,
                       seed: int = 31) -> List[Dict[str, object]]:
    """Fig. 14: vertex query accuracy/latency and update cost vs degree skewness."""
    rows: List[Dict[str, object]] = []
    for offset, exponent in enumerate(skewness_values):
        spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                          skewness=exponent, time_span=max(1000, num_edges // 2),
                          seed=seed + offset, name=f"skew-{exponent:.1f}")
        stream = generate_stream(spec)
        rows.extend(_evaluate_stream(stream, setting="skewness", value=exponent,
                                     figure="fig14", vertex_queries=vertex_queries,
                                     methods=methods))
    return rows


def run_fig15_variance(*, variance_values: Sequence[float] = DEFAULT_VARIANCES,
                       num_vertices: int = DEFAULT_NUM_VERTICES,
                       num_edges: int = DEFAULT_NUM_EDGES,
                       vertex_queries: int = 40,
                       methods: Optional[Iterable[str]] = None,
                       seed: int = 37) -> List[Dict[str, object]]:
    """Fig. 15: vertex query accuracy/latency and update cost vs arrival variance."""
    rows: List[Dict[str, object]] = []
    for offset, variance in enumerate(variance_values):
        spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                          skewness=2.0, time_span=max(1000, num_edges // 2),
                          arrival_variance=float(variance), seed=seed + offset,
                          name=f"var-{int(variance)}")
        stream = generate_stream(spec)
        rows.extend(_evaluate_stream(stream, setting="variance", value=variance,
                                     figure="fig15", vertex_queries=vertex_queries,
                                     methods=methods))
    return rows
