"""Motivation statistics: Table II, Fig. 2 (degree skewness), Fig. 3 (arrival
irregularity).

These experiments characterize the datasets themselves rather than compare
methods; they regenerate the descriptive statistics the paper uses to argue
that graph streams are irregular.
"""

from __future__ import annotations

from typing import Dict, List

from ...streams import analysis
from ...streams.datasets import DATASET_ORDER, load_dataset, table2_rows
from ..context import DEFAULT_SCALE


def run_table2(*, scale: float = DEFAULT_SCALE) -> List[Dict[str, object]]:
    """Regenerate Table II (dataset summary) for the synthetic analogues."""
    return table2_rows(scale=scale)


def run_fig2_skewness(*, scale: float = DEFAULT_SCALE,
                      datasets: tuple = tuple(DATASET_ORDER)) -> List[Dict[str, object]]:
    """Degree-skewness statistics behind Fig. 2 (one row per dataset).

    The paper plots the full log-log degree distribution; the harness reports
    the summary statistics (max degree, Gini coefficient, head-vertex share)
    that capture the same skewness story, plus the first points of the CCDF.
    """
    rows = []
    for key in datasets:
        stream = load_dataset(key, scale=scale)
        stats = analysis.degree_stats(stream)
        ccdf = analysis.degree_ccdf(stream)
        tail = [point for point in ccdf if point[0] >= stats.max_degree // 4] or ccdf[-1:]
        rows.append({
            "dataset": key,
            "vertices": len(stream.vertices()),
            "edges": len(stream),
            "max_out_degree": stats.max_degree,
            "mean_out_degree": round(stats.mean_degree, 2),
            "median_out_degree": stats.median_degree,
            "degree_gini": round(stats.gini, 3),
            "top1pct_edge_share": round(stats.top1_percent_share, 3),
            "ccdf_tail_degree": tail[0][0],
            "ccdf_tail_probability": round(tail[0][1], 5),
        })
    return rows


def run_fig3_irregularity(*, scale: float = DEFAULT_SCALE, num_bins: int = 40,
                          datasets: tuple = tuple(DATASET_ORDER)) -> List[Dict[str, object]]:
    """Arrival-irregularity statistics behind Fig. 3 (one row per dataset)."""
    rows = []
    for key in datasets:
        stream = load_dataset(key, scale=scale)
        histogram = analysis.arrival_histogram(stream, num_bins=num_bins)
        counts = [count for _, count in histogram]
        mean = sum(counts) / len(counts) if counts else 0.0
        peak = max(counts) if counts else 0
        rows.append({
            "dataset": key,
            "edges": len(stream),
            "time_bins": len(counts),
            "mean_edges_per_bin": round(mean, 1),
            "peak_edges_per_bin": peak,
            "peak_to_mean_ratio": round(peak / mean, 2) if mean else 0.0,
            "arrival_variance": round(analysis.arrival_variance(stream,
                                                                num_bins=num_bins), 1),
        })
    return rows
