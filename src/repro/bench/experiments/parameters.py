"""Parameter sensitivity experiment (paper Fig. 21).

Sweeps the leaf matrix size ``d1`` and reports the resulting space overhead
and average edge-query latency: larger leaves cost more space but answer
queries faster (fewer leaves per range), which is the trade-off behind the
paper's recommendation of ``d1 = 16``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Sequence

from ...baselines.exact import ExactTemporalGraph
from ...core import Higgs
from ...queries.evaluation import evaluate_queries
from ...queries.workload import QueryWorkloadGenerator, WorkloadConfig
from ...streams.datasets import DATASET_ORDER, load_dataset
from ..context import DEFAULT_SCALE
from ..methods import scaled_higgs_config

#: Leaf matrix sizes swept (the paper recommends 16).
DEFAULT_LEAF_SIZES: Sequence[int] = (4, 8, 16, 32, 64)


def run_fig21_parameters(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                         scale: float = DEFAULT_SCALE,
                         leaf_sizes: Sequence[int] = DEFAULT_LEAF_SIZES,
                         edge_queries: int = 100,
                         range_fraction: float = 0.1,
                         workload_seed: int = 41) -> List[Dict[str, object]]:
    """Fig. 21: HIGGS space cost and query latency versus the leaf matrix size d1."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        truth = ExactTemporalGraph()
        truth.insert_stream(stream)
        workload = QueryWorkloadGenerator(stream, WorkloadConfig(seed=workload_seed))
        t_min, t_max = stream.time_span
        range_length = max(1, int((t_max - t_min + 1) * range_fraction))
        queries = workload.edge_queries(edge_queries, range_length)
        for leaf_size in leaf_sizes:
            summary = Higgs(scaled_higgs_config(len(stream),
                                                leaf_matrix_size=leaf_size))
            start = time.perf_counter()
            summary.insert_stream(stream)
            insert_elapsed = time.perf_counter() - start
            result = evaluate_queries(summary, queries, truth)
            rows.append({
                "figure": "fig21",
                "dataset": dataset,
                "d1": leaf_size,
                "memory_mb": summary.memory_bytes() / 1e6,
                "latency_us": result.average_latency_micros,
                "aae": result.aae,
                "leaf_count": summary.leaf_count,
                "height": summary.height,
                "insert_throughput_eps": (len(stream) / insert_elapsed
                                          if insert_elapsed else 0.0),
            })
    return rows
