"""Edge and vertex query experiments (paper Figs. 10 and 11).

For each dataset and each query-range length ``Lq``, a fixed workload of
edge (or vertex) queries is evaluated on every method; the experiment reports
AAE, ARE and average query latency — the three panels of Figs. 10/11.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ...errors import BenchmarkError
from ...queries.evaluation import evaluate_queries
from ...streams.datasets import DATASET_ORDER
from ..context import DEFAULT_SCALE, get_context

#: Query-range lengths swept by default; the paper sweeps 10^1..10^7 seconds,
#: scaled here to the synthetic streams' spans.
DEFAULT_RANGE_LENGTHS: Sequence[int] = (10, 100, 1_000, 10_000)


def _range_lengths_for(span: int,
                       requested: Sequence[int]) -> List[int]:
    lengths = [length for length in requested if length <= span]
    if span not in lengths:
        lengths.append(span)
    return lengths


def run_query_experiment(kind: str, *,
                         datasets: Iterable[str] = tuple(DATASET_ORDER),
                         scale: float = DEFAULT_SCALE,
                         range_lengths: Sequence[int] = DEFAULT_RANGE_LENGTHS,
                         queries_per_length: int = 200,
                         methods: Optional[Iterable[str]] = None,
                         use_batch: bool = True
                         ) -> List[Dict[str, object]]:
    """Run the Fig. 10 (``kind="edge"``) or Fig. 11 (``kind="vertex"``) sweep.

    Queries are evaluated through the bulk ``query_batch`` API by default
    (estimates are bit-identical to the per-item path; latency is amortized
    per query); pass ``use_batch=False`` for per-item timing.

    Returns long-format rows ``(dataset, Lq, method, aae, are, latency_us)``.
    """
    if kind not in ("edge", "vertex"):
        raise BenchmarkError("kind must be 'edge' or 'vertex'")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        context = get_context(dataset, scale=scale, include=methods)
        for length in _range_lengths_for(context.span_length, range_lengths):
            if kind == "edge":  # noqa: SIM108 - multiline branches read better
                queries = context.workload.edge_queries(queries_per_length, length)
            else:
                queries = context.workload.vertex_queries(
                    max(10, queries_per_length // 4), length)
            for name, summary in context.methods.items():
                result = evaluate_queries(summary, queries, context.truth,
                                          use_batch=use_batch)
                rows.append({
                    "figure": "fig10" if kind == "edge" else "fig11",
                    "dataset": dataset,
                    "query_kind": kind,
                    "range_length": length,
                    "method": name,
                    "aae": result.aae,
                    "are": result.are,
                    "latency_us": result.average_latency_micros,
                    "queries": result.total_queries,
                    "underestimates": result.accuracy.underestimates,
                })
    return rows


def run_fig10_edge_queries(**kwargs) -> List[Dict[str, object]]:
    """Fig. 10: edge-query AAE / ARE / latency versus the query-range length."""
    return run_query_experiment("edge", **kwargs)


def run_fig11_vertex_queries(**kwargs) -> List[Dict[str, object]]:
    """Fig. 11: vertex-query AAE / ARE / latency versus the query-range length."""
    return run_query_experiment("vertex", **kwargs)
