"""Elastic rebalancing and crash-recovery experiment.

Two row groups, both on the sharded HIGGS engine:

* ``figure = "rebalance"`` — the live-migration story.  A 4-shard,
  source-partitioned engine ingests three phases of one stream family:

  1. ``balanced`` — the natural stream; hash partitioning spreads sources
     evenly, the projected-parallel throughput is the healthy baseline.
  2. ``skewed`` — the same stream reskewed so ~90 % of edges hash into one
     hot shard (:func:`~repro.streams.generators.reskew_to_shards`).  The
     slowest-shard term dominates and the projected throughput collapses.
  3. ``rebalanced`` — mid-run, a :class:`~repro.sharding.RebalancePlan`
     reassigns the hottest observed sources off the hot shard (the elastic
     ``rebalance()`` path: quiesce, reassign keys, keep serving), then the
     skewed tail continues.  Throughput recovers because future edges of
     the moved keys land on cold shards while reads stay exact (owner
     unions).

  The headline ratio ``recovery_x`` compares the slowest-shard *item
  count* of the skewed phase against the rebalanced phase.  In the
  projected-parallel model (see ``sharded.py``) the slowest shard's work
  is what bounds scale-out throughput and per-item cost cancels in the
  ratio, so this **is** the throughput-recovery factor — computed from
  deterministic counters, which is what makes it gateable
  (``rebalance_recovery_x`` in ``tools/check_perf.py``): a broken
  reassignment path leaves the hot shard hot and the ratio at ~1×, while
  wall-clock noise on sub-second phases cannot flake the gate.  The
  timed equivalent, ``measured_x = rebalanced_eps / skewed_eps`` from
  busy-counter deltas, is reported alongside as an informational metric.

* ``figure = "rebalance-recovery"`` — the crash story.  A process-executor
  engine with a configured snapshot directory ingests, snapshots, ingests
  more, then the busiest worker is SIGTERM-killed.  The row reports the
  wall-clock ``recover_s`` of
  :meth:`~repro.sharding.ShardedSummary.recover_dead_shards` and
  ``lost_edges`` — which the engine's loss bound pins to exactly the
  victim's acknowledged-since-snapshot count (test-asserted in
  ``tests/test_rebalance.py``).
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import Counter
from typing import Dict, List, Optional

from ...sharding import (HiggsShardFactory, RebalancePlan, ShardedSummary,
                         SnapshotConfig)
from ...streams.edge import GraphStream
from ...streams.generators import StreamSpec, generate_stream, reskew_to_shards
from ..methods import make_sharded_higgs, scaled_higgs_config

#: Shared column order for both row groups: phase rows leave the recovery
#: columns blank and vice versa, so one aligned table tells both stories.
COLUMNS = ("figure", "dataset", "phase", "shards", "items", "max_items",
           "wall_s", "parallel_s", "parallel_eps", "imbalance",
           "recovery_x", "measured_x", "snapshot_s", "recover_s",
           "lost_edges")


def _row(**values: object) -> Dict[str, object]:
    """A result row with every column present (blank when not measured)."""
    row: Dict[str, object] = {column: "" for column in COLUMNS}
    row.update(values)
    return row


def _phase_metrics(engine, edges) -> Dict[str, float]:
    """Ingest ``edges``; return projected-parallel metrics for this phase.

    Uses busy-counter and item-counter *deltas* around the phase so each
    phase is measured in isolation even though all phases share one
    engine.  ``max_items`` (the slowest shard's edge count) is the
    deterministic load figure the gated recovery ratio is built from.
    """
    busy_before = engine.shard_busy_seconds()
    items_before = engine.shard_items()
    start = time.perf_counter()
    engine.insert_batch(edges)
    wall = time.perf_counter() - start
    busy = [after - before for after, before
            in zip(engine.shard_busy_seconds(), busy_before)]
    per_shard = [after - before for after, before
                 in zip(engine.shard_items(), items_before)]
    overhead = max(0.0, wall - sum(busy))
    parallel_s = overhead + (max(busy) if busy else 0.0)
    mean_busy = sum(busy) / len(busy) if busy else 0.0
    return {
        "items": len(edges),
        "max_items": max(per_shard) if per_shard else 0,
        "wall_s": wall,
        "parallel_s": parallel_s,
        "parallel_eps": len(edges) / parallel_s if parallel_s else 0.0,
        "imbalance": (max(busy) / mean_busy) if mean_busy > 0 else 1.0,
    }


def _hot_reassignment_plan(engine, edges, num_shards: int,
                           max_keys: int) -> RebalancePlan:
    """Move the hottest observed sources off their shard, round-robin.

    Picks the ``max_keys`` most frequent sources in ``edges`` that hash
    into the busiest shard and spreads them across the other shards — the
    decision a load-aware rebalancer would make from the same counters the
    engine already exposes.
    """
    part = engine.partitioner
    per_shard = Counter(part.shard_of_vertex(e.source) for e in edges)
    hot_shard = per_shard.most_common(1)[0][0]
    hot_sources = Counter(e.source for e in edges
                          if part.shard_of_vertex(e.source) == hot_shard)
    cold = [s for s in range(num_shards) if s != hot_shard]
    reassign = {vertex: cold[rank % len(cold)]
                for rank, (vertex, _) in
                enumerate(hot_sources.most_common(max_keys))}
    return RebalancePlan(reassign=reassign)


def run_rebalance(*, num_edges: int = 60_000, num_vertices: int = 2_000,
                  time_span: int = 10_000, seed: int = 7,
                  skewness: float = 1.5, shards: int = 4,
                  hot_fraction: float = 0.9, reassign_keys: int = 96,
                  scale: Optional[float] = None) -> List[Dict[str, object]]:
    """Throughput recovery after live rebalancing, plus kill-a-worker cost.

    See the module docstring for the experimental design.  ``num_edges``
    is the *per-phase* edge count; ``scale`` (the CLI knob) scales it and
    ``time_span`` together.  Returns one row per phase plus one
    crash-recovery row.
    """
    if scale is not None:
        num_edges = max(1_000, int(num_edges * scale))
        time_span = max(100, int(time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges * 2,
                      time_span=time_span, skewness=skewness,
                      arrival_variance=800.0, seed=seed,
                      name=f"rebalance-synth-{num_edges}")
    natural = generate_stream(spec)
    skewed = reskew_to_shards(natural, num_shards=shards, hot_shards=1,
                              hot_fraction=hot_fraction)
    balanced_edges = list(natural)[:num_edges]
    skewed_edges = list(skewed)
    skew_head, skew_tail = skewed_edges[:num_edges], skewed_edges[num_edges:]

    rows: List[Dict[str, object]] = []
    engine = make_sharded_higgs(natural, shards, executor="serial",
                                partition_by="source")
    try:
        phases = [("balanced", natural.name, balanced_edges, None),
                  ("skewed", skewed.name, skew_head, None),
                  ("rebalanced", skewed.name, skew_tail, skew_head)]
        by_phase: Dict[str, Dict[str, float]] = {}
        for phase, dataset, edges, observed in phases:
            if observed is not None:
                plan = _hot_reassignment_plan(engine, observed, shards,
                                              reassign_keys)
                engine.rebalance(plan)
            metrics = _phase_metrics(engine, edges)
            by_phase[phase] = metrics
            extra: Dict[str, object] = {}
            if phase == "rebalanced":
                skewed_metrics = by_phase["skewed"]
                if metrics["max_items"]:
                    extra["recovery_x"] = (skewed_metrics["max_items"] /
                                           metrics["max_items"])
                if skewed_metrics["parallel_eps"]:
                    extra["measured_x"] = (metrics["parallel_eps"] /
                                           skewed_metrics["parallel_eps"])
            rows.append(_row(figure="rebalance", dataset=dataset,
                             phase=phase, shards=shards, **metrics, **extra))
    finally:
        engine.close()

    rows.append(_run_crash_recovery(natural, shards, num_edges))
    return rows


def _run_crash_recovery(stream: GraphStream, shards: int,
                        num_edges: int) -> Dict[str, object]:
    """Kill one worker of a process-executor engine; time the recovery."""
    edges = list(stream)[:num_edges]
    half = len(edges) // 2
    factory = HiggsShardFactory(scaled_higgs_config(len(edges)))
    with tempfile.TemporaryDirectory() as tmp:
        engine = ShardedSummary(
            factory, shards=shards, executor="process",
            partition_by="source",
            snapshot=SnapshotConfig(directory=os.path.join(tmp, "snap")))
        try:
            engine.insert_batch(edges[:half])
            snap_start = time.perf_counter()
            engine.snapshot()
            snapshot_s = time.perf_counter() - snap_start
            engine.insert_batch(edges[half:])
            before = engine.shard_items()
            victim = max(range(shards), key=lambda s: before[s])
            worker = engine._workers[victim]
            worker._process.terminate()
            worker._process.join(timeout=10)
            recover_start = time.perf_counter()
            recovered = engine.recover_dead_shards()
            recover_s = time.perf_counter() - recover_start
            assert recovered == [victim]
            lost = before[victim] - engine.shard_items()[victim]
        finally:
            engine.close()
    return _row(figure="rebalance-recovery", dataset=stream.name,
                phase="kill-worker", shards=shards, items=len(edges),
                snapshot_s=snapshot_s, recover_s=recover_s, lost_edges=lost)
