"""Concurrent serving experiment: mixed read/write traffic, latency + throughput.

Drives the :class:`~repro.serving.ServingEngine` with the mixed-workload
generator (:func:`~repro.streams.generators.generate_mixed_workload`) over a
sharded HIGGS engine, sweeping the **read ratio** (write-heavy ingestion to
read-heavy analytics) and the **client count** (closed-loop concurrency).
Per configuration it reports:

* ``req_per_s`` — served requests per wall-clock second (the serving
  throughput figure), plus ``edges_per_s`` for the write side;
* ``p50_ms`` / ``p95_ms`` / ``p99_ms`` — admission-to-completion latency
  percentiles over all requests, from the engine's sliding-window tracker
  (``read_p50_ms`` splits out the read side);
* ``epochs`` — how many write epochs the scheduler committed, i.e. how much
  coalescing the admission queue achieved (requests per epoch is the
  batching win that keeps the engine ahead of per-request dispatch).

All rows run the same closed-loop harness: each client thread submits its
next request when the previous one resolves, so concurrency — not an
arrival-rate guess — sets the offered load.  A final row group
(``figure = "serving-open"``) replays the 50 % ratio as an **open-loop**
workload with Poisson arrivals at a rate above the closed-loop capacity and
the ``"drop"`` admission policy, demonstrating backpressure: the engine
sheds the excess (``dropped`` column) instead of queueing without bound.

The scheduler and the clients all share one CPU in this harness, so the
absolute throughput is a floor; the serving layer's scatter path inherits
the sharded engine's scale-out projection (see the ``sharded`` experiment).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from ...core.config import ServingConfig
from ...errors import BenchmarkError, ServingError
from ...serving import ServingEngine
from ...streams.generators import (MixedWorkloadSpec, ServingOp, StreamSpec,
                                   generate_mixed_workload, generate_stream)
from ..methods import make_sharded_higgs

#: How long the harness waits for a client thread after its futures should
#: all have resolved (their own timeout is 120 s).  A thread alive past this
#: is wedged — the run aborts with attribution instead of hanging the bench.
_CLIENT_JOIN_TIMEOUT_S = 150.0


def _drive_closed_loop(engine: ServingEngine, ops: Sequence[ServingOp],
                       clients: int) -> Dict[str, float]:
    """Replay ``ops`` through ``clients`` closed-loop threads; return timing.

    Ops are dealt round-robin and each client advances independently, so at
    ``clients > 1`` the global submission order is only per-client — a read
    can occasionally be served before the write that creates its target key
    (a cold read), exactly as with real concurrent clients.  The
    single-client rows preserve the generator's strict warm-key ordering.

    Client failures abort the run: every client error is collected and
    re-raised as one :class:`~repro.errors.BenchmarkError` naming the count
    and chaining the first cause, so a broken configuration can never be
    mistaken for a fast one.  Joins are bounded by
    :data:`_CLIENT_JOIN_TIMEOUT_S`; a client alive past that is reported as
    stuck instead of hanging the whole benchmark.
    """
    slices = [list(ops[i::clients]) for i in range(clients)]
    errors: List[BaseException] = []

    def run_client(my_ops: List[ServingOp]) -> None:
        try:
            for op in my_ops:
                future = engine.submit_write(op.edges) if op.kind == "write" \
                    else engine.submit_query(op.query)
                future.result(timeout=120.0)
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(chunk,), daemon=True)
               for chunk in slices if chunk]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    stuck: List[str] = []
    for thread in threads:
        thread.join(timeout=_CLIENT_JOIN_TIMEOUT_S)
        if thread.is_alive():
            stuck.append(thread.name)
    wall = time.perf_counter() - start
    if stuck:
        raise BenchmarkError(
            f"{len(stuck)} serving client thread(s) still running after "
            f"{_CLIENT_JOIN_TIMEOUT_S:.0f}s: {', '.join(stuck)}")
    if errors:
        raise BenchmarkError(
            f"{len(errors)} of {len(threads)} serving clients failed; "
            f"first error: {errors[0]!r}") from errors[0]
    return {"wall_s": wall}


def _drive_open_loop(engine: ServingEngine, ops: Sequence[ServingOp]
                     ) -> Dict[str, float]:
    """Replay an open-loop workload: submit at generated arrival offsets.

    Drop-policy rejections at admission are the point of the experiment and
    are counted (``rejected``); an *accepted* request that then fails is a
    real error, so every failed future is collected and re-raised as one
    :class:`~repro.errors.BenchmarkError` (chaining the first cause) instead
    of being silently absorbed into the throughput numbers.
    """
    futures = []
    rejected = 0
    start = time.perf_counter()
    for op in ops:
        if op.arrival_s is not None:
            lag = op.arrival_s - (time.perf_counter() - start)
            if lag > 0:
                time.sleep(lag)
        try:
            if op.kind == "write":
                futures.append(engine.submit_write(op.edges))
            else:
                futures.append(engine.submit_query(op.query))
        except ServingError:
            rejected += 1
    failures: List[BaseException] = []
    for future in futures:
        try:
            future.result(timeout=120.0)
        except Exception as exc:  # noqa: BLE001 - aggregated below
            failures.append(exc)
    wall = time.perf_counter() - start
    if failures:
        raise BenchmarkError(
            f"{len(failures)} of {len(futures)} accepted open-loop requests "
            f"failed; first error: {failures[0]!r}") from failures[0]
    return {"wall_s": wall, "rejected": rejected, "accepted": len(futures)}


def _percentile_ms(report: Dict[str, float], key: str) -> float:
    """One latency percentile in milliseconds (0 when the kind is cold)."""
    return report.get(key, 0.0) * 1e3


def _measure(stream, ops: Sequence[ServingOp], *, shards: int, clients: int,
             config: ServingConfig, open_loop: bool = False) -> Dict[str, object]:
    """Run one serving configuration; return its metric dict."""
    engine = make_sharded_higgs(stream, shards, executor="serial")
    try:
        with ServingEngine(engine, config) as serving:
            timing = _drive_open_loop(serving, ops) if open_loop \
                else _drive_closed_loop(serving, ops, clients)
            serving.flush()
            stats = serving.stats()
    finally:
        engine.close()
    latency = stats["latency"]
    reads = stats["reads_served"]
    writes = stats["writes_served"]
    served = reads + writes
    wall = timing["wall_s"]
    read_report = latency.get("read", {})
    write_report = latency.get("write", {})
    return {
        "requests": served,
        "reads": reads,
        "writes": writes,
        "wall_s": wall,
        "req_per_s": served / wall if wall else 0.0,
        "edges_per_s": stats["edges_inserted"] / wall if wall else 0.0,
        "epochs": stats["epochs"],
        # The engine's own counter covers the open-loop rejections too — the
        # driver's local count tallies the same ServingError events.
        "dropped": stats["dropped"],
        # The headline percentiles take the slower of the two request kinds,
        # so a read-heavy and a write-heavy row stay comparable.
        "p50_ms": max(_percentile_ms(read_report, "p50"),
                      _percentile_ms(write_report, "p50")),
        "p95_ms": max(_percentile_ms(read_report, "p95"),
                      _percentile_ms(write_report, "p95")),
        "p99_ms": max(_percentile_ms(read_report, "p99"),
                      _percentile_ms(write_report, "p99")),
        "read_p50_ms": _percentile_ms(read_report, "p50"),
        "read_p99_ms": _percentile_ms(read_report, "p99"),
    }


def run_serving(*, num_edges: int = 60_000, num_vertices: int = 2_000,
                time_span: int = 6_000, seed: int = 7,
                read_ratios: Sequence[float] = (0.1, 0.5, 0.9),
                client_counts: Sequence[int] = (1, 4, 8),
                shards: int = 4, write_batch: int = 32,
                scale: Optional[float] = None) -> List[Dict[str, object]]:
    """Mixed-workload serving benchmark: read-ratio × client-count sweep.

    Builds one synthetic stream (the sharded experiment's family), derives a
    mixed workload per read ratio, and drives it closed-loop at each client
    count through a fresh ``ServingEngine`` over a ``shards``-way HIGGS
    engine.  A final open-loop row demonstrates drop-policy backpressure.

    ``scale`` (the CLI's dataset knob) scales ``num_edges`` and
    ``time_span`` together when given, like the other system experiments.

    Returns the table as a list of row dictionaries.
    """
    if scale is not None:
        num_edges = max(1_000, int(num_edges * scale))
        time_span = max(100, int(time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                      time_span=time_span, skewness=1.8,
                      arrival_variance=800.0, seed=seed,
                      name=f"serve-synth-{num_edges}")
    stream = generate_stream(spec)
    config = ServingConfig()

    rows: List[Dict[str, object]] = []
    for read_ratio in read_ratios:
        # Size the request count so every ratio replays the whole stream on
        # the write side: writes = stream/write_batch, reads scale on top.
        write_requests = max(1, num_edges // write_batch)
        num_requests = max(2, int(write_requests / max(0.05, 1 - read_ratio)))
        workload = MixedWorkloadSpec(num_requests=num_requests,
                                     read_ratio=read_ratio,
                                     write_batch=write_batch, seed=seed + 1)
        ops = generate_mixed_workload(stream, workload)
        for clients in client_counts:
            metrics = _measure(stream, ops, shards=shards, clients=clients,
                               config=config)
            rows.append({"figure": "serving", "dataset": stream.name,
                         "read_ratio": read_ratio, "clients": clients,
                         "arrival": "closed", **metrics})

    # Open-loop overload: offer ~3× the slowest measured closed-loop rate
    # with a small admission queue and the drop policy — backpressure in
    # action.  (min over rows: any served rate works as an overload anchor,
    # and the sweep's parameters are caller-configurable.)
    closed_rate = min((row["req_per_s"] for row in rows), default=100.0)
    overload = MixedWorkloadSpec(
        num_requests=max(2, min(2_000, num_edges // write_batch)),
        read_ratio=0.5, write_batch=write_batch, arrival="open",
        rate_rps=max(10.0, closed_rate * 3.0), seed=seed + 2)
    ops = generate_mixed_workload(stream, overload)
    drop_config = ServingConfig(max_pending=64, admission="drop")
    metrics = _measure(stream, ops, shards=shards, clients=1,
                       config=drop_config, open_loop=True)
    rows.append({"figure": "serving-open", "dataset": stream.name,
                 "read_ratio": 0.5, "clients": 1, "arrival": "open",
                 **metrics})
    return rows
