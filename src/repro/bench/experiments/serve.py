"""Concurrent serving experiment: mixed read/write traffic, latency + throughput.

Drives the :class:`~repro.serving.ServingEngine` with the mixed-workload
generator (:func:`~repro.streams.generators.generate_mixed_workload`) over a
sharded HIGGS engine, sweeping the **read ratio** (write-heavy ingestion to
read-heavy analytics) and the **client count** (closed-loop concurrency).
Per configuration it reports:

* ``req_per_s`` — served requests per wall-clock second (the serving
  throughput figure), plus ``edges_per_s`` for the write side;
* ``p50_ms`` / ``p95_ms`` / ``p99_ms`` — admission-to-completion latency
  percentiles over all requests, from the engine's sliding-window tracker
  (``read_p50_ms`` splits out the read side);
* ``epochs`` — how many write epochs the scheduler committed, i.e. how much
  coalescing the admission queue achieved (requests per epoch is the
  batching win that keeps the engine ahead of per-request dispatch).

All rows run the same closed-loop harness: each client thread submits its
next request when the previous one resolves, so concurrency — not an
arrival-rate guess — sets the offered load.  A final row group
(``figure = "serving-open"``) replays the 50 % ratio as an **open-loop**
workload with Poisson arrivals at a rate above the closed-loop capacity and
the ``"drop"`` admission policy, demonstrating backpressure: the engine
sheds the excess (``dropped`` column) instead of queueing without bound.
A second open-loop group (``figure = "serving-burst"``) drives a **bursty**
arrival process — base rate below capacity, periodic bursts above it — once
with a fixed mid-size epoch cap and once with adaptive epoch sizing
(:attr:`~repro.core.config.ServingConfig.adaptive_epochs`), the
adaptive-vs-fixed comparison of the epoch-size control loop.

Every measurement shares one
:class:`~repro.observability.MetricsRegistry` between the serving engine and
its sharded summary; the scalar columns of each row come from the engine's
``stats()`` and the full metric snapshot rides along in the row's
``metrics`` key (JSON output only — the ASCII table skips container
columns).

The scheduler and the clients all share one CPU in this harness, so the
absolute throughput is a floor; the serving layer's scatter path inherits
the sharded engine's scale-out projection (see the ``sharded`` experiment).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from ...core.config import ServingConfig
from ...errors import BenchmarkError, ServingError
from ...observability import MetricsRegistry
from ...serving import ServingEngine
from ...streams.generators import (MixedWorkloadSpec, ServingOp, StreamSpec,
                                   generate_mixed_workload, generate_stream)
from ..methods import make_sharded_higgs

#: How long the harness waits for a client thread after its futures should
#: all have resolved (their own timeout is 120 s).  A thread alive past this
#: is wedged — the run aborts with attribution instead of hanging the bench.
_CLIENT_JOIN_TIMEOUT_S = 150.0


def _drive_closed_loop(engine: ServingEngine, ops: Sequence[ServingOp],
                       clients: int) -> Dict[str, float]:
    """Replay ``ops`` through ``clients`` closed-loop threads; return timing.

    Ops are dealt round-robin and each client advances independently, so at
    ``clients > 1`` the global submission order is only per-client — a read
    can occasionally be served before the write that creates its target key
    (a cold read), exactly as with real concurrent clients.  The
    single-client rows preserve the generator's strict warm-key ordering.

    Client failures abort the run: every client error is collected and
    re-raised as one :class:`~repro.errors.BenchmarkError` naming the count
    and chaining the first cause, so a broken configuration can never be
    mistaken for a fast one.  Joins are bounded by
    :data:`_CLIENT_JOIN_TIMEOUT_S`; a client alive past that is reported as
    stuck instead of hanging the whole benchmark.
    """
    slices = [list(ops[i::clients]) for i in range(clients)]
    errors: List[BaseException] = []

    def run_client(my_ops: List[ServingOp]) -> None:
        try:
            for op in my_ops:
                future = engine.submit_write(op.edges) if op.kind == "write" \
                    else engine.submit_query(op.query)
                future.result(timeout=120.0)
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(chunk,), daemon=True)
               for chunk in slices if chunk]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    stuck: List[str] = []
    for thread in threads:
        thread.join(timeout=_CLIENT_JOIN_TIMEOUT_S)
        if thread.is_alive():
            stuck.append(thread.name)
    wall = time.perf_counter() - start
    if stuck:
        raise BenchmarkError(
            f"{len(stuck)} serving client thread(s) still running after "
            f"{_CLIENT_JOIN_TIMEOUT_S:.0f}s: {', '.join(stuck)}")
    if errors:
        raise BenchmarkError(
            f"{len(errors)} of {len(threads)} serving clients failed; "
            f"first error: {errors[0]!r}") from errors[0]
    return {"wall_s": wall}


def _drive_open_loop(engine: ServingEngine, ops: Sequence[ServingOp]
                     ) -> Dict[str, float]:
    """Replay an open-loop workload: submit at generated arrival offsets.

    Drop-policy rejections at admission are the point of the experiment and
    are counted (``rejected``); an *accepted* request that then fails is a
    real error, so every failed future is collected and re-raised as one
    :class:`~repro.errors.BenchmarkError` (chaining the first cause) instead
    of being silently absorbed into the throughput numbers.
    """
    futures = []
    rejected = 0
    start = time.perf_counter()
    for op in ops:
        if op.arrival_s is not None:
            lag = op.arrival_s - (time.perf_counter() - start)
            if lag > 0:
                time.sleep(lag)
        try:
            if op.kind == "write":
                futures.append(engine.submit_write(op.edges))
            else:
                futures.append(engine.submit_query(op.query))
        except ServingError:
            rejected += 1
    failures: List[BaseException] = []
    for future in futures:
        try:
            future.result(timeout=120.0)
        except Exception as exc:  # noqa: BLE001 - aggregated below
            failures.append(exc)
    wall = time.perf_counter() - start
    if failures:
        raise BenchmarkError(
            f"{len(failures)} of {len(futures)} accepted open-loop requests "
            f"failed; first error: {failures[0]!r}") from failures[0]
    return {"wall_s": wall, "rejected": rejected, "accepted": len(futures)}


def _percentile_ms(report: Dict[str, float], key: str) -> float:
    """One latency percentile in milliseconds (0 when the kind is cold)."""
    return report.get(key, 0.0) * 1e3


def _measure(stream, ops: Sequence[ServingOp], *, shards: int, clients: int,
             config: ServingConfig, open_loop: bool = False) -> Dict[str, object]:
    """Run one serving configuration; return its metric dict.

    The serving engine and the sharded summary share one metrics registry;
    after the drive the per-shard load gauges are refreshed
    (:meth:`~repro.sharding.ShardedSummary.shard_stats`) and the full
    snapshot is attached under the row's ``metrics`` key.
    """
    registry = MetricsRegistry()
    engine = make_sharded_higgs(stream, shards, executor="serial",
                                registry=registry)
    try:
        with ServingEngine(engine, config, registry=registry) as serving:
            timing = _drive_open_loop(serving, ops) if open_loop \
                else _drive_closed_loop(serving, ops, clients)
            serving.flush()
            engine.shard_stats()
            stats = serving.stats()
            snapshot = registry.snapshot()
    finally:
        engine.close()
    latency = stats["latency"]
    reads = stats["reads_served"]
    writes = stats["writes_served"]
    served = reads + writes
    wall = timing["wall_s"]
    read_report = latency.get("read", {})
    write_report = latency.get("write", {})
    return {
        "requests": served,
        "reads": reads,
        "writes": writes,
        "wall_s": wall,
        "req_per_s": served / wall if wall else 0.0,
        "edges_per_s": stats["edges_inserted"] / wall if wall else 0.0,
        "epochs": stats["epochs"],
        # The engine's own counter covers the open-loop rejections too — the
        # driver's local count tallies the same ServingError events.
        "dropped": stats["dropped"],
        # The headline percentiles take the slower of the two request kinds,
        # so a read-heavy and a write-heavy row stay comparable.
        "p50_ms": max(_percentile_ms(read_report, "p50"),
                      _percentile_ms(write_report, "p50")),
        "p95_ms": max(_percentile_ms(read_report, "p95"),
                      _percentile_ms(write_report, "p95")),
        "p99_ms": max(_percentile_ms(read_report, "p99"),
                      _percentile_ms(write_report, "p99")),
        "read_p50_ms": _percentile_ms(read_report, "p50"),
        "read_p99_ms": _percentile_ms(read_report, "p99"),
        "epoch_limit": stats["epoch_limit"],
        "queue_peak": snapshot["serving_queue_depth_peak"]["values"][""],
        "metrics": snapshot,
    }


def run_serving(*, num_edges: int = 60_000, num_vertices: int = 2_000,
                time_span: int = 6_000, seed: int = 7,
                read_ratios: Sequence[float] = (0.1, 0.5, 0.9),
                client_counts: Sequence[int] = (1, 4, 8),
                shards: int = 4, write_batch: int = 32,
                scale: Optional[float] = None) -> List[Dict[str, object]]:
    """Mixed-workload serving benchmark: read-ratio × client-count sweep.

    Builds one synthetic stream (the sharded experiment's family), derives a
    mixed workload per read ratio, and drives it closed-loop at each client
    count through a fresh ``ServingEngine`` over a ``shards``-way HIGGS
    engine.  A final open-loop row demonstrates drop-policy backpressure.

    ``scale`` (the CLI's dataset knob) scales ``num_edges`` and
    ``time_span`` together when given, like the other system experiments.

    Returns the table as a list of row dictionaries.
    """
    if scale is not None:
        num_edges = max(1_000, int(num_edges * scale))
        time_span = max(100, int(time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                      time_span=time_span, skewness=1.8,
                      arrival_variance=800.0, seed=seed,
                      name=f"serve-synth-{num_edges}")
    stream = generate_stream(spec)
    config = ServingConfig()

    rows: List[Dict[str, object]] = []
    for read_ratio in read_ratios:
        # Size the request count so every ratio replays the whole stream on
        # the write side: writes = stream/write_batch, reads scale on top.
        write_requests = max(1, num_edges // write_batch)
        num_requests = max(2, int(write_requests / max(0.05, 1 - read_ratio)))
        workload = MixedWorkloadSpec(num_requests=num_requests,
                                     read_ratio=read_ratio,
                                     write_batch=write_batch, seed=seed + 1)
        ops = generate_mixed_workload(stream, workload)
        for clients in client_counts:
            metrics = _measure(stream, ops, shards=shards, clients=clients,
                               config=config)
            rows.append({"figure": "serving", "dataset": stream.name,
                         "read_ratio": read_ratio, "clients": clients,
                         "arrival": "closed",
                         "policy": f"fixed-{config.max_batch_writes}",
                         **metrics})

    # Open-loop overload: offer ~3× the slowest measured closed-loop rate
    # with a small admission queue and the drop policy — backpressure in
    # action.  (min over rows: any served rate works as an overload anchor,
    # and the sweep's parameters are caller-configurable.)
    closed_rate = min((row["req_per_s"] for row in rows), default=100.0)
    # The row floor (500 requests even at tiny --scale) keeps the shed
    # fraction statistically meaningful: with only a couple hundred offered
    # requests the empty-queue transient dominates and the fraction is
    # mostly noise, which matters because the perf gate runs this row at a
    # small scale.
    overload = MixedWorkloadSpec(
        num_requests=max(500, min(2_000, num_edges // write_batch)),
        read_ratio=0.5, write_batch=write_batch, arrival="open",
        rate_rps=max(10.0, closed_rate * 3.0), seed=seed + 2)
    ops = generate_mixed_workload(stream, overload)
    drop_config = ServingConfig(max_pending=64, admission="drop")
    metrics = _measure(stream, ops, shards=shards, clients=1,
                       config=drop_config, open_loop=True)
    rows.append({"figure": "serving-open", "dataset": stream.name,
                 "read_ratio": 0.5, "clients": 1, "arrival": "open",
                 "policy": f"fixed-{drop_config.max_batch_writes}",
                 **metrics})

    # Bursty open-loop, adaptive vs fixed: base rate slightly above the
    # slowest measured closed-loop capacity, periodic 4× bursts far above
    # it, blocking admission with a deep queue so nothing is shed and every
    # burst shows up as queueing latency.  The fixed run uses a mid-size
    # epoch cap (latency-friendly under the base load); the adaptive run
    # starts from the same cap but may widen it 4×, draining each burst's
    # backlog in fewer, larger epochs (the ``epochs`` column shows the
    # coalescing win directly).  The bound is deliberately not the
    # stream's full batch limit: measured on this harness, 8192-edge
    # mega-epochs make whoever queues behind one wait out the whole
    # commit, and that wait dominates p99.  Even at 4× the p99 comparison
    # is noise-bound on a single core — the scheduler, the open-loop
    # driver, and the shard workers all share one CPU, so the drain-faster
    # gain of a widened epoch is partly offset by the requests that wait
    # out that epoch; across repeated runs adaptive trends better but
    # within run noise (see the ``note`` field on the rows).  The burst
    # period is sized from the workload's expected duration so the run
    # cycles through several burst/quiet phases at any --scale.
    burst_requests = max(600, min(3_000, num_edges // write_batch))
    burst_rate = max(10.0, closed_rate * 1.2)
    burst_duty = 0.3
    burst_factor = 4.0
    mean_rate = burst_rate * (1.0 + burst_duty * (burst_factor - 1.0))
    burst_period = max(0.1, burst_requests / mean_rate / 3.0)
    burst_spec = MixedWorkloadSpec(
        num_requests=burst_requests, read_ratio=0.5,
        write_batch=write_batch, arrival="open", rate_rps=burst_rate,
        burst_factor=burst_factor, burst_period_s=burst_period,
        burst_duty=burst_duty, seed=seed + 3)
    burst_ops = generate_mixed_workload(stream, burst_spec)
    fixed_config = ServingConfig(max_batch_writes=512)
    adaptive_config = ServingConfig(
        adaptive_epochs=True, min_epoch_size=512, max_epoch_size=2048,
        queue_high_fraction=0.05, queue_low_fraction=0.01,
        epoch_cooldown_rounds=3)
    # Rides along in the JSON rows only (container values are skipped by
    # the text table, which is already wide).
    burst_note = [
        "adaptive drains bursts in fewer, wider epochs (epochs column); on "
        "this single-core harness scheduler/driver/workers share one CPU, "
        "so p99 parity with fixed is expected within run noise - the "
        "latency win needs the scheduler on its own core"]
    for policy, burst_config in (("fixed-512", fixed_config),
                                 ("adaptive-512-2048", adaptive_config)):
        metrics = _measure(stream, burst_ops, shards=shards, clients=1,
                           config=burst_config, open_loop=True)
        rows.append({"figure": "serving-burst", "dataset": stream.name,
                     "read_ratio": 0.5, "clients": 1, "arrival": "bursty",
                     "policy": policy, "note": burst_note, **metrics})
    return rows
