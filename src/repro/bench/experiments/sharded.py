"""Sharded-ingestion scaling experiment.

Sweeps the shard count of the :class:`~repro.sharding.ShardedSummary` engine
on a 100 k-edge synthetic stream (the batch-speedup experiment's stream
family, with a flatter vertex popularity so the partition keys carry real
entropy — a stream whose head vertex owns most of the edges cannot be
balanced by *any* hash partitioner, which is precisely what the skew rows
demonstrate).  Per shard count it reports two honestly distinct throughput
figures:

* ``wall_eps`` — single-core wall-clock ingest throughput of the engine with
  the serial executor.  On one core this only improves through *work
  reduction*: smaller per-shard trees aggregate fewer levels, long overflow
  chains disappear, and so on.  Expect a modest gain.
* ``parallel_eps`` — the scale-out throughput: partition/dispatch overhead
  plus the **slowest single shard's** ingest time, from per-worker busy
  counters measured around every ``insert_batch`` call.  This is the wall
  time the ``"process"`` executor converges to when every shard gets its own
  core (shards are fully independent after partitioning; nothing is shared),
  and the standard scale-out metric for partitioned stream systems.  The
  accompanying ``imbalance`` column (slowest shard / mean shard) reports how
  far hash partitioning is from a perfect split, i.e. how trustworthy the
  projection is.

Shards are measured with the serial executor precisely so the two figures
separate cleanly: the GIL makes in-process thread workers useless for
pure-Python ingest, and on a single-CPU host worker processes only add IPC
overhead.  On a multi-core host, ``ShardedSummary(..., executor="process")``
realizes the projected figure directly.

The shard-count sweep partitions by **edge** key (the balanced choice under
vertex-degree skew: a hot source vertex spreads across its destinations).  A
second row group (``figure = "sharded-skew"``) measures the 4-shard engine
under **source** partitioning — first on the natural stream, then on streams
whose source keys are biased toward one hot shard
(:func:`~repro.streams.generators.reskew_to_shards`) — showing how partition
imbalance erodes the projected speedup while wall-clock work barely moves.

A third row group (``figure = "sharded-process"``) measures the projection
directly: wall-clock ingest through the ``"process"`` executor (worker
processes fed over the packed-edge shared-memory transport) at 1 shard and
at the largest swept shard count.  Its ``wall_x`` is the *measured*
parallel speedup; every row carries ``host_cores`` because the figure is
meaningless without it — on a single-core host the measured speedup cannot
exceed 1× no matter how well the engine scales.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional, Sequence

from ...streams.edge import GraphStream
from ...streams.generators import StreamSpec, generate_stream, reskew_to_shards
from ..methods import make_sharded_higgs


def _measure_engine(stream: GraphStream, shards: int,
                    partition_by: str,
                    executor: str = "serial") -> Dict[str, float]:
    """Ingest ``stream`` into a fresh ``shards``-way engine; return metrics."""
    engine = make_sharded_higgs(stream, shards, executor=executor,
                                partition_by=partition_by)
    try:
        start = time.perf_counter()
        inserted = engine.insert_stream(stream)
        wall = time.perf_counter() - start
        busy = engine.shard_busy_seconds()
        memory = engine.memory_bytes()
        transport = engine.transport_stats()
    finally:
        engine.close()
    total_busy = sum(busy)
    max_busy = max(busy) if busy else 0.0
    mean_busy = total_busy / len(busy) if busy else 0.0
    # Everything the workers did not account for is engine overhead:
    # partitioning, routing, and dispatch.  It is serial in both figures.
    overhead = max(0.0, wall - total_busy)
    return {
        "transport_packed_batches": transport["packed_batches"],
        "items": inserted,
        "wall_s": wall,
        "overhead_s": overhead,
        "max_shard_s": max_busy,
        "parallel_s": overhead + max_busy,
        "imbalance": (max_busy / mean_busy) if mean_busy > 0 else 1.0,
        "memory_mb": memory / (1024 * 1024),
    }


def run_sharded_scaling(*, num_edges: int = 100_000, num_vertices: int = 2_000,
                        time_span: int = 10_000, seed: int = 7,
                        skewness: float = 1.5,
                        shard_counts: Sequence[int] = (1, 2, 4, 8),
                        hot_fractions: Sequence[float] = (0.0, 0.5, 0.9),
                        scale: Optional[float] = None
                        ) -> List[Dict[str, object]]:
    """Sharded ingestion scaling: shard-count sweep plus hot-shard skew rows.

    Replays the batch-speedup experiment's synthetic stream (power-law
    vertex popularity, bursty arrivals) into a fresh
    :class:`~repro.sharding.ShardedSummary` per shard count and reports
    wall-clock and projected-parallel throughput — see the module docstring
    for exactly what each column means.  Speedup columns (``wall_x``,
    ``parallel_x``) are relative to the 1-shard engine.

    ``scale`` (the CLI's dataset knob) scales ``num_edges`` and
    ``time_span`` together when given, preserving items-per-slice density:
    the CLI's default ``--scale 0.1`` measures a 10 k-edge stream while
    ``--scale 1`` measures the full 100 k-edge stream of the paper-scale
    comparison.

    Returns the table as a list of row dictionaries (one per shard count,
    then one per hot-skew fraction at 4 shards).
    """
    if scale is not None:
        num_edges = max(1_000, int(num_edges * scale))
        time_span = max(100, int(time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                      time_span=time_span, skewness=skewness,
                      arrival_variance=800.0, seed=seed,
                      name=f"shard-synth-{num_edges}")
    stream = generate_stream(spec)

    host_cores = os.cpu_count() or 1
    rows: List[Dict[str, object]] = []
    baseline_wall = baseline_parallel = None
    for shards in shard_counts:
        metrics = _measure_engine(stream, shards, "edge")
        if baseline_wall is None:
            baseline_wall = metrics["wall_s"]
            baseline_parallel = metrics["parallel_s"]
        rows.append({
            "figure": "sharded",
            "host_cores": host_cores,
            "dataset": stream.name,
            "shards": shards,
            "items": metrics["items"],
            "wall_s": metrics["wall_s"],
            "wall_eps": metrics["items"] / metrics["wall_s"]
                        if metrics["wall_s"] else 0.0,
            "wall_x": baseline_wall / metrics["wall_s"]
                      if metrics["wall_s"] else 0.0,
            "max_shard_s": metrics["max_shard_s"],
            "parallel_s": metrics["parallel_s"],
            "parallel_eps": metrics["items"] / metrics["parallel_s"]
                            if metrics["parallel_s"] else 0.0,
            "parallel_x": baseline_parallel / metrics["parallel_s"]
                          if metrics["parallel_s"] else 0.0,
            "imbalance": metrics["imbalance"],
            "memory_mb": metrics["memory_mb"],
        })

    # Hot-shard skew: same engine shape (4 shards), stream keys biased so
    # hash partitioning cannot spread them.  parallel_x keeps the unskewed
    # 1-shard baseline so the erosion is visible in one column.
    skew_shards = 4
    for hot_fraction in hot_fractions:
        skewed = (stream if hot_fraction == 0.0 else
                  reskew_to_shards(stream, num_shards=skew_shards,
                                   hot_shards=1, hot_fraction=hot_fraction))
        metrics = _measure_engine(skewed, skew_shards, "source")
        rows.append({
            "figure": "sharded-skew",
            "host_cores": host_cores,
            "dataset": skewed.name,
            "shards": skew_shards,
            "items": metrics["items"],
            "wall_s": metrics["wall_s"],
            "wall_eps": metrics["items"] / metrics["wall_s"]
                        if metrics["wall_s"] else 0.0,
            "wall_x": (baseline_wall / metrics["wall_s"])
                      if metrics["wall_s"] else 0.0,
            "max_shard_s": metrics["max_shard_s"],
            "parallel_s": metrics["parallel_s"],
            "parallel_eps": metrics["items"] / metrics["parallel_s"]
                            if metrics["parallel_s"] else 0.0,
            "parallel_x": (baseline_parallel / metrics["parallel_s"])
                          if metrics["parallel_s"] else 0.0,
            "imbalance": metrics["imbalance"],
            "memory_mb": metrics["memory_mb"],
        })

    # Measured (not projected) parallel ingest: the process executor with
    # the packed-edge shared-memory transport, 1 shard vs the largest swept
    # shard count.  ``wall_x`` here is the *measured* wall-clock speedup —
    # the figure the projection above promises; on a host with fewer cores
    # than shards it degrades toward 1× (plus IPC overhead), which is why
    # the perf gate only enforces it when ``host_cores`` suffices
    # (``sharded_wall_x4``'s ``min_cores`` attribute).
    process_shards = max(shard_counts)
    process_baseline = None
    for shards in (1, process_shards):
        metrics = _measure_engine(stream, shards, "edge", executor="process")
        if process_baseline is None:
            process_baseline = metrics["wall_s"]
        rows.append({
            "figure": "sharded-process",
            "host_cores": host_cores,
            "dataset": stream.name,
            "shards": shards,
            "items": metrics["items"],
            "wall_s": metrics["wall_s"],
            "wall_eps": metrics["items"] / metrics["wall_s"]
                        if metrics["wall_s"] else 0.0,
            "wall_x": process_baseline / metrics["wall_s"]
                      if metrics["wall_s"] else 0.0,
            "imbalance": metrics["imbalance"],
            "memory_mb": metrics["memory_mb"],
            "transport_packed_batches": metrics["transport_packed_batches"],
        })
    return rows
