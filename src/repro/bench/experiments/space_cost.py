"""Space cost experiment (paper Fig. 19).

Every method summarizes the same stream; the experiment reports each
structure's analytic memory footprint and the saving HIGGS achieves relative
to each competitor (the paper reports an average saving of ~30 %).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...streams.datasets import DATASET_ORDER
from ..context import DEFAULT_SCALE, get_context


def run_fig19_space_cost(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                         scale: float = DEFAULT_SCALE,
                         methods: Optional[Iterable[str]] = None
                         ) -> List[Dict[str, object]]:
    """Fig. 19: memory footprint per method per dataset (plus HIGGS savings)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        context = get_context(dataset, scale=scale, include=methods)
        memory = {name: summary.memory_bytes()
                  for name, summary in context.methods.items()}
        higgs_bytes = memory.get("HIGGS")
        for name, size in memory.items():
            saving = None
            if higgs_bytes is not None and name != "HIGGS" and size > 0:
                saving = 1.0 - higgs_bytes / size
            rows.append({
                "figure": "fig19",
                "dataset": dataset,
                "method": name,
                "items": len(context.stream),
                "memory_mb": size / 1e6,
                "bytes_per_item": size / max(1, len(context.stream)),
                "higgs_saving_vs_method": saving,
            })
    return rows
