"""Update cost experiments: insertion throughput (Fig. 16), insertion latency
(Fig. 17), and deletion throughput (Fig. 18).

Fresh structures are built for every measurement (the shared context cache is
not used here because its structures are already full).  Deletion replays a
sample of the inserted items and removes them again, as the paper's deletion
workload does.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional

from ...streams.datasets import DATASET_ORDER, load_dataset
from ..context import DEFAULT_SCALE
from ..methods import make_methods


def run_fig16_17_update_cost(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                             scale: float = DEFAULT_SCALE,
                             methods: Optional[Iterable[str]] = None
                             ) -> List[Dict[str, object]]:
    """Figs. 16-17: insertion throughput (items/s) and per-item latency (µs)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        summaries = make_methods(stream, include=methods)
        for name, summary in summaries.items():
            start = time.perf_counter()
            summary.insert_stream(stream)
            elapsed = time.perf_counter() - start
            throughput = len(stream) / elapsed if elapsed > 0 else 0.0
            rows.append({
                "figure": "fig16/17",
                "dataset": dataset,
                "method": name,
                "items": len(stream),
                "insert_seconds": elapsed,
                "throughput_eps": throughput,
                "latency_us": (elapsed / len(stream)) * 1e6 if len(stream) else 0.0,
            })
    return rows


def run_fig18_delete_throughput(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                                scale: float = DEFAULT_SCALE,
                                delete_fraction: float = 0.2,
                                methods: Optional[Iterable[str]] = None,
                                seed: int = 17) -> List[Dict[str, object]]:
    """Fig. 18: deletion throughput (items/s) after a full stream insert."""
    rows: List[Dict[str, object]] = []
    rng = random.Random(seed)
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        delete_count = max(1, int(len(stream) * delete_fraction))
        to_delete = rng.sample(list(stream.edges), delete_count)
        summaries = make_methods(stream, include=methods)
        for name, summary in summaries.items():
            summary.insert_stream(stream)
            start = time.perf_counter()
            for edge in to_delete:
                summary.delete(edge.source, edge.destination, edge.weight,
                               edge.timestamp)
            elapsed = time.perf_counter() - start
            rows.append({
                "figure": "fig18",
                "dataset": dataset,
                "method": name,
                "deletions": delete_count,
                "delete_seconds": elapsed,
                "throughput_dps": delete_count / elapsed if elapsed > 0 else 0.0,
            })
    return rows
