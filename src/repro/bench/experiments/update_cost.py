"""Update cost experiments: insertion throughput (Fig. 16), insertion latency
(Fig. 17), deletion throughput (Fig. 18), and the batch-ingestion speedup
comparison (per-item ``insert`` versus the bulk ``insert_batch`` path).

Fresh structures are built for every measurement (the shared context cache is
not used here because its structures are already full).  Insertion throughput
drives the batch API — the ingestion path every experiment uses — while the
batch-speedup experiment measures both paths explicitly on the same stream.
Deletion replays a sample of the inserted items and removes them again, as
the paper's deletion workload does.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional

from ...streams.datasets import DATASET_ORDER, load_dataset
from ...streams.generators import StreamSpec, generate_stream
from ..context import DEFAULT_SCALE
from ..methods import ingest, make_methods


def run_fig16_17_update_cost(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                             scale: float = DEFAULT_SCALE,
                             methods: Optional[Iterable[str]] = None
                             ) -> List[Dict[str, object]]:
    """Figs. 16-17: insertion throughput (items/s) and per-item latency (µs).

    Ingestion goes through the batch insert API (the harness's standard
    path), so each method's native batch fast path is what gets measured.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        summaries = make_methods(stream, include=methods)
        for name, summary in summaries.items():
            _count, elapsed = ingest(summary, stream)
            throughput = len(stream) / elapsed if elapsed > 0 else 0.0
            rows.append({
                "figure": "fig16/17",
                "dataset": dataset,
                "method": name,
                "items": len(stream),
                "insert_seconds": elapsed,
                "throughput_eps": throughput,
                "latency_us": (elapsed / len(stream)) * 1e6 if len(stream) else 0.0,
            })
    return rows


def run_batch_speedup(*, num_edges: int = 100_000, num_vertices: int = 2_000,
                      time_span: int = 10_000, seed: int = 7,
                      methods: Optional[Iterable[str]] = None,
                      scale: Optional[float] = None
                      ) -> List[Dict[str, object]]:
    """Batch-ingestion speedup: per-item ``insert`` vs ``insert_batch``.

    Replays the same synthetic stream (default 100k edges with power-law
    vertex popularity and ~10 items per time slice — the many-edges-per-slice
    regime of the paper's real traces) into two fresh instances of each
    method — once through the per-item loop, once through the batch path —
    and reports both throughputs and their ratio.

    ``scale`` (the CLI's dataset knob) scales ``num_edges`` and ``time_span``
    together when given — preserving the items-per-slice density — so the
    CLI's default ``--scale 0.1`` measures a 10k-edge stream while a direct
    call (or ``--scale 1``) measures the full 100k.
    """
    if scale is not None:
        num_edges = max(1_000, int(num_edges * scale))
        time_span = max(100, int(time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                      time_span=time_span, skewness=2.5,
                      arrival_variance=800.0, seed=seed,
                      name=f"batch-synth-{num_edges}")
    stream = generate_stream(spec)
    rows: List[Dict[str, object]] = []
    methods_a = make_methods(stream, include=methods)
    methods_b = make_methods(stream, include=methods)
    for name in methods_a:
        per_item = methods_a[name]
        start = time.perf_counter()
        for edge in stream:
            per_item.insert(edge.source, edge.destination,
                            edge.weight, edge.timestamp)
        item_seconds = time.perf_counter() - start

        batch = methods_b[name]
        _count, batch_seconds = ingest(batch, stream)
        rows.append({
            "figure": "batch",
            "dataset": stream.name,
            "method": name,
            "items": len(stream),
            "per_item_eps": len(stream) / item_seconds if item_seconds else 0.0,
            "batch_eps": len(stream) / batch_seconds if batch_seconds else 0.0,
            "speedup": (item_seconds / batch_seconds) if batch_seconds else 0.0,
        })
    return rows


def run_fig18_delete_throughput(*, datasets: Iterable[str] = tuple(DATASET_ORDER),
                                scale: float = DEFAULT_SCALE,
                                delete_fraction: float = 0.2,
                                methods: Optional[Iterable[str]] = None,
                                seed: int = 17) -> List[Dict[str, object]]:
    """Fig. 18: deletion throughput (items/s) after a full stream insert."""
    rows: List[Dict[str, object]] = []
    rng = random.Random(seed)
    for dataset in datasets:
        stream = load_dataset(dataset, scale=scale)
        delete_count = max(1, int(len(stream) * delete_fraction))
        to_delete = rng.sample(list(stream.edges), delete_count)
        summaries = make_methods(stream, include=methods)
        for name, summary in summaries.items():
            summary.insert_stream(stream)
            start = time.perf_counter()
            for edge in to_delete:
                summary.delete(edge.source, edge.destination, edge.weight,
                               edge.timestamp)
            elapsed = time.perf_counter() - start
            rows.append({
                "figure": "fig18",
                "dataset": dataset,
                "method": name,
                "deletions": delete_count,
                "delete_seconds": elapsed,
                "throughput_dps": delete_count / elapsed if elapsed > 0 else 0.0,
            })
    return rows
