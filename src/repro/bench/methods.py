"""Method factory used by every experiment.

The paper configures every baseline following its own publication and sets
HIGGS's ``d1``/``F1`` so the hash ranges are comparable (Section VI-A).
Because this reproduction replays streams that are 100-1000× smaller than the
paper's traces (see DESIGN.md §3), the factory re-derives the structural
parameters from the stream being summarized:

* **HIGGS** keeps the paper's leaf size ``d1 = 16`` and picks ``F1`` so the
  leaf hash range is a small multiple of the stream size — the same load
  regime as the paper's ``d1 = 16, F1 = 19`` against its traces.
* **Horae / AuxoTime** size every temporal layer for the whole stream (their
  top-down, domain-based design: each item is inserted into every layer), and
  their per-layer identifiers lose a few bits to the embedded time prefix —
  the structural reason the paper gives for their accuracy and space
  disadvantages.
* **PGSS** keeps no fingerprints at all; only the bucket grid discriminates
  edges.

The resulting ordering (HIGGS most accurate / smallest / fastest, PGSS least
accurate, compact variants slower and less accurate than their full
counterparts) reproduces the paper's shape; EXPERIMENTS.md discusses how the
magnitudes compress at laptop scale.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..baselines import (AuxoTime, AuxoTimeCompact, Horae, HoraeCompact, PGSS)
from ..core import Higgs, HiggsConfig
from ..errors import BenchmarkError
from ..sharding import HiggsShardFactory, ShardedSummary
from ..streams.edge import GraphStream
from ..summary import DEFAULT_BATCH_SIZE, TemporalGraphSummary

#: Canonical method ordering used in every table (HIGGS first, as in the paper).
METHOD_ORDER: List[str] = [
    "HIGGS", "PGSS", "Horae", "Horae-cpt", "AuxoTime", "AuxoTime-cpt",
]

#: Ratio between HIGGS's per-endpoint hash range and the stream size.  The
#: paper's configuration (Z = 16·2^19 ≈ 8.4 M for a 63.5 M-edge stream) keeps
#: Z within an order of magnitude of |E|; we use Z ≈ 4·|E|.
DEFAULT_Z_MULTIPLE = 4.0

#: Identifier bits the top-down baselines spend on the embedded time prefix.
DEFAULT_PREFIX_COST_BITS = 5


def scaled_higgs_config(num_items: int, *, leaf_matrix_size: int = 16,
                        z_multiple: float = DEFAULT_Z_MULTIPLE,
                        enable_overflow_blocks: bool = True,
                        num_probes: int = 4) -> HiggsConfig:
    """HIGGS configuration whose hash range scales with the stream size.

    ``F1`` is chosen so that ``Z = d1 · 2^F1 ≈ z_multiple · num_items`` —
    the same items-to-hash-range regime as the paper's setup.
    """
    z_target = max(1024.0, z_multiple * max(1, num_items))
    fingerprint_bits = int(min(30, max(8, math.ceil(
        math.log2(z_target / leaf_matrix_size)))))
    return HiggsConfig(leaf_matrix_size=leaf_matrix_size,
                       fingerprint_bits=fingerprint_bits,
                       num_probes=num_probes,
                       enable_overflow_blocks=enable_overflow_blocks)


def make_methods(stream: GraphStream, *,
                 include: Optional[Iterable[str]] = None,
                 z_multiple: float = DEFAULT_Z_MULTIPLE,
                 prefix_cost_bits: int = DEFAULT_PREFIX_COST_BITS,
                 seed: int = 0) -> Dict[str, TemporalGraphSummary]:
    """Construct the evaluated methods, parameterized for ``stream``.

    Parameters
    ----------
    stream:
        The stream the methods will summarize; its length and time span size
        the structures (the baselines pre-allocate from the expected stream
        size, as their original implementations do).
    include:
        Restrict construction to a subset of :data:`METHOD_ORDER`.
    z_multiple:
        HIGGS hash-range multiple (see :func:`scaled_higgs_config`).
    prefix_cost_bits:
        Identifier bits the dyadic-layer baselines lose to time-prefix
        embedding.
    """
    num_items = max(1, len(stream))
    t_min, t_max = stream.time_span
    time_span = max(1, t_max - t_min + 1)

    higgs_config = scaled_higgs_config(num_items, z_multiple=z_multiple)
    baseline_fp_bits = max(4, higgs_config.fingerprint_bits - prefix_cost_bits)
    # Auxo PET nodes start small and grow by levels; keep nodes modest so the
    # tree actually exercises its scaling path.
    auxo_matrix_size = 16

    factories: Dict[str, Callable[[], TemporalGraphSummary]] = {
        "HIGGS": lambda: Higgs(higgs_config),
        "PGSS": lambda: PGSS(expected_items=num_items, time_span=time_span,
                             depth=2, seed=seed),
        "Horae": lambda: Horae(expected_items=num_items, time_span=time_span,
                               fingerprint_bits=baseline_fp_bits, seed=seed),
        "Horae-cpt": lambda: HoraeCompact(expected_items=num_items,
                                          time_span=time_span,
                                          fingerprint_bits=baseline_fp_bits,
                                          seed=seed),
        "AuxoTime": lambda: AuxoTime(time_span=time_span,
                                     matrix_size=auxo_matrix_size,
                                     fingerprint_bits=baseline_fp_bits + 1,
                                     seed=seed),
        "AuxoTime-cpt": lambda: AuxoTimeCompact(time_span=time_span,
                                                matrix_size=auxo_matrix_size,
                                                fingerprint_bits=baseline_fp_bits + 1,
                                                seed=seed),
    }

    selected = list(include) if include is not None else METHOD_ORDER
    unknown = [name for name in selected if name not in factories]
    if unknown:
        raise BenchmarkError(f"unknown methods requested: {unknown}")
    return {name: factories[name]() for name in selected}


def make_sharded_higgs(stream: GraphStream, shards: int, *,
                       executor: str = "serial",
                       partition_by: str = "source",
                       batch_size: int = DEFAULT_BATCH_SIZE,
                       z_multiple: float = DEFAULT_Z_MULTIPLE,
                       registry=None) -> ShardedSummary:
    """Construct a sharded HIGGS engine parameterized for ``stream``.

    Every shard runs the *same* HIGGS configuration the unsharded baseline
    would use for this stream (:func:`scaled_higgs_config` on the full
    stream size), so per-item work and per-shard accuracy are directly
    comparable across shard counts; only the partitioning and the tree depth
    per shard change.

    Parameters
    ----------
    stream:
        The stream the engine will summarize (sizes the per-shard config).
    shards:
        Number of shards.
    executor:
        Shard executor mode (``"serial"``, ``"thread"``, ``"process"``, or
        ``"auto"``).
    partition_by:
        Partition key mode (``"source"`` or ``"edge"``).
    batch_size:
        Per-shard batch size used by the engine's stream replay.
    z_multiple:
        HIGGS hash-range multiple (see :func:`scaled_higgs_config`).
    registry:
        Optional :class:`~repro.observability.MetricsRegistry` the engine
        registers its ``sharding_*`` metrics in (None keeps it private).
    """
    config = scaled_higgs_config(max(1, len(stream)), z_multiple=z_multiple)
    return ShardedSummary(HiggsShardFactory(config), shards=shards,
                          executor=executor, partition_by=partition_by,
                          batch_size=batch_size, registry=registry)


def ingest(summary: TemporalGraphSummary, stream: GraphStream, *,
           batch_size: int = DEFAULT_BATCH_SIZE) -> Tuple[int, float]:
    """Replay ``stream`` into ``summary`` through the batch insert API.

    This is the single ingestion entry point the experiment harness uses, so
    every method's throughput numbers reflect its (native or fallback) batch
    path.  Returns ``(items inserted, elapsed seconds)``.
    """
    start = time.perf_counter()
    count = summary.insert_stream(stream, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return count, elapsed
