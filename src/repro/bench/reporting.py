"""Plain-text reporting helpers for the experiment harness.

Every experiment produces a list of row dictionaries; these helpers render
them as aligned ASCII tables (the "figure series" the paper plots) and
persist them under ``results/`` so EXPERIMENTS.md can reference stable
artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0):
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned ASCII table.

    When ``columns`` is not given, they derive from the first row's keys,
    skipping container-valued entries (dicts/lists such as attached metric
    snapshots) that would wreck the column alignment; the JSON side of
    :func:`save_rows` still carries them in full.
    """
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = [key for key, value in rows[0].items()
                   if not isinstance(value, (dict, list, tuple))]
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def save_rows(rows: Sequence[Mapping[str, object]], path: str | Path, *,
              columns: Optional[Sequence[str]] = None,
              title: Optional[str] = None) -> Path:
    """Write both the ASCII table and a JSON dump of ``rows`` next to each other."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_table(rows, columns, title) + "\n", encoding="utf-8")
    json_path = path.with_suffix(".json")
    json_path.write_text(json.dumps(list(rows), indent=2, default=str),
                         encoding="utf-8")
    return path


def pivot(rows: Sequence[Mapping[str, object]], *, index: str, column: str,
          value: str) -> List[Dict[str, object]]:
    """Pivot long-format rows into one row per ``index`` with one column per ``column``.

    This converts e.g. (dataset, method, metric) rows into the per-figure
    series layout the paper plots (one line per method).
    """
    ordered_index: List[object] = []
    ordered_columns: List[object] = []
    table: Dict[object, Dict[str, object]] = {}
    for row in rows:
        idx = row[index]
        col = row[column]
        if idx not in table:
            table[idx] = {index: idx}
            ordered_index.append(idx)
        if col not in ordered_columns:
            ordered_columns.append(col)
        table[idx][str(col)] = row[value]
    return [table[idx] for idx in ordered_index]
