"""HIGGS core: hashing, compressed matrices, the aggregated B-tree, and the
public :class:`Higgs` summary."""

from .config import HiggsConfig
from .hashing import VertexHasher, hash64, hash_pair, lift_address
from .matrix import CompressedMatrix, MatrixEntry
from .node import InternalNode, LeafNode
from .tree import HiggsTree
from .boundary import RangeDecomposition, boundary_search, decompose_range
from .aggregation import aggregate_internal, aggregate_leaves, lift_coordinates
from .higgs import Higgs
from .parallel import PipelinedInserter, insert_stream_parallel

__all__ = [
    "HiggsConfig", "VertexHasher", "hash64", "hash_pair", "lift_address",
    "CompressedMatrix", "MatrixEntry", "InternalNode", "LeafNode",
    "HiggsTree", "RangeDecomposition", "boundary_search", "decompose_range",
    "aggregate_internal", "aggregate_leaves", "lift_coordinates",
    "Higgs", "PipelinedInserter", "insert_stream_parallel",
]
