"""HIGGS core: hashing, compressed matrices, the aggregated B-tree, and the
public :class:`Higgs` summary."""

from .config import HiggsConfig, ServingConfig, ShardingConfig, SnapshotConfig
from .executor import (InlineShardWorker, ProcessShardWorker, QueueWorker,
                       ShardResult, ShardWorker, ThreadShardWorker,
                       make_shard_worker, resolve_executor)
from .hashing import VertexHasher, hash64, hash_pair, lift_address, shard_of
from .matrix import CompressedMatrix, MatrixEntry
from .node import InternalNode, LeafNode
from .tree import HiggsTree
from .boundary import RangeDecomposition, boundary_search, decompose_range
from .aggregation import aggregate_internal, aggregate_leaves, lift_coordinates
from .higgs import Higgs
from .parallel import PipelinedInserter, insert_stream_parallel

__all__ = [
    "HiggsConfig", "ServingConfig", "ShardingConfig", "SnapshotConfig",
    "VertexHasher",
    "hash64", "hash_pair",
    "lift_address", "shard_of",
    "CompressedMatrix", "MatrixEntry", "InternalNode", "LeafNode",
    "HiggsTree", "RangeDecomposition", "boundary_search", "decompose_range",
    "aggregate_internal", "aggregate_leaves", "lift_coordinates",
    "Higgs", "PipelinedInserter", "insert_stream_parallel",
    "QueueWorker", "ShardResult", "ShardWorker", "InlineShardWorker",
    "ThreadShardWorker", "ProcessShardWorker", "make_shard_worker",
    "resolve_executor",
]
