"""Bit-shift aggregation of child matrices into a parent matrix (Algorithm 2).

A parent node at layer ``l+1`` aggregates the ``θ`` matrices of its children
at layer ``l``.  The parent matrix is ``√θ`` times larger per dimension; the
extra address bits are taken from the top of each entry's fingerprint
(``R = log2(√θ)`` bits per level), so aggregation is a pure re-addressing of
the same information and introduces no additional error.  Entries whose
candidate buckets in the parent matrix are all occupied spill into the
parent's exact overflow map, preserving exactness of the aggregate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .config import HiggsConfig
from .hashing import lift_address
from .matrix import CompressedMatrix
from .node import InternalNode, LeafNode


def lift_coordinates(fingerprint: int, address: int, from_level: int,
                     to_level: int, config: HiggsConfig) -> Tuple[int, int]:
    """Lift a ``(fingerprint, address)`` pair from one tree layer to a higher one.

    Repeatedly applies the per-level shift defined by the configuration.  If
    the fingerprint runs out of bits before reaching ``to_level`` the shift is
    clamped (the matrix simply stops growing), which keeps the operation
    total; with the paper's defaults (``F1 = 19``, ``R = 1``) this never
    happens for realistic tree heights.
    """
    current_fp, current_addr = fingerprint, address
    for level in range(from_level, to_level):
        available = config.fingerprint_bits_at(level)
        shift = min(config.shift_bits, available)
        current_fp, current_addr = lift_address(current_fp, current_addr,
                                                available, shift)
    return current_fp, current_addr


def build_parent_matrix(level: int, config: HiggsConfig) -> CompressedMatrix:
    """Allocate the (empty) aggregated matrix for a node at tree layer ``level``."""
    return CompressedMatrix(
        config.matrix_size_at(level), config.bucket_entries,
        num_probes=config.num_probes, store_timestamps=False,
        entry_bytes=config.internal_entry_bytes(level))


def _insert_aggregated(node: InternalNode, fingerprint_src: int,
                       fingerprint_dst: int, address_src: int,
                       address_dst: int, weight: float) -> None:
    """Place one lifted entry into the parent node, spilling over if needed."""
    placed = node.matrix.insert(fingerprint_src, fingerprint_dst,
                                address_src, address_dst, weight)
    if not placed:
        node.add_overflow(fingerprint_src, fingerprint_dst,
                          address_src, address_dst, weight)


def aggregate_leaves(parent_index: int, leaves: List[LeafNode],
                     config: HiggsConfig) -> InternalNode:
    """Build a level-2 internal node aggregating a group of closed leaves.

    Timestamps are dropped: the parent only records the group's overall time
    span and the separating keys (each child's start timestamp).
    """
    level = 2
    matrix = build_parent_matrix(level, config)
    t_mins = [leaf.t_min for leaf in leaves if leaf.t_min is not None]
    t_maxs = [leaf.t_max for leaf in leaves if leaf.t_max is not None]
    t_min = min(t_mins) if t_mins else 0
    t_max = max(t_maxs) if t_maxs else 0
    keys = [leaf.t_min for leaf in leaves[1:] if leaf.t_min is not None]
    node = InternalNode(level, parent_index, matrix, keys, t_min, t_max)

    for leaf in leaves:
        for child_matrix in leaf.matrices():
            for fs, fd, hs, hd, weight, _ts in child_matrix.iter_canonical_entries():
                lifted_fs, lifted_hs = lift_coordinates(fs, hs, 1, level, config)
                lifted_fd, lifted_hd = lift_coordinates(fd, hd, 1, level, config)
                _insert_aggregated(node, lifted_fs, lifted_fd,
                                   lifted_hs, lifted_hd, weight)
    return node


def aggregate_internal(parent_index: int, children: List[InternalNode],
                       config: HiggsConfig) -> InternalNode:
    """Build an internal node at layer ``children[0].level + 1`` from complete children."""
    child_level = children[0].level
    level = child_level + 1
    matrix = build_parent_matrix(level, config)
    t_min = min(child.t_min for child in children)
    t_max = max(child.t_max for child in children)
    keys = [child.t_min for child in children[1:]]
    node = InternalNode(level, parent_index, matrix, keys, t_min, t_max)

    for child in children:
        for fs, fd, hs, hd, weight, _ts in child.matrix.iter_canonical_entries():
            lifted_fs, lifted_hs = lift_coordinates(fs, hs, child_level, level, config)
            lifted_fd, lifted_hd = lift_coordinates(fd, hd, child_level, level, config)
            _insert_aggregated(node, lifted_fs, lifted_fd,
                               lifted_hs, lifted_hd, weight)
        for (fs, fd, hs, hd), weight in child.overflow.items():
            lifted_fs, lifted_hs = lift_coordinates(fs, hs, child_level, level, config)
            lifted_fd, lifted_hd = lift_coordinates(fd, hd, child_level, level, config)
            _insert_aggregated(node, lifted_fs, lifted_fd,
                               lifted_hs, lifted_hd, weight)
    return node
