"""Bit-shift aggregation of child matrices into a parent matrix (Algorithm 2).

A parent node at layer ``l+1`` aggregates the ``θ`` matrices of its children
at layer ``l``.  The parent matrix is ``√θ`` times larger per dimension; the
extra address bits are taken from the top of each entry's fingerprint
(``R = log2(√θ)`` bits per level), so aggregation is a pure re-addressing of
the same information and introduces no additional error.  Entries whose
candidate buckets in the parent matrix are all occupied spill into the
parent's exact overflow map, preserving exactness of the aggregate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from . import vectorized
from .config import HiggsConfig, accelerator
from .hashing import lift_address
from .matrix import CompressedMatrix
from .node import InternalNode, LeafNode


# hot-path: bulk=vectorized.lift_array
def lift_coordinates(fingerprint: int, address: int, from_level: int,
                     to_level: int, config: HiggsConfig) -> Tuple[int, int]:
    """Lift a ``(fingerprint, address)`` pair from one tree layer to a higher one.

    Repeatedly applies the per-level shift defined by the configuration.  If
    the fingerprint runs out of bits before reaching ``to_level`` the shift is
    clamped (the matrix simply stops growing), which keeps the operation
    total; with the paper's defaults (``F1 = 19``, ``R = 1``) this never
    happens for realistic tree heights.
    """
    current_fp, current_addr = fingerprint, address
    for level in range(from_level, to_level):
        available = config.fingerprint_bits_at(level)
        shift = min(config.shift_bits, available)
        current_fp, current_addr = lift_address(current_fp, current_addr,
                                                available, shift)
    return current_fp, current_addr


def build_parent_matrix(level: int, config: HiggsConfig) -> CompressedMatrix:
    """Allocate the (empty) aggregated matrix for a node at tree layer ``level``."""
    return CompressedMatrix(
        config.matrix_size_at(level), config.bucket_entries,
        num_probes=config.num_probes, store_timestamps=False,
        entry_bytes=config.internal_entry_bytes(level))


class _LiftMemo:
    """Per-aggregation memo: child ``(fingerprint, address)`` → lifted
    coordinates plus the parent-matrix probe sequence.

    One aggregation lifts every entry of ``θ`` children; endpoints repeat
    heavily (skewed streams), so memoizing the pure lift + probe computation
    per distinct endpoint removes most of the per-entry arithmetic without
    changing any result.  ``table`` is exposed so the hot loop can probe the
    memo with a plain dict get before paying the method call.
    """

    __slots__ = ("table", "_matrix", "_from_level", "_to_level", "_config")

    def __init__(self, matrix: CompressedMatrix, from_level: int,
                 to_level: int, config: HiggsConfig) -> None:
        self.table: dict = {}
        self._matrix = matrix
        self._from_level = from_level
        self._to_level = to_level
        self._config = config

    def lift(self, fingerprint: int, address: int
             ) -> Tuple[int, int, Tuple[int, ...]]:
        """Return (and memoize) ``(lifted_fp, lifted_addr, parent probe rows)``."""
        lifted_fp, lifted_addr = lift_coordinates(
            fingerprint, address, self._from_level, self._to_level,
            self._config)
        value = self.table[(fingerprint, address)] = (
            lifted_fp, lifted_addr,
            self._matrix.probe_rows(lifted_fp, lifted_addr))
        return value


#: Placement-memo marker: the key spilled into the node's exact overflow map.
_SPILLED = object()


# hot-path: bulk=_aggregate_entries_arrays
def _aggregate_entries(node: InternalNode, entries: Iterable[Tuple],
                       memo: _LiftMemo, placed: dict) -> None:
    """Lift and place child entries into the parent, spilling over if needed.

    ``placed`` memoizes where each distinct lifted key landed (its
    :class:`MatrixEntry`, or :data:`_SPILLED`) across the whole node build;
    repeated edges — common across sibling subtrees — accumulate directly
    instead of re-scanning the parent's candidate buckets.  This is
    bit-identical: the scan would find exactly the memoized entry (at most
    one entry per key exists), and a key that once failed placement can never
    gain a free slot later (slots only fill up).
    """
    insert_probed = node.matrix.insert_probed
    lift = memo.lift
    lift_get = memo.table.get
    add_overflow = node.add_overflow
    placed_get = placed.get
    for fs, fd, hs, hd, weight, _ts in entries:
        src = lift_get((fs, hs))
        if src is None:
            src = lift(fs, hs)
        lifted_fs, lifted_hs, src_rows = src
        dst = lift_get((fd, hd))
        if dst is None:
            dst = lift(fd, hd)
        lifted_fd, lifted_hd, dst_cols = dst
        key = (lifted_fs, lifted_fd, id(src_rows), id(dst_cols))
        entry = placed_get(key)
        if entry is not None:
            if entry is _SPILLED:
                add_overflow(lifted_fs, lifted_fd, lifted_hs, lifted_hd, weight)
            else:
                entry.weight += weight
            continue
        entry = insert_probed(lifted_fs, lifted_fd, src_rows, dst_cols, weight)
        if entry is None:
            add_overflow(lifted_fs, lifted_fd, lifted_hs, lifted_hd, weight)
            placed[key] = _SPILLED
        else:
            placed[key] = entry


# hot-path
def _aggregate_entries_arrays(node: InternalNode, src_fps, dst_fps,
                              src_addrs, dst_addrs, weights,
                              from_level: int, to_level: int,
                              config: HiggsConfig) -> None:
    """Array twin of :func:`_aggregate_entries` (requires numpy).

    The caller concatenates every child's entries into one batch, so the
    lift, the parent probe rows and the flat candidate cells all run
    vectorized once; the remaining per-item loop only touches buckets.  The
    placement memo is keyed by the dense group id of each item's lifted
    ``(f(s), f(d), h(s), h(d))`` value tuple — value-keying is bit-identical
    to the scalar path's id-keyed memo because the parent matrix holds at
    most one entry per key, so the scan a memo hit skips would find exactly
    the memoized entry (and a key that once spilled can never be placed
    later: slots only fill up).  Matrix-entry and overflow weights
    accumulate in the same item order as the scalar path.
    """
    count = len(src_fps)
    if count == 0:
        return
    matrix = node.matrix
    lifted_fs, lifted_hs = vectorized.lift_array(src_fps, src_addrs,
                                                 from_level, to_level, config)
    lifted_fd, lifted_hd = vectorized.lift_array(dst_fps, dst_addrs,
                                                 from_level, to_level, config)
    src_rows = matrix.probe_rows_array(lifted_fs, lifted_hs)
    dst_cols = matrix.probe_rows_array(lifted_fd, lifted_hd)
    cells = vectorized.candidate_cells_array(src_rows, dst_cols,
                                             matrix.size).tolist()
    group = vectorized.group_ids(lifted_fs, lifted_fd,
                                 lifted_hs, lifted_hd).tolist()
    fs_list = lifted_fs.tolist()
    fd_list = lifted_fd.tolist()
    hs_list = lifted_hs.tolist()
    hd_list = lifted_hd.tolist()
    rows_list = src_rows.tolist()
    cols_list = dst_cols.tolist()
    weight_list = weights.tolist()
    insert_cells = matrix.insert_cells
    add_overflow = node.add_overflow
    placed: dict = {}
    placed_get = placed.get
    for k in range(count):
        gid = group[k]
        weight = weight_list[k]
        entry = placed_get(gid)
        if entry is not None:
            if entry is _SPILLED:
                add_overflow(fs_list[k], fd_list[k], hs_list[k], hd_list[k],
                             weight)
            else:
                entry.weight += weight
            continue
        entry = insert_cells(fs_list[k], fd_list[k], cells[k],
                             rows_list[k], cols_list[k], weight)
        if entry is None:
            add_overflow(fs_list[k], fd_list[k], hs_list[k], hd_list[k],
                         weight)
            placed[gid] = _SPILLED
        else:
            placed[gid] = entry


def aggregate_leaves(parent_index: int, leaves: List[LeafNode],
                     config: HiggsConfig) -> InternalNode:
    """Build a level-2 internal node aggregating a group of closed leaves.

    Timestamps are dropped: the parent only records the group's overall time
    span and the separating keys (each child's start timestamp).
    """
    level = 2
    matrix = build_parent_matrix(level, config)
    t_mins = [leaf.t_min for leaf in leaves if leaf.t_min is not None]
    t_maxs = [leaf.t_max for leaf in leaves if leaf.t_max is not None]
    t_min = min(t_mins) if t_mins else 0
    t_max = max(t_maxs) if t_maxs else 0
    keys = [leaf.t_min for leaf in leaves[1:] if leaf.t_min is not None]
    node = InternalNode(level, parent_index, matrix, keys, t_min, t_max)

    if accelerator() is not None:
        np = vectorized.np
        parts = [child_matrix.canonical_entries_arrays()
                 for leaf in leaves for child_matrix in leaf.matrices()]
        parts = [arrays for arrays in parts if len(arrays[0])]
        if parts:
            _aggregate_entries_arrays(
                node, *(np.concatenate([arrays[i] for arrays in parts])
                        for i in range(5)),
                1, level, config)
        return node

    memo = _LiftMemo(matrix, 1, level, config)
    placed: dict = {}
    for leaf in leaves:
        for child_matrix in leaf.matrices():
            _aggregate_entries(node, child_matrix.iter_canonical_entries(),
                               memo, placed)
    return node


def aggregate_internal(parent_index: int, children: List[InternalNode],
                       config: HiggsConfig) -> InternalNode:
    """Build an internal node at layer ``children[0].level + 1`` from complete children."""
    child_level = children[0].level
    level = child_level + 1
    matrix = build_parent_matrix(level, config)
    t_min = min(child.t_min for child in children)
    t_max = max(child.t_max for child in children)
    keys = [child.t_min for child in children[1:]]
    node = InternalNode(level, parent_index, matrix, keys, t_min, t_max)

    if accelerator() is not None:
        np = vectorized.np
        parts = []
        for child in children:
            arrays = child.matrix.canonical_entries_arrays()
            if len(arrays[0]):
                parts.append(arrays)
            if child.overflow:
                spilled_keys = np.asarray(list(child.overflow.keys()),
                                          dtype=np.int64)
                parts.append((spilled_keys[:, 0], spilled_keys[:, 1],
                              spilled_keys[:, 2], spilled_keys[:, 3],
                              np.asarray(list(child.overflow.values()),
                                         dtype=np.float64)))
        if parts:
            _aggregate_entries_arrays(
                node, *(np.concatenate([arrays[i] for arrays in parts])
                        for i in range(5)),
                child_level, level, config)
        return node

    memo = _LiftMemo(matrix, child_level, level, config)
    placed: dict = {}
    for child in children:
        _aggregate_entries(node, child.matrix.iter_canonical_entries(),
                           memo, placed)
        _aggregate_entries(node, ((fs, fd, hs, hd, weight, None)
                                  for (fs, fd, hs, hd), weight
                                  in child.overflow.items()), memo, placed)
    return node
