"""Temporal range decomposition over the HIGGS tree (paper Algorithm 3).

Given a query range ``[t_start, t_end]``, the boundary search selects

* the highest materialized (complete) internal nodes whose entire time span
  lies inside the range — their aggregated, timestamp-free matrices answer
  their whole subtree in one access, and
* the leaf nodes that only partially overlap the range boundaries — those are
  answered with per-entry timestamp filtering.

The selection is equivalent to the paper's two-phase boundary search (fully
covered children first, then a descent along the two boundary paths); the
implementation walks the implicit θ-ary tree over the leaf sequence so that
incomplete spine groups — which have no aggregated matrix yet — transparently
fall through to their children.

Query-plan caching
------------------
Repeated-range workloads (the paper's Figs. 10-13 sweep a fixed set of range
lengths) re-issue the same ``[t_start, t_end]`` against an unchanged tree
many times.  :class:`QueryPlanCache` memoizes the
:class:`RangeDecomposition` per ``(t_start, t_end, tree.version)`` so those
queries skip the tree walk entirely; any tree mutation bumps
``tree.version`` and transparently invalidates every cached plan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .node import InternalNode, LeafNode
from .tree import HiggsTree


@dataclass(slots=True)
class RangeDecomposition:
    """Result of a boundary search.

    Attributes
    ----------
    aggregated_nodes:
        Internal nodes whose whole subtree lies inside the query range.
    boundary_leaves:
        Leaves overlapping the range that are not covered by any node in
        ``aggregated_nodes``; their entries are filtered by timestamp.
    nodes_visited:
        Number of tree nodes inspected (reported by the efficiency analysis).
    """

    aggregated_nodes: List[InternalNode] = field(default_factory=list)
    boundary_leaves: List[LeafNode] = field(default_factory=list)
    nodes_visited: int = 0

    @property
    def matrices_accessed(self) -> int:
        """Number of compressed matrices a query over this decomposition touches."""
        leaf_matrices = sum(len(leaf.matrices()) for leaf in self.boundary_leaves)
        return len(self.aggregated_nodes) + leaf_matrices


def boundary_search(tree: HiggsTree, t_start: int, t_end: int) -> RangeDecomposition:
    """Decompose ``[t_start, t_end]`` into aggregated nodes and boundary leaves."""
    result = RangeDecomposition()
    leaf_count = tree.leaf_count
    if leaf_count == 0:
        return result

    fanout = tree.config.fanout
    # Smallest level whose single node would cover every leaf.
    top_level = 1
    span = 1
    while span < leaf_count:
        span *= fanout
        top_level += 1

    def visit(level: int, index: int) -> None:
        width = fanout ** (level - 1)
        first_leaf = index * width
        if first_leaf >= leaf_count:
            # Phantom position: the implicit tree extends past the last leaf,
            # but no node exists here — it must not count as visited or the
            # efficiency metric is inflated.
            return
        result.nodes_visited += 1
        if level == 1:
            leaf = tree.leaves[first_leaf]
            if leaf.overlaps(t_start, t_end):
                result.boundary_leaves.append(leaf)
            return
        node = tree.internal_node(level, index)
        if node is not None and node.complete:
            if not node.overlaps(t_start, t_end):
                return
            if node.covered_by(t_start, t_end):
                result.aggregated_nodes.append(node)
                return
        # Not materialized, or only partially covered: descend.
        for child in range(fanout):
            visit(level - 1, index * fanout + child)

    visit(top_level, 0)
    return result


def decompose_range(tree: HiggsTree, t_start: int, t_end: int
                    ) -> Tuple[List[InternalNode], List[LeafNode]]:
    """Convenience wrapper returning ``(aggregated_nodes, boundary_leaves)``."""
    decomposition = boundary_search(tree, t_start, t_end)
    return decomposition.aggregated_nodes, decomposition.boundary_leaves


class QueryPlanCache:
    """LRU memo of :func:`boundary_search` results, keyed by query range.

    Each cached plan remembers the ``tree.version`` it was computed against;
    a lookup whose stored version no longer matches recomputes and replaces
    the entry, so mutations never serve a stale decomposition.  The cache is
    bounded (default 1024 plans) with least-recently-used eviction.
    """

    __slots__ = ("maxsize", "hits", "misses", "_plans")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ConfigurationError("QueryPlanCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[Tuple[int, int], Tuple[int, RangeDecomposition]]" = \
            OrderedDict()

    def lookup(self, tree: HiggsTree, t_start: int, t_end: int
               ) -> RangeDecomposition:
        """Return the (possibly cached) decomposition of ``[t_start, t_end]``."""
        key = (t_start, t_end)
        version = tree.version
        cached = self._plans.get(key)
        if cached is not None and cached[0] == version:
            self.hits += 1
            self._plans.move_to_end(key)
            return cached[1]
        self.misses += 1
        plan = boundary_search(tree, t_start, t_end)
        self._plans[key] = (version, plan)
        self._plans.move_to_end(key)
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every cached plan (hit/miss counters are kept)."""
        self._plans.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for benchmarks and tests."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._plans), "maxsize": self.maxsize}

    def __len__(self) -> int:
        return len(self._plans)
