"""Configuration for the HIGGS structure.

The defaults follow the paper's experimental configuration (Section VI-A):
leaf matrix size ``d1 = 16``, fingerprint length ``F1 = 19`` bits, ``b = 3``
entries per bucket, 4 candidate addresses per vertex (multiple mapping
buckets), and ``θ = 4`` children per node so one fingerprint bit is shifted
into the address per aggregation level (``R = 1``).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from types import ModuleType
from typing import Final, Optional, Tuple

from ..errors import ConfigurationError

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _numpy = None  # type: ignore[assignment]

#: Environment variable forcing the pure-Python kernels even when numpy is
#: importable.  Any non-empty value other than ``"0"`` disables numpy; the
#: CI parity jobs set it to prove the fallback stays green.
PURE_PYTHON_ENV: Final[str] = "REPRO_PURE_PYTHON"

#: Runtime override installed by :func:`set_pure_python` (tests use it to
#: exercise both kernel families inside one process).  ``None`` defers to
#: the environment variable.
_pure_python_override: Optional[bool] = None


def set_pure_python(flag: Optional[bool]) -> None:
    """Force (``True``) or re-allow (``False``) the pure-Python kernels.

    ``None`` removes the override, deferring to the
    :data:`PURE_PYTHON_ENV` environment variable again.  This is the
    runtime switch the numpy/pure-Python parity tests flip to run both
    kernel families in one process; production code selects once at import
    through the environment.
    """
    global _pure_python_override
    _pure_python_override = flag


def accelerator() -> Optional[ModuleType]:
    """Return the numpy module driving the vectorized kernels, or ``None``.

    ``None`` — because numpy is not installed, the
    :data:`PURE_PYTHON_ENV` environment variable disables it, or a test
    called ``set_pure_python(True)`` — selects the retained pure-Python
    kernels everywhere.  Both kernel families are bit-identical
    (property-tested), so this choice affects speed only.
    """
    if _pure_python_override is not None:
        return None if _pure_python_override else _numpy
    if os.environ.get(PURE_PYTHON_ENV, "0").strip() not in ("", "0"):
        return None
    return _numpy


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass(frozen=True, slots=True)
class HiggsConfig:
    """Tunable parameters of a :class:`~repro.core.higgs.Higgs` summary.

    Attributes
    ----------
    leaf_matrix_size:
        ``d1`` — rows/columns of each leaf compressed matrix.  Must be a
        power of two so bit-shift aggregation is exact.
    bucket_entries:
        ``b`` — number of entries stored per bucket.
    fingerprint_bits:
        ``F1`` — fingerprint length at the leaf layer.
    fanout:
        ``θ`` — maximum children per tree node.  Must be a power of four so
        the parent matrix is ``√θ`` times larger per dimension and the number
        of shifted fingerprint bits ``R = log2(√θ)`` is an integer.
    num_probes:
        ``r`` — number of candidate addresses per vertex (multiple mapping
        buckets).  ``1`` disables the MMB optimization.
    enable_overflow_blocks:
        Enable the overflow-block optimization: edges that overflow a leaf
        while sharing its last timestamp go into a chained overflow matrix
        instead of forcing a new leaf.  Overflow blocks use the same matrix
        dimension as the leaf so their entries aggregate upward exactly like
        regular leaf entries, but with fewer entries per bucket
        (``overflow_block_entries``), which keeps them small.
    overflow_block_entries:
        Entries per bucket in each overflow block.
    hash_seed:
        Seed of the vertex hash function.
    weight_bytes / timestamp_bytes / key_bytes / pointer_bytes:
        Field widths used by the analytic memory model (DESIGN.md §3.4).
    """

    leaf_matrix_size: int = 16
    bucket_entries: int = 3
    fingerprint_bits: int = 19
    fanout: int = 4
    num_probes: int = 4
    enable_overflow_blocks: bool = True
    overflow_block_entries: int = 2
    hash_seed: int = 0
    weight_bytes: int = 4
    timestamp_bytes: int = 4
    key_bytes: int = 8
    pointer_bytes: int = 8

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.leaf_matrix_size):
            raise ConfigurationError("leaf_matrix_size (d1) must be a power of two")
        if self.bucket_entries < 1:
            raise ConfigurationError("bucket_entries (b) must be >= 1")
        if not 1 <= self.fingerprint_bits <= 56:
            raise ConfigurationError("fingerprint_bits (F1) must be in [1, 56]")
        if self.fanout < 4 or round(math.log(self.fanout, 4)) != math.log(self.fanout, 4):
            raise ConfigurationError("fanout (theta) must be a power of four (4, 16, 64, ...)")
        if self.num_probes < 1:
            raise ConfigurationError("num_probes (r) must be >= 1")
        if self.enable_overflow_blocks and self.overflow_block_entries < 1:
            raise ConfigurationError("overflow_block_entries must be >= 1")

    @property
    def shift_bits(self) -> int:
        """``R`` — fingerprint bits moved into the address per aggregation level."""
        return int(round(math.log2(math.isqrt(self.fanout))))

    def fingerprint_bits_at(self, level: int) -> int:
        """Fingerprint length at tree layer ``level`` (leaf layer is 1)."""
        if level < 1:
            raise ConfigurationError("levels are 1-based; the leaf layer is level 1")
        return max(0, self.fingerprint_bits - (level - 1) * self.shift_bits)

    def matrix_size_at(self, level: int) -> int:
        """Matrix dimension at tree layer ``level`` (leaf layer is 1)."""
        if level < 1:
            raise ConfigurationError("levels are 1-based; the leaf layer is level 1")
        size = self.leaf_matrix_size
        for lower in range(1, level):
            shift = min(self.shift_bits, self.fingerprint_bits_at(lower))
            size *= (1 << shift)
        return size

    def leaf_entry_bytes(self) -> int:
        """Analytic size of one leaf-matrix entry in bytes."""
        probe_bits = 2 * max(1, (self.num_probes - 1).bit_length()) if self.num_probes > 1 else 0
        fingerprint_bits = 2 * self.fingerprint_bits
        id_bytes = math.ceil((fingerprint_bits + probe_bits) / 8)
        return id_bytes + self.timestamp_bytes + self.weight_bytes

    def internal_entry_bytes(self, level: int) -> int:
        """Analytic size of one non-leaf entry at tree layer ``level``."""
        probe_bits = 2 * max(1, (self.num_probes - 1).bit_length()) if self.num_probes > 1 else 0
        fingerprint_bits = 2 * self.fingerprint_bits_at(level)
        id_bytes = math.ceil((fingerprint_bits + probe_bits) / 8)
        return id_bytes + self.weight_bytes


#: Executor modes accepted by :class:`ShardingConfig`.
SHARD_EXECUTORS: Final[Tuple[str, ...]] = ("serial", "thread", "process",
                                           "auto")

#: Partition-key modes accepted by :class:`ShardingConfig`.
SHARD_PARTITION_MODES: Final[Tuple[str, ...]] = ("source", "edge")


@dataclass(frozen=True, slots=True)
class ShardingConfig:
    """Tunable parameters of a :class:`~repro.sharding.ShardedSummary`.

    Attributes
    ----------
    num_shards:
        Number of independent inner summaries the edge stream is
        hash-partitioned across.  Must be >= 1; ``1`` degenerates to a
        pass-through wrapper whose behaviour is bit-identical to the wrapped
        summary.
    partition_by:
        Partition key.  ``"source"`` (default) assigns each edge to the
        shard of its source vertex, so outgoing vertex queries and edge
        queries route to a single shard; ``"edge"`` hashes the
        ``(source, destination)`` pair, which balances better under
        source-vertex skew but forces every vertex query to scatter.
    executor:
        How per-shard work is driven: ``"serial"`` runs shards inline in the
        calling thread, ``"thread"`` gives each shard a worker thread
        (bounded by the GIL for pure-Python summaries), ``"process"`` gives
        each shard a worker process (true parallelism; the shard factory and
        all arguments must be picklable), and ``"auto"`` picks ``"process"``
        on multi-core machines and ``"serial"`` otherwise.
    batch_size:
        Per-shard batch size used when a stream is replayed through the
        engine; the engine reads ``num_shards * batch_size`` items per
        partition round so every shard sees full batches.
    hash_seed:
        Seed of the shard-assignment hash (see
        :func:`~repro.core.hashing.shard_of`).
    """

    num_shards: int = 4
    partition_by: str = "source"
    executor: str = "serial"
    batch_size: int = 1024
    hash_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.partition_by not in SHARD_PARTITION_MODES:
            raise ConfigurationError(
                f"partition_by must be one of {SHARD_PARTITION_MODES}, "
                f"got {self.partition_by!r}")
        if self.executor not in SHARD_EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {SHARD_EXECUTORS}, "
                f"got {self.executor!r}")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


@dataclass(frozen=True, slots=True)
class SnapshotConfig:
    """Snapshot and crash-recovery policy of a sharded summary engine.

    Attributes
    ----------
    directory:
        Default destination directory of :meth:`~repro.sharding.ShardedSummary.
        snapshot` and the source of restore-on-crash.  ``None`` means every
        snapshot call must pass an explicit path and automatic crash recovery
        is limited to rebuilding an *empty* shard.
    auto_recover:
        When ``True`` (default), a shard worker found dead during a failed
        operation is rebuilt immediately — restored from the engine's last
        snapshot when one exists, empty otherwise — before the failure is
        re-raised to the caller.  The failed operation itself is never
        silently retried; only the engine's subsequent operations benefit.
    verify_checksums:
        When ``True`` (default), every payload read during restore is
        verified against the manifest's SHA-256 before being deserialized;
        disabling this trades torn-snapshot detection for restore speed and
        is only intended for trusted, locally produced snapshots.
    """

    directory: Optional[str] = None
    auto_recover: bool = True
    verify_checksums: bool = True

    def __post_init__(self) -> None:
        if self.directory is not None and not str(self.directory).strip():
            raise ConfigurationError(
                "snapshot directory must be None or a non-empty path")


#: Admission policies accepted by :class:`ServingConfig`.
SERVING_ADMISSION_POLICIES: Final[Tuple[str, ...]] = ("block", "drop")


@dataclass(frozen=True, slots=True)
class ServingConfig:
    """Tunable parameters of a :class:`~repro.serving.ServingEngine`.

    Attributes
    ----------
    max_pending:
        Bound of the admission queue (requests admitted but not yet served).
        When the queue is full, :attr:`admission` decides what happens to
        the next submission.
    admission:
        Backpressure policy at a full admission queue: ``"block"`` makes the
        submitting client wait until the scheduler frees capacity (closed
        systems self-regulate), ``"drop"`` rejects the request immediately
        with :class:`~repro.errors.ServingError` (open systems shed load
        instead of building unbounded latency).
    max_batch_writes:
        Maximum number of *edges* coalesced into one write epoch.  Larger
        epochs amortize per-batch overhead but delay the reads queued behind
        them.
    max_batch_reads:
        Maximum number of queries coalesced into one ``query_batch`` call.
    poll_interval_s:
        How long the scheduler sleeps waiting for work when the admission
        queue is empty, in seconds.
    latency_window:
        Number of most-recent per-request latency samples kept per request
        kind for the p50/p95/p99 percentile report.
    adaptive_epochs:
        Enable the closed-loop epoch-size controller
        (:class:`~repro.observability.AdaptiveEpochController`): instead of
        always coalescing up to :attr:`max_batch_writes` edges per epoch,
        the scheduler moves its per-epoch edge cap between
        :attr:`min_epoch_size` and :attr:`max_epoch_size` based on
        admission-queue depth — wide under backlog (throughput), narrow
        when the queue stays shallow (read latency).
    min_epoch_size / max_epoch_size:
        Bounds the adaptive epoch cap moves between (edges per epoch).
        Only consulted when :attr:`adaptive_epochs` is on; the effective
        cap is additionally never above :attr:`max_batch_writes`.
    epoch_grow_factor:
        Multiplier applied to the cap when the queue is deep (> 1).
    epoch_shrink_factor:
        Multiplier applied after a sustained shallow-queue streak (in
        ``(0, 1)``).
    queue_high_fraction / queue_low_fraction:
        Queue-depth fractions of :attr:`max_pending` that trigger growing
        and count toward shrinking; ``0 <= low < high <= 1``.
    epoch_cooldown_rounds:
        Consecutive shallow-queue rounds required before one shrink step —
        the oscillation-damping term (>= 1).
    """

    max_pending: int = 1024
    admission: str = "block"
    max_batch_writes: int = 8192
    max_batch_reads: int = 4096
    poll_interval_s: float = 0.05
    latency_window: int = 65536
    adaptive_epochs: bool = False
    min_epoch_size: int = 256
    max_epoch_size: int = 16384
    epoch_grow_factor: float = 2.0
    epoch_shrink_factor: float = 0.5
    queue_high_fraction: float = 0.5
    queue_low_fraction: float = 0.125
    epoch_cooldown_rounds: int = 3

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        if self.admission not in SERVING_ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission must be one of {SERVING_ADMISSION_POLICIES}, "
                f"got {self.admission!r}")
        if self.max_batch_writes < 1:
            raise ConfigurationError("max_batch_writes must be >= 1")
        if self.max_batch_reads < 1:
            raise ConfigurationError("max_batch_reads must be >= 1")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be >= 1")
        if self.min_epoch_size < 1:
            raise ConfigurationError("min_epoch_size must be >= 1")
        if self.max_epoch_size < self.min_epoch_size:
            raise ConfigurationError(
                f"max_epoch_size ({self.max_epoch_size}) must be >= "
                f"min_epoch_size ({self.min_epoch_size})")
        if self.epoch_grow_factor <= 1.0:
            raise ConfigurationError("epoch_grow_factor must be > 1")
        if not 0.0 < self.epoch_shrink_factor < 1.0:
            raise ConfigurationError("epoch_shrink_factor must be in (0, 1)")
        if not 0.0 <= self.queue_low_fraction < self.queue_high_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 <= queue_low_fraction < queue_high_fraction <= 1, "
                f"got low {self.queue_low_fraction} / "
                f"high {self.queue_high_fraction}")
        if self.epoch_cooldown_rounds < 1:
            raise ConfigurationError("epoch_cooldown_rounds must be >= 1")
