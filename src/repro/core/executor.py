"""Shared worker/executor abstraction for pipelined and sharded execution.

Two execution patterns in this codebase need a background worker that owns
mutable summary state:

* the **pipelined inserter** (:mod:`repro.core.parallel`) streams many small
  work items through a bounded queue into one consumer thread, and
* the **sharded summary engine** (:mod:`repro.sharding`) scatters batch-sized
  method calls across one worker per shard and gathers the results.

This module provides both building blocks:

* :class:`QueueWorker` — a bounded-queue consumer thread with
  drain-on-failure semantics (the producer can never deadlock on a dead
  consumer), extracted from the original ``PipelinedInserter`` so every
  queue-driven pipeline shares one battle-tested lifecycle.
* :class:`ShardWorker` and its three implementations
  (:class:`InlineShardWorker`, :class:`ThreadShardWorker`,
  :class:`ProcessShardWorker`) — a uniform submit/collect protocol for
  dispatching named method calls to a long-lived target object, inline, on a
  thread, or in a child process.

Every shard worker tracks the cumulative wall-clock time it spent executing
calls (:meth:`ShardWorker.busy_seconds`), which the benchmark harness uses to
report per-shard load balance and projected parallel ingest time.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import queue
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ShardingError
from . import shm
from .config import accelerator

#: Reserved method name: returns the worker's busy-time counter instead of
#: invoking the target (handled uniformly by every worker implementation).
BUSY_SECONDS_OP = "__busy_seconds__"

#: Reserved method name: returns the worker's load counters —
#: ``{"busy_seconds": float, "calls": int}`` — in one round trip.  The
#: observability layer scrapes this instead of issuing one reserved op per
#: counter; like :data:`BUSY_SECONDS_OP`, the stats call itself never counts
#: toward the counters it reports.
STATS_OP = "__stats__"

#: Reserved method name: a no-op barrier.  Because every worker serves its
#: calls in FIFO order, collecting the result of a drain op proves that every
#: call submitted before it has finished executing — the epoch barrier the
#: serving engine builds on (see :meth:`ShardWorker.drain`).
DRAIN_OP = "__drain__"

#: Reserved method name: returns the target serialized to ``pickle`` bytes
#: instead of invoking a target method.  The elastic-sharding layer builds
#: snapshots and live shard migration on this op: the payload is produced
#: inside the worker (child process for process workers), so the caller
#: never needs direct access to the target object.
SERIALIZE_OP = "__serialize__"

#: Reserved method name: replaces the worker's target with the object
#: deserialized from the single ``bytes`` argument.  The inverse of
#: :data:`SERIALIZE_OP`; restore and migration swap shard state in through
#: this op, on whatever execution vehicle the worker uses.
LOAD_OP = "__load__"

#: How often the process-worker collect loop re-checks child liveness, in
#: seconds.  Small enough that a dead child surfaces promptly; large enough
#: that polling stays invisible next to real shard work.
_COLLECT_POLL_SECONDS = 0.05


class QueueWorker:
    """A consumer thread draining a bounded queue of work items.

    Parameters
    ----------
    handler:
        Callable invoked once per submitted item.  Exceptions raised by the
        handler are recorded (the first one is re-raised by :meth:`close`)
        and flip :attr:`failed`.
    name:
        Thread name (useful in stack dumps).
    maxsize:
        Bound of the work queue; producers block in :meth:`put` when the
        consumer falls behind.

    A consumer-side exception must not deadlock the producer: the bounded
    queue would fill while the dead consumer never drains it, and the
    producer would block in ``put`` before ever sending the shutdown
    sentinel.  On error the consumer therefore keeps consuming (and
    discarding) items until the sentinel arrives, while producers can stop
    early as soon as they observe :attr:`failed`.
    """

    def __init__(self, handler: Callable[[Any], None], *, name: str = "queue-worker",
                 maxsize: int = 4096) -> None:
        self._handler = handler
        self._queue: "queue.Queue[Optional[Any]]" = queue.Queue(maxsize=maxsize)
        self._errors: List[BaseException] = []
        self._failed = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def failed(self) -> bool:
        """True once the handler has raised; producers should stop early."""
        return self._failed.is_set()

    def put(self, item: Any) -> None:
        """Enqueue one work item (blocks when the queue is full)."""
        self._queue.put(item)

    def close(self) -> None:
        """Send the shutdown sentinel, join the thread, and re-raise the
        first handler exception if one occurred."""
        self._queue.put(None)
        self._thread.join()
        if self._errors:
            raise self._errors[0]

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            try:
                self._handler(item)
            except BaseException as exc:  # noqa: BLE001 - re-raised in close()
                self._errors.append(exc)
                self._failed.set()
                # Drain until the sentinel so producers never block on the
                # bounded queue.
                while self._queue.get() is not None:
                    pass
                return


@dataclass(slots=True)
class ShardResult:
    """Outcome of one shard-worker call.

    Attributes
    ----------
    ok:
        True when the call returned normally.
    value:
        The call's return value (None on failure).
    error:
        The exception that aborted the call (None on success).  For process
        workers the original exception cannot always cross the process
        boundary, so it is re-materialized as a :class:`ShardingError`
        carrying the original type name and message.
    """

    ok: bool
    value: Any = None
    error: Optional[BaseException] = None


class ShardWorker(ABC):
    """One long-lived worker owning a target object (an inner summary).

    The protocol is submit/collect: :meth:`submit` dispatches a named method
    call on the target, :meth:`collect` returns one :class:`ShardResult` per
    submitted call, in submission order.  Callers keep at most a small,
    bounded number of calls in flight (the sharded engine submits one call
    per scatter round), so collection order is trivially deterministic.

    Every worker carries a :attr:`name` (the engine uses ``"shard-<i>"``)
    that failure messages embed, so a dead worker is attributable to its
    shard without extra bookkeeping on the caller's side.
    """

    #: Human-readable worker identity, embedded in failure messages.
    name: str = "shard"

    @abstractmethod
    def submit(self, method: str, args: Tuple = (), kwargs: Optional[dict] = None) -> None:
        """Dispatch ``target.<method>(*args, **kwargs)`` asynchronously."""

    @abstractmethod
    def collect(self, timeout: Optional[float] = None) -> ShardResult:
        """Return the result of the oldest submitted, uncollected call.

        ``timeout`` bounds the wait in seconds; when it elapses the call is
        abandoned and a failed :class:`ShardResult` carrying a
        :class:`~repro.errors.ShardingError` is returned instead of blocking
        forever.  The abandoned call's eventual result is discarded
        internally, so later collects still pair with their own calls.
        ``None`` waits indefinitely (but never past the death of the
        worker's execution vehicle — a dead worker fails fast).
        """

    @abstractmethod
    def close(self) -> None:
        """Shut the worker down and release its resources (idempotent)."""

    def alive(self) -> bool:
        """Whether the worker's execution vehicle can still serve calls.

        Inline workers are always alive; thread and process workers report
        the liveness of their thread/child.  A worker that was :meth:`close`\\ d
        is not alive.  The sharded engine's crash recovery polls this to
        decide which shards need rebuilding.
        """
        return True

    def call(self, method: str, *args: Any, **kwargs: Any) -> ShardResult:
        """Synchronous convenience: submit one call and collect its result."""
        self.submit(method, args, kwargs or None)
        return self.collect()

    @property
    def outstanding(self) -> int:
        """Number of submitted calls whose results are not yet collected."""
        return self._outstanding

    def busy_seconds(self) -> float:
        """Cumulative wall-clock seconds this worker spent executing calls."""
        result = self.call(BUSY_SECONDS_OP)
        return float(result.value) if result.ok else 0.0

    def stats(self) -> dict:
        """Load counters of this worker: ``busy_seconds`` and ``calls``.

        One round trip through the reserved :data:`STATS_OP`; a dead worker
        reports zeros rather than raising, so a metrics sweep over a pool
        with a crashed shard still completes.
        """
        result = self.call(STATS_OP)
        if result.ok and isinstance(result.value, dict):
            return dict(result.value)
        return {"busy_seconds": 0.0, "calls": 0}

    def transport_stats(self) -> dict:
        """Wire-transport counters of this worker.

        Non-trivial only for :class:`ProcessShardWorker` (the only worker
        with a wire); inline and thread workers pass arguments by reference
        and report zeros, so pool-wide sweeps need no type dispatch.
        """
        return {"packed_batches": 0, "packed_bytes": 0,
                "fallback_batches": 0, "live_regions": 0}

    def drain(self, timeout: Optional[float] = None) -> ShardResult:
        """Block until every previously submitted call has finished.

        Submits the reserved no-op :data:`DRAIN_OP`; FIFO service order
        makes collecting its result a barrier.  Results of calls that were
        submitted but never collected are **discarded** on the way — after
        a barrier they can no longer be attributed to their callers — so
        callers that still need those results must collect them *before*
        draining (:class:`~repro.sharding.PendingBatch` enforces this at
        the engine level).  ``timeout`` bounds each internal wait, not the
        whole drain.  Returns the drain op's :class:`ShardResult` (failed
        when the worker died or a wait timed out), so a worker pool can be
        quiesced with per-shard failure attribution.
        """
        owed = self.outstanding
        self.submit(DRAIN_OP)
        result = ShardResult(True, None)
        for _ in range(owed + 1):
            result = self.collect(timeout)
        return result


def _apply_reserved(holder: Any, method: str, args: Tuple,
                    busy: List[float]) -> Optional[ShardResult]:
    """Execute a reserved op against ``holder.target``; ``None`` otherwise.

    ``holder`` is any object with a mutable ``target`` attribute (the worker
    itself, or the child process's target holder).  Reserved ops never count
    toward busy time or the call counter: those counters feed scale-out
    projections and load dashboards of real shard work, and
    snapshot/migration/metrics traffic would distort them.
    """
    if method == BUSY_SECONDS_OP:
        return ShardResult(True, busy[0])
    if method == STATS_OP:
        return ShardResult(True, {"busy_seconds": busy[0],
                                  "calls": busy[1]})
    if method == DRAIN_OP:
        return ShardResult(True, None)
    if method == SERIALIZE_OP:
        try:
            return ShardResult(True, pickle.dumps(holder.target,
                                                  pickle.HIGHEST_PROTOCOL))
        except BaseException as exc:  # noqa: BLE001 - reported via ShardResult
            return ShardResult(False, None, exc)
    if method == LOAD_OP:
        try:
            holder.target = pickle.loads(args[0])
            return ShardResult(True, None)
        except BaseException as exc:  # noqa: BLE001 - reported via ShardResult
            return ShardResult(False, None, exc)
    return None


def _timed_invoke(target: Any, method: str, args: Tuple, kwargs: Optional[dict],
                  busy: List[float]) -> Any:
    """Invoke ``target.<method>``; add elapsed time to ``busy[0]`` and one
    call to ``busy[1]``."""
    start = time.perf_counter()
    try:
        bound = getattr(target, method)
        return bound(*args) if not kwargs else bound(*args, **kwargs)
    finally:
        busy[0] += time.perf_counter() - start
        busy[1] += 1


class InlineShardWorker(ShardWorker):
    """Executes calls synchronously in the caller's thread.

    This is the ``"serial"`` executor mode: no concurrency, no queues, and
    direct access to the target object (used by tests and by analyses that
    inspect per-shard structures).
    """

    def __init__(self, factory: Callable[[], Any], *, name: str = "shard") -> None:
        self.target = factory()
        self.name = name
        self._busy = [0.0, 0]
        self._pending: List[ShardResult] = []

    @property
    def outstanding(self) -> int:
        """Number of submitted calls whose results are not yet collected."""
        return len(self._pending)

    def submit(self, method: str, args: Tuple = (), kwargs: Optional[dict] = None) -> None:
        reserved = _apply_reserved(self, method, args, self._busy)
        if reserved is not None:
            self._pending.append(reserved)
            return
        try:
            value = _timed_invoke(self.target, method, args, kwargs, self._busy)
            self._pending.append(ShardResult(True, value))
        except BaseException as exc:  # noqa: BLE001 - reported via ShardResult
            self._pending.append(ShardResult(False, None, exc))

    def collect(self, timeout: Optional[float] = None) -> ShardResult:
        return self._pending.pop(0)

    def close(self) -> None:
        self._pending.clear()


class ThreadShardWorker(ShardWorker):
    """Executes calls on a dedicated worker thread.

    Keeps the scatter/gather structure truly concurrent for targets that
    release the GIL (or on free-threaded interpreters); for pure-Python
    targets it mainly provides the same isolation semantics as the process
    worker without pickling.  The target object is constructed in the caller
    thread and remains directly accessible as :attr:`target`; all method
    execution happens on the worker thread, keeping per-shard mutation
    single-threaded.
    """

    def __init__(self, factory: Callable[[], Any], *, name: str = "shard") -> None:
        self.target = factory()
        self.name = name
        self._busy = [0.0, 0]
        self._results: "queue.Queue[ShardResult]" = queue.Queue()
        self._tasks: "queue.Queue[Optional[Tuple[str, Tuple, Optional[dict]]]]" = \
            queue.Queue()
        #: Results owed by calls a timed-out collect abandoned.  The worker
        #: still delivers them eventually; collect discards exactly this many
        #: before returning a live result, keeping the FIFO submit/collect
        #: pairing intact after a timeout.
        self._stale = 0  # guarded-by: owner=collect
        self._outstanding = 0  # guarded-by: owner=submit,collect
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()
        self._closed = False

    def _run(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            method, args, kwargs = task
            reserved = _apply_reserved(self, method, args, self._busy)
            if reserved is not None:
                self._results.put(reserved)
                continue
            try:
                value = _timed_invoke(self.target, method, args, kwargs, self._busy)
                self._results.put(ShardResult(True, value))
            except BaseException as exc:  # noqa: BLE001 - reported via ShardResult
                self._results.put(ShardResult(False, None, exc))

    def submit(self, method: str, args: Tuple = (), kwargs: Optional[dict] = None) -> None:
        if self._closed:
            raise ShardingError("submit on a closed shard worker")
        self._tasks.put((method, args, kwargs))
        self._outstanding += 1

    def collect(self, timeout: Optional[float] = None) -> ShardResult:
        self._outstanding = max(0, self._outstanding - 1)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is None:
                result = self._results.get()
            else:
                try:
                    result = self._results.get(
                        timeout=max(0.0, deadline - time.monotonic()))
                except queue.Empty:
                    # Abandon the call but remember that its result is still
                    # coming, so the pairing of later collects stays correct.
                    self._stale += 1
                    return ShardResult(False, None, ShardingError(
                        f"timed out after {timeout:.3f}s waiting for shard "
                        f"worker {self.name!r}"))
            if self._stale:
                self._stale -= 1
                continue
            return result

    def alive(self) -> bool:
        """Whether the worker thread is still serving tasks."""
        return not self._closed and self._thread.is_alive()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tasks.put(None)
            self._thread.join()


class _TargetHolder:
    """Mutable cell holding a worker process's target object.

    Exists so :data:`LOAD_OP` can swap the target in place via
    :func:`_apply_reserved`, which writes through a ``target`` attribute.
    """

    __slots__ = ("target",)

    def __init__(self, target: Any) -> None:
        self.target = target


def _process_worker_main(factory: Callable[[], Any], conn) -> None:
    """Entry point of a shard worker process.

    Builds the target from ``factory``, acknowledges readiness, then serves
    ``(method, args, kwargs)`` requests until the ``None`` sentinel arrives.
    Exceptions are reduced to ``(type name, message)`` pairs because arbitrary
    exception objects may not pickle.
    """
    try:
        holder = _TargetHolder(factory())
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        conn.send(("fatal", (type(exc).__name__, str(exc))))
        conn.close()
        return
    conn.send(("ready", None))
    busy = [0.0, 0]
    receiver = shm.ShmRingReceiver()
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            if request is None:
                break
            method, args, kwargs = request
            reserved = _apply_reserved(holder, method, args, busy)
            if reserved is not None:
                if reserved.ok:
                    conn.send(("ok", reserved.value))
                else:
                    error = reserved.error
                    conn.send(("err", (type(error).__name__, str(error))))
                continue
            try:
                # Resolve packed-batch references inside the guarded block:
                # a missing segment or a numpy-less child surfaces as a
                # normal error result, never a dead worker.
                if any(isinstance(arg, shm.PackedBatchRef) for arg in args):
                    args = tuple(receiver.read(arg)
                                 if isinstance(arg, shm.PackedBatchRef)
                                 else arg for arg in args)
                value = _timed_invoke(holder.target, method, args, kwargs, busy)
                conn.send(("ok", value))
            except BaseException as exc:  # noqa: BLE001 - reported to the parent
                conn.send(("err", (type(exc).__name__, str(exc))))
    finally:
        receiver.close()
        conn.close()


class ProcessShardWorker(ShardWorker):
    """Executes calls in a dedicated child process (true parallelism).

    The factory and every call's arguments and return value must be
    picklable.  The target lives exclusively in the child, so
    :attr:`target` is ``None`` here; engines that need direct access to
    shard summaries must use the serial or thread executor.

    Raises
    ------
    ShardingError
        From the constructor when the factory fails in the child, and from
        :meth:`collect` when the child dies mid-call.
    """

    target = None

    def __init__(self, factory: Callable[[], Any], *, name: str = "shard") -> None:
        self.name = name
        ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(target=_process_worker_main,
                                    args=(factory, child_conn),
                                    name=name, daemon=True)
        self._process.start()
        child_conn.close()
        self._closed = False
        #: One marker per uncollected submit: "sent" means a result will
        #: arrive on the pipe, "failed" means the send itself failed and
        #: collect() must synthesize the failure.  Keeping the markers in
        #: submission order preserves the submit/collect pairing even when
        #: the child dies mid-scatter.
        self._submit_markers: List[str] = []  # guarded-by: owner=submit,collect
        #: Results owed by calls a timed-out collect abandoned (see
        #: :class:`ThreadShardWorker`); discarded as they arrive so later
        #: collects keep pairing with their own calls.
        self._stale = 0  # guarded-by: owner=collect
        self._outstanding = 0  # guarded-by: owner=submit,collect
        #: Shared-memory ring for packed edge batches, created lazily on the
        #: first batch worth packing; ``None`` means every payload pickles.
        self._transport: Optional[shm.ShmRingSender] = None
        #: One flag per successfully piped call, in FIFO order: True when
        #: the call shipped a ring region that must be freed when its result
        #: arrives.  Results arrive in the same order (FIFO service), so
        #: every pipe recv — including stale discards — pops exactly one.
        # guarded-by: owner=submit,collect,_on_result_arrival,_destroy_transport
        self._region_flags: List[bool] = []
        #: Batches that fell back to the pickled path (counter for stats).
        self._fallback_batches = 0
        status, payload = self._conn.recv()
        if status != "ready":
            type_name, message = payload
            self._process.join()
            self._closed = True
            raise ShardingError(
                f"shard worker factory failed in child process: "
                f"{type_name}: {message}")

    def submit(self, method: str, args: Tuple = (), kwargs: Optional[dict] = None) -> None:
        if self._closed:
            raise ShardingError("submit on a closed shard worker")
        args, shipped_region = self._maybe_pack(args)
        try:
            self._conn.send((method, args, kwargs))
        except (BrokenPipeError, OSError):
            # A dead child must not leak a raw OSError out of submit (and
            # thereby desynchronize the caller's scatter loop); the failure
            # is delivered through the matching collect() instead.
            if shipped_region and self._transport is not None:
                # The ref never reached the child; reclaim its ring space
                # immediately so a dead-then-rebuilt pipe cannot leak it.
                self._transport.cancel_last()
            self._submit_markers.append("failed")
            self._outstanding += 1
            return
        self._submit_markers.append("sent")
        self._region_flags.append(shipped_region)
        self._outstanding += 1

    def _maybe_pack(self, args: Tuple) -> Tuple[Tuple, bool]:
        """Swap a large edge-list argument for a shared-memory batch ref.

        Packing is attempted only when the numpy accelerator is active, the
        call carries exactly one positional argument that is a list/tuple of
        at least :data:`~repro.core.shm.MIN_PACK_EDGES` edge-shaped items,
        and the ring has room; every other case — including a mid-pack
        conversion error — falls back to the pickled payload untouched.
        Returns ``(args, True)`` when a ring region was allocated.
        """
        if len(args) != 1 or not isinstance(args[0], (list, tuple)):
            return args, False
        batch = args[0]
        if len(batch) < shm.MIN_PACK_EDGES or not shm.available() \
                or accelerator() is None:
            return args, False
        first = batch[0]
        if not (hasattr(first, "source") and hasattr(first, "destination")
                and hasattr(first, "weight") and hasattr(first, "timestamp")):
            return args, False
        try:
            packed = shm.pack_edges(batch)
        except (TypeError, AttributeError, OverflowError, ValueError):
            self._fallback_batches += 1
            return args, False
        if self._transport is None:
            try:
                self._transport = shm.ShmRingSender(self.name)
            except OSError:
                self._fallback_batches += 1
                return args, False
        ref = self._transport.send(packed)
        if ref is None:
            self._fallback_batches += 1
            return args, False
        return (ref,), True

    def _on_result_arrival(self) -> None:
        """Bookkeeping for every result recv'd from the pipe (FIFO order):
        free the ring region of the call the result answers, if it had one."""
        if self._region_flags:
            if self._region_flags.pop(0) and self._transport is not None:
                self._transport.free_oldest()

    def transport_stats(self) -> dict:
        """Shared-memory transport counters of this worker (parent side)."""
        sender = self._transport
        return {
            "packed_batches": sender.packed_batches if sender else 0,
            "packed_bytes": sender.packed_bytes if sender else 0,
            "fallback_batches": self._fallback_batches,
            "live_regions": sender.live_regions if sender else 0,
        }

    def collect(self, timeout: Optional[float] = None) -> ShardResult:
        self._outstanding = max(0, self._outstanding - 1)
        marker = self._submit_markers.pop(0) if self._submit_markers else "sent"
        if marker == "failed":
            return self._death_result()
        # Poll instead of a blocking recv: a child that dies between submit
        # and collect (crash, OOM-kill, SIGKILL) may leave nothing on the
        # pipe, and an unbounded recv would hang the caller forever.  The
        # loop waits in short slices, re-checking child liveness each round
        # and honouring the caller's overall timeout.
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(_COLLECT_POLL_SECONDS):
                    status, payload = self._conn.recv()
                    self._on_result_arrival()
                    if self._stale:
                        # A result owed to an earlier timed-out collect:
                        # discard it and keep waiting for this call's own.
                        self._stale -= 1
                        continue
                    break
            except (EOFError, OSError):
                return self._death_result()
            if not self._process.is_alive():
                # One last zero-wait poll: the child may have flushed its
                # result just before exiting.
                with contextlib.suppress(EOFError, OSError):
                    if self._conn.poll(0):
                        status, payload = self._conn.recv()
                        self._on_result_arrival()
                        if self._stale:
                            self._stale -= 1
                            continue
                        break
                return self._death_result()
            if deadline is not None and time.monotonic() >= deadline:
                # Abandon the call but remember that its result is still
                # coming, so later collects keep pairing with their calls.
                self._stale += 1
                return ShardResult(False, None, ShardingError(
                    f"timed out after {timeout:.3f}s waiting for shard "
                    f"worker {self.name!r}"))
        if status == "ok":
            return ShardResult(True, payload)
        type_name, message = payload
        return ShardResult(False, None,
                           ShardingError(f"shard worker call failed on "
                                         f"{self.name!r}: "
                                         f"{type_name}: {message}"))

    def alive(self) -> bool:
        """Whether the child process is still serving calls.

        Observing a dead child also tears down the shared-memory transport:
        crash recovery polls this before rebuilding a shard, so the dead
        worker's segment is unlinked before its replacement allocates one.
        """
        is_alive = not self._closed and self._process.is_alive()
        if not is_alive:
            self._destroy_transport()
        return is_alive

    def _destroy_transport(self) -> None:
        """Unlink the shared-memory segment, dropping every in-flight region
        (idempotent; only reached when the child is dead or closed, so no
        live reader remains)."""
        if self._transport is not None:
            self._transport.destroy()
            self._transport = None
        self._region_flags.clear()

    def _death_result(self) -> ShardResult:
        """Failed :class:`ShardResult` for a dead child, naming the shard."""
        self._destroy_transport()
        exit_code = self._process.exitcode
        detail = f" (exit code {exit_code})" if exit_code is not None else ""
        return ShardResult(False, None, ShardingError(
            f"shard worker process {self.name!r} died between submit and "
            f"collect{detail}"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(BrokenPipeError, OSError):
            self._conn.send(None)
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()
        self._destroy_transport()


def resolve_executor(mode: str) -> str:
    """Resolve the ``"auto"`` executor mode against the current machine.

    ``"auto"`` picks ``"process"`` when more than one CPU is available to
    this process and ``"serial"`` otherwise (worker processes only add IPC
    overhead on a single core).  Explicit modes pass through unchanged.
    """
    if mode != "auto":
        return mode
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return "process" if cpus > 1 else "serial"


def make_shard_worker(mode: str, factory: Callable[[], Any], *,
                      name: str = "shard") -> ShardWorker:
    """Build one :class:`ShardWorker` for the resolved executor ``mode``.

    Raises
    ------
    ShardingError
        If ``mode`` is not a known executor mode.
    """
    mode = resolve_executor(mode)
    if mode == "serial":
        return InlineShardWorker(factory, name=name)
    if mode == "thread":
        return ThreadShardWorker(factory, name=name)
    if mode == "process":
        return ProcessShardWorker(factory, name=name)
    raise ShardingError(f"unknown shard executor mode {mode!r}")
