"""Vertex hashing, fingerprint/address splitting, and probe sequences.

HIGGS (paper Section IV-B, Formula (1)) hashes each vertex ``v`` to a wide
hash ``H(v)`` and splits it into

* a **fingerprint** ``f(v) = H(v) & (2^F1 - 1)`` — a compact identifier stored
  inside matrix entries, and
* an **address** ``h(v) = (H(v) >> F1) % d1`` — the row/column index into the
  compressed matrix.

The *multiple mapping buckets* optimization (Section IV-C) derives a short
sequence of alternative addresses per vertex with a linear-congruential step.
The step is a function of the fingerprint only, so the canonical address can
be recovered from any probed position plus the stored probe index — a
property the bit-shift aggregation (Algorithm 2) relies on to avoid
introducing extra error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def hash64(key: object, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``key``.

    Works for strings, bytes and integers; other objects are hashed through
    their ``repr``.  The function is a splitmix64-style finalizer applied to
    an FNV-1a pass over the key bytes, which gives good bit diffusion without
    any third-party dependency and is stable across processes (unlike the
    built-in ``hash``).
    """
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode()
    elif isinstance(key, int):  # noqa: SIM108 - branch chain reads better
        data = key.to_bytes(16, "little", signed=True)
    else:
        data = repr(key).encode()

    # FNV-1a over the bytes.
    h = (0xCBF29CE484222325 ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64

    # splitmix64 finalizer for avalanche.
    h = (h + 0x9E3779B97F4A7C15) & _MASK64
    z = h
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_pair(key: object, salt: int, seed: int = 0) -> int:
    """Hash a ``(key, salt)`` pair — used by baselines that embed time prefixes."""
    base = hash64(key, seed)
    mixed = (base ^ ((salt + 0x9E3779B97F4A7C15) * 0xC2B2AE3D27D4EB4F)) & _MASK64
    z = mixed
    z = ((z ^ (z >> 29)) * 0xBF58476D1CE4E5B9) & _MASK64
    return (z ^ (z >> 32)) & _MASK64


def shard_of(key: object, num_shards: int, seed: int = 0) -> int:
    """Map ``key`` to a shard index in ``[0, num_shards)``.

    This is the single shard-assignment function shared by the sharded
    summary engine (:mod:`repro.sharding`) and the shard-skew workload
    generators (:mod:`repro.streams.generators`), so a stream biased toward
    particular shards and the engine that partitions it always agree.  The
    mapping is deterministic, stable across processes (it builds on
    :func:`hash64`, not the salted built-in ``hash``), and uniform for
    ``num_shards`` far below ``2^64``.

    Parameters
    ----------
    key:
        The partition key (a vertex identifier, or any hashable stream key).
    num_shards:
        Number of shards; must be >= 1.
    seed:
        Seed selecting an independent shard assignment.

    Raises
    ------
    ConfigurationError
        If ``num_shards`` is not positive.
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be >= 1")
    if num_shards == 1:
        return 0
    return hash64(key, seed) % num_shards


def probe_step(fingerprint: int) -> int:
    """Return the odd linear-congruential step used for probe sequences.

    The step depends only on the fingerprint, so an entry's canonical base
    address can be recovered from its stored probe index.
    """
    return 2 * fingerprint + 1


def probe_address(base: int, index: int, fingerprint: int, size: int) -> int:
    """Return the ``index``-th probe address for a vertex.

    ``index == 0`` is the canonical address ``base`` itself.
    """
    return (base + index * probe_step(fingerprint)) % size


def recover_base(probed: int, index: int, fingerprint: int, size: int) -> int:
    """Invert :func:`probe_address`: recover the canonical address."""
    return (probed - index * probe_step(fingerprint)) % size


def lift_address(fingerprint: int, address: int, fingerprint_bits: int,
                 shift_bits: int) -> Tuple[int, int]:
    """Move ``shift_bits`` high fingerprint bits into the address (Algorithm 2).

    Given an entry's fingerprint and canonical address at level *l*, return
    the ``(fingerprint, address)`` pair at level *l+1*, whose matrix is
    ``2^shift_bits`` times wider per dimension.  With ``shift_bits == 0`` the
    pair is returned unchanged.

    Example (paper Fig. 8): fingerprint ``0b101`` (3 bits), address ``0``,
    ``shift_bits=1`` → new address ``0b01``, new fingerprint ``0b01``.
    """
    if shift_bits <= 0:
        return fingerprint, address
    if shift_bits > fingerprint_bits:
        raise ConfigurationError(
            f"cannot shift {shift_bits} bits out of a {fingerprint_bits}-bit fingerprint")
    remaining = fingerprint_bits - shift_bits
    high_bits = fingerprint >> remaining
    new_fingerprint = fingerprint & ((1 << remaining) - 1)
    new_address = (address << shift_bits) | high_bits
    return new_fingerprint, new_address


@dataclass(frozen=True, slots=True)
class VertexHasher:
    """Splits a vertex hash into a fingerprint/address pair for one matrix level.

    Attributes
    ----------
    fingerprint_bits:
        ``F1`` — number of low bits of ``H(v)`` kept as the fingerprint.
    matrix_size:
        ``d1`` — number of rows (= columns) of the target compressed matrix.
    seed:
        Hash seed, allowing independent hash functions (used by baselines
        that need several).
    """

    fingerprint_bits: int
    matrix_size: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fingerprint_bits < 1 or self.fingerprint_bits > 56:
            raise ConfigurationError("fingerprint_bits must be in [1, 56]")
        if self.matrix_size < 1:
            raise ConfigurationError("matrix_size must be positive")

    def raw(self, vertex: object) -> int:
        """Return the raw 64-bit hash ``H(v)``."""
        return hash64(vertex, self.seed)

    def fingerprint(self, vertex: object) -> int:
        """Return ``f(v) = H(v) & (2^F1 - 1)``."""
        return self.raw(vertex) & ((1 << self.fingerprint_bits) - 1)

    def address(self, vertex: object) -> int:
        """Return ``h(v) = (H(v) >> F1) % d1``."""
        return (self.raw(vertex) >> self.fingerprint_bits) % self.matrix_size

    def split(self, vertex: object) -> Tuple[int, int]:
        """Return ``(fingerprint, address)`` with a single hash computation."""
        h = self.raw(vertex)
        fingerprint = h & ((1 << self.fingerprint_bits) - 1)
        address = (h >> self.fingerprint_bits) % self.matrix_size
        return fingerprint, address

    def probe_sequence(self, vertex: object, num_probes: int) -> List[int]:
        """Return the first ``num_probes`` candidate addresses for ``vertex``."""
        fingerprint, base = self.split(vertex)
        return [probe_address(base, i, fingerprint, self.matrix_size)
                for i in range(num_probes)]
