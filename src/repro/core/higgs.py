"""HIGGS: the hierarchy-guided graph stream summary (the paper's contribution).

:class:`Higgs` is the public entry point of this library.  It owns the vertex
hasher, the aggregated B-tree of compressed matrices, and implements the
:class:`~repro.summary.TemporalGraphSummary` interface: stream items are
inserted one at a time (or in bulk via :meth:`Higgs.insert_batch`, which
pre-hashes the batch through a per-batch fingerprint/address memo and defers
upward aggregation to the end of the batch), and edge / vertex / path /
subgraph queries can be answered over any temporal range — individually or
in bulk via :meth:`Higgs.query_batch`.  Range decompositions are memoized in
a :class:`~repro.core.boundary.QueryPlanCache` keyed by
``(t_start, t_end, tree.version)``, so repeated-range workloads skip the
boundary search after the first query.

Example
-------
>>> from repro import Higgs, HiggsConfig
>>> summary = Higgs(HiggsConfig(leaf_matrix_size=8))
>>> summary.insert("alice", "bob", 1.0, 10)
>>> summary.insert("alice", "bob", 2.0, 20)
>>> summary.edge_query("alice", "bob", 0, 15)
1.0
>>> summary.edge_query("alice", "bob", 0, 25)
3.0
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..streams.edge import StreamEdge, Vertex
from ..summary import TemporalGraphSummary
from .aggregation import lift_coordinates
from .boundary import QueryPlanCache, RangeDecomposition, boundary_search
from .config import HiggsConfig
from .hashing import VertexHasher
from .tree import HiggsTree


class Higgs(TemporalGraphSummary):
    """Item-based, bottom-up hierarchical graph stream summary.

    Parameters
    ----------
    config:
        Structure parameters; see :class:`~repro.core.config.HiggsConfig`.
        The defaults match the paper's experimental configuration.
    """

    name = "HIGGS"

    def __init__(self, config: Optional[HiggsConfig] = None) -> None:
        self.config = config or HiggsConfig()
        self._hasher = VertexHasher(self.config.fingerprint_bits,
                                    self.config.leaf_matrix_size,
                                    seed=self.config.hash_seed)
        self._tree = HiggsTree(self.config)
        self._plan_cache = QueryPlanCache()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Insert one stream item (paper Algorithm 1)."""
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        self._tree.insert_hashed(src_fingerprint, dst_fingerprint,
                                 src_address, dst_address, weight, int(timestamp))

    def insert_batch(self, edges: Iterable[StreamEdge]) -> int:
        """Insert a batch of stream items with one-pass hashing.

        Each distinct vertex in the batch is hashed once and its leaf-level
        probe-address sequence computed once (graph streams are heavily
        skewed, so most items hit this memo), then the pre-hashed batch is
        applied by :meth:`HiggsTree.insert_hashed_batch`, which defers upward
        aggregation to the end of the batch.  The resulting structure is
        identical to per-item insertion.
        """
        return self._tree.insert_edges_batch(edges, self._hasher.split)

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Remove ``weight`` from a previously inserted item.

        The matching leaf entry and every materialized ancestor aggregate are
        decremented; if no leaf entry matches (the item was never inserted)
        the summary is left unchanged.
        """
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        self._tree.delete_hashed(src_fingerprint, dst_fingerprint,
                                 src_address, dst_address, weight, int(timestamp))

    # ------------------------------------------------------------------ #
    # temporal range queries
    # ------------------------------------------------------------------ #

    def _lifted(self, fingerprint: int, address: int, level: int,
                cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                ) -> Tuple[int, int]:
        key = (fingerprint, address, level)
        lifted = cache.get(key)
        if lifted is None:
            lifted = lift_coordinates(fingerprint, address, 1, level, self.config)
            cache[key] = lifted
        return lifted

    def _edge_query_hashed(self, src_fingerprint: int, src_address: int,
                           dst_fingerprint: int, dst_address: int,
                           t_start: int, t_end: int,
                           cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                           ) -> float:
        decomposition = self._plan_cache.lookup(self._tree, t_start, t_end)
        total = 0.0
        for node in decomposition.aggregated_nodes:
            lifted_fs, lifted_hs = self._lifted(src_fingerprint, src_address,
                                                node.level, cache)
            lifted_fd, lifted_hd = self._lifted(dst_fingerprint, dst_address,
                                                node.level, cache)
            total += node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd)
        for leaf in decomposition.boundary_leaves:
            for matrix in leaf.matrices():
                total += matrix.query_edge(src_fingerprint, dst_fingerprint,
                                           src_address, dst_address,
                                           t_start, t_end)
        return total

    def _vertex_query_hashed(self, fingerprint: int, address: int,
                             t_start: int, t_end: int, direction: str,
                             cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                             ) -> float:
        decomposition = self._plan_cache.lookup(self._tree, t_start, t_end)
        total = 0.0
        for node in decomposition.aggregated_nodes:
            lifted_f, lifted_h = self._lifted(fingerprint, address,
                                              node.level, cache)
            total += node.query_vertex(lifted_f, lifted_h, direction=direction)
        for leaf in decomposition.boundary_leaves:
            for matrix in leaf.matrices():
                total += matrix.query_vertex(fingerprint, address,
                                             direction=direction,
                                             t_start=t_start, t_end=t_end)
        return total

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        """Estimated aggregated weight of ``source → destination`` in range."""
        self.check_range(t_start, t_end)
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        return self._edge_query_hashed(src_fingerprint, src_address,
                                       dst_fingerprint, dst_address,
                                       t_start, t_end, {})

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        """Estimated aggregated weight of a vertex's incident edges in range."""
        self.check_range(t_start, t_end)
        if direction not in ("out", "in"):
            raise QueryError("direction must be 'out' or 'in'")
        fingerprint, address = self._hasher.split(vertex)
        return self._vertex_query_hashed(fingerprint, address,
                                         t_start, t_end, direction, {})

    def query_batch(self, queries: Sequence) -> List[float]:
        """Answer a batch of query objects with shared per-batch state.

        Edge and vertex queries share one vertex-split memo and one
        lifted-coordinate memo across the whole batch (both memoize pure
        functions, so results are bit-identical to the per-item path);
        composite queries fall back to their per-item evaluation, which still
        benefits from the query-plan cache.
        """
        split = self._hasher.split
        split_memo: Dict[Vertex, Tuple[int, int]] = {}
        lifted: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

        def memo_split(vertex: Vertex) -> Tuple[int, int]:
            pair = split_memo.get(vertex)
            if pair is None:
                pair = split_memo[vertex] = split(vertex)
            return pair

        results: List[float] = []
        append = results.append
        for query in queries:
            # Structural dispatch keeps this module free of an import cycle
            # with :mod:`repro.queries.types`.
            if hasattr(query, "destination"):  # edge query
                self.check_range(query.t_start, query.t_end)
                src = memo_split(query.source)
                dst = memo_split(query.destination)
                append(self._edge_query_hashed(src[0], src[1], dst[0], dst[1],
                                               query.t_start, query.t_end,
                                               lifted))
            elif hasattr(query, "vertex"):  # vertex query
                self.check_range(query.t_start, query.t_end)
                direction = query.direction
                if direction not in ("out", "in"):
                    raise QueryError("direction must be 'out' or 'in'")
                fingerprint, address = memo_split(query.vertex)
                append(self._vertex_query_hashed(fingerprint, address,
                                                 query.t_start, query.t_end,
                                                 direction, lifted))
            else:  # composite (path / subgraph) — per-item evaluation
                append(query.evaluate(self))
        return results

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def decompose(self, t_start: int, t_end: int) -> RangeDecomposition:
        """Expose the boundary-search decomposition (useful for analysis/tests).

        Always performs a fresh walk so the reported ``nodes_visited`` is the
        true per-query cost, independent of the plan cache.
        """
        self.check_range(t_start, t_end)
        return boundary_search(self._tree, t_start, t_end)

    @property
    def plan_cache(self) -> QueryPlanCache:
        """The query-plan cache memoizing range decompositions."""
        return self._plan_cache

    def plan_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters of the query-plan cache."""
        return self._plan_cache.stats()

    @property
    def tree(self) -> HiggsTree:
        """The underlying tree (read-only use by benchmarks and tests)."""
        return self._tree

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes currently in the tree."""
        return self._tree.leaf_count

    @property
    def height(self) -> int:
        """Number of tree layers (leaves included)."""
        return self._tree.height

    def memory_bytes(self) -> int:
        """Analytic memory footprint of the whole structure."""
        return self._tree.memory_bytes()

    def stats(self) -> Dict[str, object]:
        """Structural statistics (leaf count, utilization, memory, ...)."""
        return self._tree.stats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Higgs(leaves={self.leaf_count}, height={self.height}, "
                f"items={self._tree.items_inserted})")
