"""HIGGS: the hierarchy-guided graph stream summary (the paper's contribution).

:class:`Higgs` is the public entry point of this library.  It owns the vertex
hasher, the aggregated B-tree of compressed matrices, and implements the
:class:`~repro.summary.TemporalGraphSummary` interface: stream items are
inserted one at a time (or in bulk via :meth:`Higgs.insert_batch`, which
pre-hashes the batch through a per-batch fingerprint/address memo and defers
upward aggregation to the end of the batch), and edge / vertex / path /
subgraph queries can be answered over any temporal range — individually or
in bulk via :meth:`Higgs.query_batch`.  Range decompositions are memoized in
a :class:`~repro.core.boundary.QueryPlanCache` keyed by
``(t_start, t_end, tree.version)``, so repeated-range workloads skip the
boundary search after the first query.

Example
-------
>>> from repro import Higgs, HiggsConfig
>>> summary = Higgs(HiggsConfig(leaf_matrix_size=8))
>>> summary.insert("alice", "bob", 1.0, 10)
>>> summary.insert("alice", "bob", 2.0, 20)
>>> summary.edge_query("alice", "bob", 0, 15)
1.0
>>> summary.edge_query("alice", "bob", 0, 25)
3.0
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..streams.edge import StreamEdge, Vertex
from ..summary import TemporalGraphSummary
from . import vectorized
from .aggregation import lift_coordinates
from .boundary import QueryPlanCache, RangeDecomposition, boundary_search
from .config import HiggsConfig, accelerator
from .hashing import VertexHasher
from .tree import HiggsTree


class Higgs(TemporalGraphSummary):
    """Item-based, bottom-up hierarchical graph stream summary.

    Parameters
    ----------
    config:
        Structure parameters; see :class:`~repro.core.config.HiggsConfig`.
        The defaults match the paper's experimental configuration.
    """

    name = "HIGGS"

    def __init__(self, config: Optional[HiggsConfig] = None) -> None:
        self.config = config or HiggsConfig()
        self._hasher = VertexHasher(self.config.fingerprint_bits,
                                    self.config.leaf_matrix_size,
                                    seed=self.config.hash_seed)
        self._tree = HiggsTree(self.config)
        self._plan_cache = QueryPlanCache()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Insert one stream item (paper Algorithm 1)."""
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        self._tree.insert_hashed(src_fingerprint, dst_fingerprint,
                                 src_address, dst_address, weight, int(timestamp))

    def insert_batch(self, edges: Iterable[StreamEdge]) -> int:
        """Insert a batch of stream items with one-pass hashing.

        Each distinct vertex in the batch is hashed once and its leaf-level
        probe-address sequence computed once (graph streams are heavily
        skewed, so most items hit this memo), then the pre-hashed batch is
        applied by :meth:`HiggsTree.insert_hashed_batch`, which defers upward
        aggregation to the end of the batch.  The resulting structure is
        identical to per-item insertion.

        When numpy is available (see :func:`~repro.core.config.accelerator`)
        the whole batch is hashed and probed as packed arrays instead
        (:meth:`HiggsTree.insert_hashed_batch_arrays`) — bit-identical to
        the scalar path, just without per-item Python arithmetic.  Batches
        exposing pre-packed arrays (``packed_arrays()``, e.g. shared-memory
        batches from :mod:`repro.core.shm`) skip the packing pass entirely.
        """
        if accelerator() is not None:
            packed = getattr(edges, "packed_arrays", None)
            if packed is not None:
                vertices, src_idx, dst_idx, weights, timestamps = packed()
                if not len(src_idx):
                    return 0
                return self._tree.insert_hashed_batch_arrays(
                    *self._hash_indexed(vertices, src_idx, dst_idx,
                                        weights, timestamps))
            if isinstance(edges, (list, tuple)):
                items = edges
            else:
                # Match the streaming exception contract of the scalar path:
                # every item the iterable yielded before dying is applied.
                items = []
                try:
                    items.extend(edges)
                except BaseException:
                    if items:
                        self._tree.insert_hashed_batch_arrays(
                            *self._pack_batch(items))
                    raise
            if not items:
                return 0
            return self._tree.insert_hashed_batch_arrays(
                *self._pack_batch(items))
        return self._tree.insert_edges_batch(edges, self._hasher.split)

    def _pack_batch(self, items: Sequence[StreamEdge]) -> Tuple:
        """Index a batch's distinct vertices and pack it into hashed arrays."""
        index: Dict[Vertex, int] = {}
        setdefault = index.setdefault
        src_idx: List[int] = []
        dst_idx: List[int] = []
        weights: List[float] = []
        timestamps: List[int] = []
        for edge in items:
            src_idx.append(setdefault(edge.source, len(index)))
            dst_idx.append(setdefault(edge.destination, len(index)))
            weights.append(edge.weight)
            timestamps.append(int(edge.timestamp))
        return self._hash_indexed(list(index), src_idx, dst_idx,
                                  weights, timestamps)

    def _hash_indexed(self, vertices: Sequence[Vertex], src_idx, dst_idx,
                      weights, timestamps) -> Tuple:
        """Hash distinct vertices once, fan out to per-edge batch arrays.

        ``src_idx`` / ``dst_idx`` index into ``vertices`` (the bulk analogue
        of the scalar batch path's per-vertex split memo — each distinct
        vertex is hashed exactly once).  Returns the argument tuple for
        :meth:`HiggsTree.insert_hashed_batch_arrays`.
        """
        np = vectorized.np
        config = self.config
        hashes = vectorized.hash64_array(vertices, config.hash_seed)
        fingerprints, addresses = vectorized.split_array(
            hashes, config.fingerprint_bits, config.leaf_matrix_size)
        return (fingerprints, addresses,
                np.asarray(src_idx, dtype=np.int64),
                np.asarray(dst_idx, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
                np.asarray(timestamps, dtype=np.int64))

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Remove ``weight`` from a previously inserted item.

        The matching leaf entry and every materialized ancestor aggregate are
        decremented; if no leaf entry matches (the item was never inserted)
        the summary is left unchanged.
        """
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        self._tree.delete_hashed(src_fingerprint, dst_fingerprint,
                                 src_address, dst_address, weight, int(timestamp))

    # ------------------------------------------------------------------ #
    # temporal range queries
    # ------------------------------------------------------------------ #

    def _lifted(self, fingerprint: int, address: int, level: int,
                cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                ) -> Tuple[int, int]:
        key = (fingerprint, address, level)
        lifted = cache.get(key)
        if lifted is None:
            lifted = lift_coordinates(fingerprint, address, 1, level, self.config)
            cache[key] = lifted
        return lifted

    def _edge_query_hashed(self, src_fingerprint: int, src_address: int,
                           dst_fingerprint: int, dst_address: int,
                           t_start: int, t_end: int,
                           cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                           ) -> float:
        decomposition = self._plan_cache.lookup(self._tree, t_start, t_end)
        total = 0.0
        for node in decomposition.aggregated_nodes:
            lifted_fs, lifted_hs = self._lifted(src_fingerprint, src_address,
                                                node.level, cache)
            lifted_fd, lifted_hd = self._lifted(dst_fingerprint, dst_address,
                                                node.level, cache)
            total += node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd)
        for leaf in decomposition.boundary_leaves:
            for matrix in leaf.matrices():
                total += matrix.query_edge(src_fingerprint, dst_fingerprint,
                                           src_address, dst_address,
                                           t_start, t_end)
        return total

    def _vertex_query_hashed(self, fingerprint: int, address: int,
                             t_start: int, t_end: int, direction: str,
                             cache: Dict[Tuple[int, int, int], Tuple[int, int]]
                             ) -> float:
        decomposition = self._plan_cache.lookup(self._tree, t_start, t_end)
        total = 0.0
        for node in decomposition.aggregated_nodes:
            lifted_f, lifted_h = self._lifted(fingerprint, address,
                                              node.level, cache)
            total += node.query_vertex(lifted_f, lifted_h, direction=direction)
        for leaf in decomposition.boundary_leaves:
            for matrix in leaf.matrices():
                total += matrix.query_vertex(fingerprint, address,
                                             direction=direction,
                                             t_start=t_start, t_end=t_end)
        return total

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        """Estimated aggregated weight of ``source → destination`` in range."""
        self.check_range(t_start, t_end)
        src_fingerprint, src_address = self._hasher.split(source)
        dst_fingerprint, dst_address = self._hasher.split(destination)
        return self._edge_query_hashed(src_fingerprint, src_address,
                                       dst_fingerprint, dst_address,
                                       t_start, t_end, {})

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        """Estimated aggregated weight of a vertex's incident edges in range."""
        self.check_range(t_start, t_end)
        if direction not in ("out", "in"):
            raise QueryError("direction must be 'out' or 'in'")
        fingerprint, address = self._hasher.split(vertex)
        return self._vertex_query_hashed(fingerprint, address,
                                         t_start, t_end, direction, {})

    def query_batch(self, queries: Sequence) -> List[float]:
        """Answer a batch of query objects with shared per-batch state.

        Edge and vertex queries share one vertex-split memo and one
        lifted-coordinate memo across the whole batch (both memoize pure
        functions, so results are bit-identical to the per-item path);
        composite queries fall back to their per-item evaluation, which still
        benefits from the query-plan cache.

        When numpy is available the batch's distinct edge/vertex-query
        endpoints are hashed in one vectorized pass that pre-fills the split
        memo; the per-query answers are unchanged (the bulk hash is
        bit-identical to :meth:`VertexHasher.split`).
        """
        split = self._hasher.split
        split_memo: Dict[Vertex, Tuple[int, int]] = {}
        if accelerator() is not None:
            distinct: Dict[Vertex, None] = {}
            for query in queries:
                if hasattr(query, "destination"):
                    distinct.setdefault(query.source)
                    distinct.setdefault(query.destination)
                elif hasattr(query, "vertex"):
                    distinct.setdefault(query.vertex)
            if distinct:
                vertices = list(distinct)
                fingerprints, addresses = vectorized.split_array(
                    vectorized.hash64_array(vertices, self.config.hash_seed),
                    self.config.fingerprint_bits,
                    self.config.leaf_matrix_size)
                split_memo = dict(zip(vertices, zip(fingerprints.tolist(),
                                                    addresses.tolist())))
        lifted: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

        def memo_split(vertex: Vertex) -> Tuple[int, int]:
            pair = split_memo.get(vertex)
            if pair is None:
                pair = split_memo[vertex] = split(vertex)
            return pair

        results: List[float] = []
        append = results.append
        for query in queries:
            # Structural dispatch keeps this module free of an import cycle
            # with :mod:`repro.queries.types`.
            if hasattr(query, "destination"):  # edge query
                self.check_range(query.t_start, query.t_end)
                src = memo_split(query.source)
                dst = memo_split(query.destination)
                append(self._edge_query_hashed(src[0], src[1], dst[0], dst[1],
                                               query.t_start, query.t_end,
                                               lifted))
            elif hasattr(query, "vertex"):  # vertex query
                self.check_range(query.t_start, query.t_end)
                direction = query.direction
                if direction not in ("out", "in"):
                    raise QueryError("direction must be 'out' or 'in'")
                fingerprint, address = memo_split(query.vertex)
                append(self._vertex_query_hashed(fingerprint, address,
                                                 query.t_start, query.t_end,
                                                 direction, lifted))
            else:  # composite (path / subgraph) — per-item evaluation
                append(query.evaluate(self))
        return results

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def decompose(self, t_start: int, t_end: int) -> RangeDecomposition:
        """Expose the boundary-search decomposition (useful for analysis/tests).

        Always performs a fresh walk so the reported ``nodes_visited`` is the
        true per-query cost, independent of the plan cache.
        """
        self.check_range(t_start, t_end)
        return boundary_search(self._tree, t_start, t_end)

    @property
    def plan_cache(self) -> QueryPlanCache:
        """The query-plan cache memoizing range decompositions."""
        return self._plan_cache

    def plan_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters of the query-plan cache."""
        return self._plan_cache.stats()

    @property
    def tree(self) -> HiggsTree:
        """The underlying tree (read-only use by benchmarks and tests)."""
        return self._tree

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes currently in the tree."""
        return self._tree.leaf_count

    @property
    def height(self) -> int:
        """Number of tree layers (leaves included)."""
        return self._tree.height

    def memory_bytes(self) -> int:
        """Analytic memory footprint of the whole structure."""
        return self._tree.memory_bytes()

    def stats(self) -> Dict[str, object]:
        """Structural statistics (leaf count, utilization, memory, ...)."""
        return self._tree.stats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Higgs(leaves={self.leaf_count}, height={self.height}, "
                f"items={self._tree.items_inserted})")
