"""Compressed matrices: the storage primitive of HIGGS.

A compressed matrix (paper Section IV-A) is a ``d × d`` grid of buckets.
Each bucket holds up to ``b`` entries.  A leaf-level entry records
``(f(s), f(d), probe indices, timestamp, weight)``; a non-leaf (aggregated)
entry omits the timestamp.  With the *multiple mapping buckets* optimization
an edge has ``r × r`` candidate buckets obtained from per-vertex probe
sequences; the probe index pair ``(i, j)`` is stored so the canonical
addresses can be recovered during aggregation.

The implementation stores buckets sparsely (only occupied buckets allocate a
Python list), while the analytic memory model charges the full pre-allocated
capacity ``d² · b`` entries — matching how the paper accounts space for the
C++ arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from . import vectorized
from .hashing import probe_address, probe_step


@dataclass(slots=True)
class MatrixEntry:
    """One stored edge record inside a bucket.

    ``timestamp`` is ``None`` for entries in aggregated (non-leaf) matrices.
    ``src_probe`` / ``dst_probe`` are the probe indices of the bucket this
    entry landed in, relative to the canonical addresses of its endpoints.
    """

    src_fingerprint: int
    dst_fingerprint: int
    src_probe: int
    dst_probe: int
    weight: float
    timestamp: Optional[int] = None

    def matches(self, src_fingerprint: int, dst_fingerprint: int,
                timestamp: Optional[int] = None) -> bool:
        """Return True if this entry identifies the same (edge, timestamp) item."""
        if self.src_fingerprint != src_fingerprint:
            return False
        if self.dst_fingerprint != dst_fingerprint:
            return False
        if timestamp is not None and self.timestamp != timestamp:
            return False
        return True


class CompressedMatrix:
    """A ``size × size`` grid of buckets with ``bucket_entries`` slots each.

    Parameters
    ----------
    size:
        Matrix dimension ``d``.
    bucket_entries:
        Entries per bucket ``b``.
    num_probes:
        Number of candidate addresses per vertex ``r`` (``1`` disables MMB).
    store_timestamps:
        Leaf matrices store per-item timestamps; aggregated matrices do not.
    entry_bytes:
        Analytic size of one entry, used by :meth:`memory_bytes`.
    """

    __slots__ = ("size", "bucket_entries", "num_probes", "store_timestamps",
                 "entry_bytes", "_buckets", "_rows", "_cols", "_entry_count",
                 "start_time", "end_time")

    def __init__(self, size: int, bucket_entries: int, *, num_probes: int = 1,
                 store_timestamps: bool = True, entry_bytes: int = 16) -> None:
        if size < 1:
            raise ConfigurationError("matrix size must be positive")
        if bucket_entries < 1:
            raise ConfigurationError("bucket_entries must be >= 1")
        if num_probes < 1:
            raise ConfigurationError("num_probes must be >= 1")
        self.size = size
        self.bucket_entries = bucket_entries
        self.num_probes = num_probes
        self.store_timestamps = store_timestamps
        self.entry_bytes = entry_bytes
        #: Sparse bucket grid keyed by the flat index ``row * size + col``
        #: (an int key avoids a tuple allocation per probe in the hot path).
        self._buckets: Dict[int, List[MatrixEntry]] = {}
        self._rows: Dict[int, Set[int]] = {}
        self._cols: Dict[int, Set[int]] = {}
        self._entry_count = 0
        #: Earliest / latest item timestamp stored (leaf matrices only).
        self.start_time: Optional[int] = None
        self.end_time: Optional[int] = None

    # ------------------------------------------------------------------ #
    # capacity & bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Total number of entry slots (``d² · b``)."""
        return self.size * self.size * self.bucket_entries

    @property
    def entry_count(self) -> int:
        """Number of occupied entry slots."""
        return self._entry_count

    @property
    def utilization(self) -> float:
        """Fraction of the allocated capacity currently occupied."""
        return self._entry_count / self.capacity if self.capacity else 0.0

    def memory_bytes(self) -> int:
        """Analytic memory of the fully allocated matrix (see module docstring)."""
        return self.capacity * self.entry_bytes

    def _bucket(self, row: int, col: int) -> List[MatrixEntry]:
        key = row * self.size + col
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = []
            self._buckets[key] = bucket
            self._rows.setdefault(row, set()).add(col)
            self._cols.setdefault(col, set()).add(row)
        return bucket

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    # hot-path: bulk=probe_rows_array
    def probe_rows(self, fingerprint: int, address: int) -> Tuple[int, ...]:
        """The vertex's candidate row/column indices, probe order.

        Precomputing these once per vertex (and memoizing them per batch) is
        the basis of :meth:`insert_probed`.  Scalar fallback twin of
        :meth:`probe_rows_array`.
        """
        step = probe_step(fingerprint)
        size = self.size
        return tuple((address + i * step) % size for i in range(self.num_probes))

    # hot-path
    def probe_rows_array(self, fingerprints, addresses):
        """Vectorized :meth:`probe_rows` over parallel coordinate arrays.

        Returns an ``(n, num_probes)`` ``int64`` matrix of candidate
        row/column indices, bit-identical row-wise to :meth:`probe_rows`.
        Requires numpy (callers gate through
        :func:`repro.core.config.accelerator`).
        """
        return vectorized.probe_rows_array(fingerprints, addresses,
                                           self.num_probes, self.size)

    def insert(self, src_fingerprint: int, dst_fingerprint: int,
               src_address: int, dst_address: int, weight: float,
               timestamp: Optional[int] = None) -> bool:
        """Insert (or accumulate) one item.  Returns False if every candidate
        bucket is full and no matching entry exists (an insertion failure in
        the paper's terminology — the caller then opens a new leaf)."""
        return self.insert_probed(
            src_fingerprint, dst_fingerprint,
            self.probe_rows(src_fingerprint, src_address),
            self.probe_rows(dst_fingerprint, dst_address),
            weight, timestamp) is not None

    # hot-path: bulk=insert_probed_array
    def insert_probed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_rows: Sequence[int], dst_cols: Sequence[int],
                      weight: float,
                      timestamp: Optional[int] = None) -> Optional[MatrixEntry]:
        """:meth:`insert` with precomputed probe sequences (see
        :meth:`probe_rows`); bit-identical placement, probe order and result.

        Returns the entry the weight was accumulated into (or appended as),
        or ``None`` on insertion failure.  A matrix holds at most one entry
        per ``(fingerprints, probe positions, timestamp)`` key — accumulation
        prevents duplicates — so batch callers may memoize the returned entry
        and add follow-up weights to it directly, skipping the bucket scan.

        This is the bulk-ingestion hot path: batch callers memoize the probe
        sequences per vertex, so repeated endpoints skip all probe-address
        arithmetic."""
        ts = timestamp if self.store_timestamps else None
        free_slot: Optional[Tuple[int, int]] = None
        buckets = self._buckets
        bucket_entries = self.bucket_entries
        size = self.size

        for i, row in enumerate(src_rows):
            row_base = row * size
            for j, col in enumerate(dst_cols):
                bucket = buckets.get(row_base + col)
                if bucket is None:
                    if free_slot is None:
                        free_slot = (i, j)
                    continue
                for entry in bucket:
                    if (entry.src_probe == i and entry.dst_probe == j
                            and entry.src_fingerprint == src_fingerprint
                            and entry.dst_fingerprint == dst_fingerprint
                            and (ts is None or entry.timestamp == ts)):
                        entry.weight += weight
                        # start/end-time tracking is inlined (twice: here and
                        # on the append path) — this is the ingest hot loop.
                        if ts is not None:
                            if self.start_time is None or ts < self.start_time:
                                self.start_time = ts
                            if self.end_time is None or ts > self.end_time:
                                self.end_time = ts
                        return entry
                if free_slot is None and len(bucket) < bucket_entries:
                    free_slot = (i, j)

        if free_slot is None:
            return None
        i, j = free_slot
        entry = MatrixEntry(src_fingerprint, dst_fingerprint, i, j, weight, ts)
        self._bucket(src_rows[i], dst_cols[j]).append(entry)
        self._entry_count += 1
        if ts is not None:
            if self.start_time is None or ts < self.start_time:
                self.start_time = ts
            if self.end_time is None or ts > self.end_time:
                self.end_time = ts
        return entry

    # hot-path: bulk=insert_probed_array
    def insert_cells(self, src_fingerprint: int, dst_fingerprint: int,
                     cells: Sequence[int], src_rows: Sequence[int],
                     dst_cols: Sequence[int], weight: float,
                     timestamp: Optional[int] = None) -> Optional[MatrixEntry]:
        """:meth:`insert_probed` with the candidate cells precomputed.

        ``cells[i * r + j]`` must equal ``src_rows[i] * size + dst_cols[j]``
        (see :func:`repro.core.vectorized.candidate_cells_array`, which the
        array ingest paths use to build them for a whole batch at once).
        This is the sequential core the bulk paths cannot vectorize —
        placement depends on what previous items placed — stripped of all
        per-candidate address arithmetic.  Scan order, free-slot choice and
        the returned entry are bit-identical to :meth:`insert_probed`.
        """
        ts = timestamp if self.store_timestamps else None
        free_slot = -1
        buckets = self._buckets
        bucket_entries = self.bucket_entries
        num_cols = len(dst_cols)

        for position, cell in enumerate(cells):
            bucket = buckets.get(cell)
            if bucket is None:
                if free_slot < 0:
                    free_slot = position
                continue
            i, j = divmod(position, num_cols)
            for entry in bucket:
                if (entry.src_probe == i and entry.dst_probe == j
                        and entry.src_fingerprint == src_fingerprint
                        and entry.dst_fingerprint == dst_fingerprint
                        and (ts is None or entry.timestamp == ts)):
                    entry.weight += weight
                    if ts is not None:
                        if self.start_time is None or ts < self.start_time:
                            self.start_time = ts
                        if self.end_time is None or ts > self.end_time:
                            self.end_time = ts
                    return entry
            if free_slot < 0 and len(bucket) < bucket_entries:
                free_slot = position

        if free_slot < 0:
            return None
        i, j = divmod(free_slot, num_cols)
        entry = MatrixEntry(src_fingerprint, dst_fingerprint, i, j, weight, ts)
        key = cells[free_slot]
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
            row, col = src_rows[i], dst_cols[j]
            self._rows.setdefault(row, set()).add(col)
            self._cols.setdefault(col, set()).add(row)
        bucket.append(entry)
        self._entry_count += 1
        if ts is not None:
            if self.start_time is None or ts < self.start_time:
                self.start_time = ts
            if self.end_time is None or ts > self.end_time:
                self.end_time = ts
        return entry

    # hot-path
    def insert_probed_array(self, src_fingerprints, dst_fingerprints,
                            src_rows, dst_cols, weights,
                            timestamps=None) -> List[Optional[MatrixEntry]]:
        """Bulk :meth:`insert_probed` over parallel arrays (requires numpy).

        ``src_rows`` / ``dst_cols`` are ``(n, num_probes)`` ``int64``
        matrices from :meth:`probe_rows_array`; ``weights`` is ``float64``
        and ``timestamps`` ``int64`` (or ``None`` for aggregated matrices).
        The candidate cells of the whole batch are computed in one
        vectorized pass; items are then applied strictly in order, so the
        resulting matrix is bit-identical to ``n`` sequential
        :meth:`insert_probed` calls.  The k-th result is the entry the k-th
        item accumulated into, or ``None`` on placement failure (callers
        redirect those into an overflow structure).
        """
        cells = vectorized.candidate_cells_array(src_rows, dst_cols,
                                                 self.size).tolist()
        rows_list = src_rows.tolist()
        cols_list = dst_cols.tolist()
        src_fps = src_fingerprints.tolist()
        dst_fps = dst_fingerprints.tolist()
        weight_list = weights.tolist()
        ts_list = timestamps.tolist() if timestamps is not None else None
        insert_cells = self.insert_cells
        results: List[Optional[MatrixEntry]] = []
        append = results.append
        for k in range(len(src_fps)):
            append(insert_cells(src_fps[k], dst_fps[k], cells[k],
                                rows_list[k], cols_list[k], weight_list[k],
                                ts_list[k] if ts_list is not None else None))
        return results

    def decrement(self, src_fingerprint: int, dst_fingerprint: int,
                  src_address: int, dst_address: int, weight: float,
                  timestamp: Optional[int] = None) -> bool:
        """Subtract ``weight`` from the matching entry (deletion support).

        Returns True if a matching entry was found.
        """
        ts = timestamp if self.store_timestamps else None
        for i in range(self.num_probes):
            row = probe_address(src_address, i, src_fingerprint, self.size)
            for j in range(self.num_probes):
                col = probe_address(dst_address, j, dst_fingerprint, self.size)
                bucket = self._buckets.get(row * self.size + col)
                if not bucket:
                    continue
                for entry in bucket:
                    if (entry.matches(src_fingerprint, dst_fingerprint, ts)
                            and entry.src_probe == i and entry.dst_probe == j):
                        entry.weight -= weight
                        return True
        return False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    # hot-path
    def query_edge(self, src_fingerprint: int, dst_fingerprint: int,
                   src_address: int, dst_address: int,
                   t_start: Optional[int] = None,
                   t_end: Optional[int] = None) -> float:
        """Sum the stored weight of entries identifying ``(src, dst)``.

        For leaf matrices an optional ``[t_start, t_end]`` filter restricts
        the sum to items whose timestamp falls in the range.
        """
        total = 0.0
        for i in range(self.num_probes):
            row = probe_address(src_address, i, src_fingerprint, self.size)
            for j in range(self.num_probes):
                col = probe_address(dst_address, j, dst_fingerprint, self.size)
                bucket = self._buckets.get(row * self.size + col)
                if not bucket:
                    continue
                for entry in bucket:
                    if entry.src_probe != i or entry.dst_probe != j:
                        continue
                    if not entry.matches(src_fingerprint, dst_fingerprint):
                        continue
                    if self.store_timestamps and t_start is not None:
                        if entry.timestamp is None:
                            continue
                        if not (t_start <= entry.timestamp <= t_end):
                            continue
                    total += entry.weight
        return total

    # hot-path
    def query_vertex(self, fingerprint: int, address: int, *,
                     direction: str = "out",
                     t_start: Optional[int] = None,
                     t_end: Optional[int] = None) -> float:
        """Sum weights of entries whose source (``out``) or destination
        (``in``) endpoint identifies the queried vertex."""
        total = 0.0
        size = self.size
        for i in range(self.num_probes):
            lane = probe_address(address, i, fingerprint, size)
            if direction == "out":
                cols = self._rows.get(lane, ())
                cells = (lane * size + col for col in cols)
            else:
                rows = self._cols.get(lane, ())
                cells = (row * size + lane for row in rows)
            for cell in cells:
                bucket = self._buckets.get(cell)
                if not bucket:
                    continue
                for entry in bucket:
                    if direction == "out":
                        if entry.src_probe != i or entry.src_fingerprint != fingerprint:
                            continue
                    else:
                        if entry.dst_probe != i or entry.dst_fingerprint != fingerprint:
                            continue
                    if self.store_timestamps and t_start is not None:
                        if entry.timestamp is None:
                            continue
                        if not (t_start <= entry.timestamp <= t_end):
                            continue
                    total += entry.weight
        return total

    # ------------------------------------------------------------------ #
    # aggregation support
    # ------------------------------------------------------------------ #

    # hot-path: bulk=canonical_entries_arrays
    def iter_canonical_entries(self) -> Iterator[Tuple[int, int, int, int, float,
                                                       Optional[int]]]:
        """Yield ``(f(s), f(d), h(s), h(d), weight, timestamp)`` per entry.

        Addresses are the *canonical* (probe index 0) addresses, recovered
        from the bucket coordinates and the stored probe indices.  This is the
        iteration primitive used by the parent-level aggregation.
        """
        size = self.size
        for key, bucket in self._buckets.items():
            row, col = divmod(key, size)
            for entry in bucket:
                src_fingerprint = entry.src_fingerprint
                dst_fingerprint = entry.dst_fingerprint
                # recover_base inlined: base = probed - probe * (2*fp + 1).
                base_row = (row - entry.src_probe
                            * (2 * src_fingerprint + 1)) % size
                base_col = (col - entry.dst_probe
                            * (2 * dst_fingerprint + 1)) % size
                yield (src_fingerprint, dst_fingerprint,
                       base_row, base_col, entry.weight, entry.timestamp)

    # hot-path
    def canonical_entries_arrays(self):
        """Array form of :meth:`iter_canonical_entries` (requires numpy).

        Returns ``(src_fps, dst_fps, src_addrs, dst_addrs, weights)``
        arrays in the exact entry order of the iterator; the canonical
        base-address recovery runs vectorized.  Timestamps are omitted —
        the only consumer is the aggregation, which drops them.
        """
        np = vectorized.np
        src_fps: List[int] = []
        dst_fps: List[int] = []
        rows: List[int] = []
        cols: List[int] = []
        src_probes: List[int] = []
        dst_probes: List[int] = []
        weights: List[float] = []
        size = self.size
        for key, bucket in self._buckets.items():
            row, col = divmod(key, size)
            for entry in bucket:
                src_fps.append(entry.src_fingerprint)
                dst_fps.append(entry.dst_fingerprint)
                rows.append(row)
                cols.append(col)
                src_probes.append(entry.src_probe)
                dst_probes.append(entry.dst_probe)
                weights.append(entry.weight)
        fs = np.asarray(src_fps, dtype=np.int64)
        fd = np.asarray(dst_fps, dtype=np.int64)
        hs = (np.asarray(rows, dtype=np.int64)
              - np.asarray(src_probes, dtype=np.int64) * (2 * fs + 1)) % size
        hd = (np.asarray(cols, dtype=np.int64)
              - np.asarray(dst_probes, dtype=np.int64) * (2 * fd + 1)) % size
        return fs, fd, hs, hd, np.asarray(weights, dtype=np.float64)

    def __len__(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"CompressedMatrix(size={self.size}, entries={self._entry_count}/"
                f"{self.capacity}, timestamps={self.store_timestamps})")
