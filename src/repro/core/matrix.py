"""Compressed matrices: the storage primitive of HIGGS.

A compressed matrix (paper Section IV-A) is a ``d × d`` grid of buckets.
Each bucket holds up to ``b`` entries.  A leaf-level entry records
``(f(s), f(d), probe indices, timestamp, weight)``; a non-leaf (aggregated)
entry omits the timestamp.  With the *multiple mapping buckets* optimization
an edge has ``r × r`` candidate buckets obtained from per-vertex probe
sequences; the probe index pair ``(i, j)`` is stored so the canonical
addresses can be recovered during aggregation.

The implementation stores buckets sparsely (only occupied buckets allocate a
Python list), while the analytic memory model charges the full pre-allocated
capacity ``d² · b`` entries — matching how the paper accounts space for the
C++ arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from .hashing import probe_address, probe_step


@dataclass(slots=True)
class MatrixEntry:
    """One stored edge record inside a bucket.

    ``timestamp`` is ``None`` for entries in aggregated (non-leaf) matrices.
    ``src_probe`` / ``dst_probe`` are the probe indices of the bucket this
    entry landed in, relative to the canonical addresses of its endpoints.
    """

    src_fingerprint: int
    dst_fingerprint: int
    src_probe: int
    dst_probe: int
    weight: float
    timestamp: Optional[int] = None

    def matches(self, src_fingerprint: int, dst_fingerprint: int,
                timestamp: Optional[int] = None) -> bool:
        """Return True if this entry identifies the same (edge, timestamp) item."""
        if self.src_fingerprint != src_fingerprint:
            return False
        if self.dst_fingerprint != dst_fingerprint:
            return False
        if timestamp is not None and self.timestamp != timestamp:
            return False
        return True


class CompressedMatrix:
    """A ``size × size`` grid of buckets with ``bucket_entries`` slots each.

    Parameters
    ----------
    size:
        Matrix dimension ``d``.
    bucket_entries:
        Entries per bucket ``b``.
    num_probes:
        Number of candidate addresses per vertex ``r`` (``1`` disables MMB).
    store_timestamps:
        Leaf matrices store per-item timestamps; aggregated matrices do not.
    entry_bytes:
        Analytic size of one entry, used by :meth:`memory_bytes`.
    """

    __slots__ = ("size", "bucket_entries", "num_probes", "store_timestamps",
                 "entry_bytes", "_buckets", "_rows", "_cols", "_entry_count",
                 "start_time", "end_time")

    def __init__(self, size: int, bucket_entries: int, *, num_probes: int = 1,
                 store_timestamps: bool = True, entry_bytes: int = 16) -> None:
        if size < 1:
            raise ConfigurationError("matrix size must be positive")
        if bucket_entries < 1:
            raise ConfigurationError("bucket_entries must be >= 1")
        if num_probes < 1:
            raise ConfigurationError("num_probes must be >= 1")
        self.size = size
        self.bucket_entries = bucket_entries
        self.num_probes = num_probes
        self.store_timestamps = store_timestamps
        self.entry_bytes = entry_bytes
        #: Sparse bucket grid keyed by the flat index ``row * size + col``
        #: (an int key avoids a tuple allocation per probe in the hot path).
        self._buckets: Dict[int, List[MatrixEntry]] = {}
        self._rows: Dict[int, Set[int]] = {}
        self._cols: Dict[int, Set[int]] = {}
        self._entry_count = 0
        #: Earliest / latest item timestamp stored (leaf matrices only).
        self.start_time: Optional[int] = None
        self.end_time: Optional[int] = None

    # ------------------------------------------------------------------ #
    # capacity & bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Total number of entry slots (``d² · b``)."""
        return self.size * self.size * self.bucket_entries

    @property
    def entry_count(self) -> int:
        """Number of occupied entry slots."""
        return self._entry_count

    @property
    def utilization(self) -> float:
        """Fraction of the allocated capacity currently occupied."""
        return self._entry_count / self.capacity if self.capacity else 0.0

    def memory_bytes(self) -> int:
        """Analytic memory of the fully allocated matrix (see module docstring)."""
        return self.capacity * self.entry_bytes

    def _bucket(self, row: int, col: int) -> List[MatrixEntry]:
        key = row * self.size + col
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = []
            self._buckets[key] = bucket
            self._rows.setdefault(row, set()).add(col)
            self._cols.setdefault(col, set()).add(row)
        return bucket

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    # hot-path
    def probe_rows(self, fingerprint: int, address: int) -> Tuple[int, ...]:
        """The vertex's candidate row/column indices, probe order.

        Precomputing these once per vertex (and memoizing them per batch) is
        the basis of :meth:`insert_probed`.
        """
        step = probe_step(fingerprint)
        size = self.size
        return tuple((address + i * step) % size for i in range(self.num_probes))

    def insert(self, src_fingerprint: int, dst_fingerprint: int,
               src_address: int, dst_address: int, weight: float,
               timestamp: Optional[int] = None) -> bool:
        """Insert (or accumulate) one item.  Returns False if every candidate
        bucket is full and no matching entry exists (an insertion failure in
        the paper's terminology — the caller then opens a new leaf)."""
        return self.insert_probed(
            src_fingerprint, dst_fingerprint,
            self.probe_rows(src_fingerprint, src_address),
            self.probe_rows(dst_fingerprint, dst_address),
            weight, timestamp) is not None

    # hot-path
    def insert_probed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_rows: Sequence[int], dst_cols: Sequence[int],
                      weight: float,
                      timestamp: Optional[int] = None) -> Optional[MatrixEntry]:
        """:meth:`insert` with precomputed probe sequences (see
        :meth:`probe_rows`); bit-identical placement, probe order and result.

        Returns the entry the weight was accumulated into (or appended as),
        or ``None`` on insertion failure.  A matrix holds at most one entry
        per ``(fingerprints, probe positions, timestamp)`` key — accumulation
        prevents duplicates — so batch callers may memoize the returned entry
        and add follow-up weights to it directly, skipping the bucket scan.

        This is the bulk-ingestion hot path: batch callers memoize the probe
        sequences per vertex, so repeated endpoints skip all probe-address
        arithmetic."""
        ts = timestamp if self.store_timestamps else None
        free_slot: Optional[Tuple[int, int]] = None
        buckets = self._buckets
        bucket_entries = self.bucket_entries
        size = self.size

        for i, row in enumerate(src_rows):
            row_base = row * size
            for j, col in enumerate(dst_cols):
                bucket = buckets.get(row_base + col)
                if bucket is None:
                    if free_slot is None:
                        free_slot = (i, j)
                    continue
                for entry in bucket:
                    if (entry.src_probe == i and entry.dst_probe == j
                            and entry.src_fingerprint == src_fingerprint
                            and entry.dst_fingerprint == dst_fingerprint
                            and (ts is None or entry.timestamp == ts)):
                        entry.weight += weight
                        # start/end-time tracking is inlined (twice: here and
                        # on the append path) — this is the ingest hot loop.
                        if ts is not None:
                            if self.start_time is None or ts < self.start_time:
                                self.start_time = ts
                            if self.end_time is None or ts > self.end_time:
                                self.end_time = ts
                        return entry
                if free_slot is None and len(bucket) < bucket_entries:
                    free_slot = (i, j)

        if free_slot is None:
            return None
        i, j = free_slot
        entry = MatrixEntry(src_fingerprint, dst_fingerprint, i, j, weight, ts)
        self._bucket(src_rows[i], dst_cols[j]).append(entry)
        self._entry_count += 1
        if ts is not None:
            if self.start_time is None or ts < self.start_time:
                self.start_time = ts
            if self.end_time is None or ts > self.end_time:
                self.end_time = ts
        return entry

    def decrement(self, src_fingerprint: int, dst_fingerprint: int,
                  src_address: int, dst_address: int, weight: float,
                  timestamp: Optional[int] = None) -> bool:
        """Subtract ``weight`` from the matching entry (deletion support).

        Returns True if a matching entry was found.
        """
        ts = timestamp if self.store_timestamps else None
        for i in range(self.num_probes):
            row = probe_address(src_address, i, src_fingerprint, self.size)
            for j in range(self.num_probes):
                col = probe_address(dst_address, j, dst_fingerprint, self.size)
                bucket = self._buckets.get(row * self.size + col)
                if not bucket:
                    continue
                for entry in bucket:
                    if (entry.matches(src_fingerprint, dst_fingerprint, ts)
                            and entry.src_probe == i and entry.dst_probe == j):
                        entry.weight -= weight
                        return True
        return False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    # hot-path
    def query_edge(self, src_fingerprint: int, dst_fingerprint: int,
                   src_address: int, dst_address: int,
                   t_start: Optional[int] = None,
                   t_end: Optional[int] = None) -> float:
        """Sum the stored weight of entries identifying ``(src, dst)``.

        For leaf matrices an optional ``[t_start, t_end]`` filter restricts
        the sum to items whose timestamp falls in the range.
        """
        total = 0.0
        for i in range(self.num_probes):
            row = probe_address(src_address, i, src_fingerprint, self.size)
            for j in range(self.num_probes):
                col = probe_address(dst_address, j, dst_fingerprint, self.size)
                bucket = self._buckets.get(row * self.size + col)
                if not bucket:
                    continue
                for entry in bucket:
                    if entry.src_probe != i or entry.dst_probe != j:
                        continue
                    if not entry.matches(src_fingerprint, dst_fingerprint):
                        continue
                    if self.store_timestamps and t_start is not None:
                        if entry.timestamp is None:
                            continue
                        if not (t_start <= entry.timestamp <= t_end):
                            continue
                    total += entry.weight
        return total

    # hot-path
    def query_vertex(self, fingerprint: int, address: int, *,
                     direction: str = "out",
                     t_start: Optional[int] = None,
                     t_end: Optional[int] = None) -> float:
        """Sum weights of entries whose source (``out``) or destination
        (``in``) endpoint identifies the queried vertex."""
        total = 0.0
        size = self.size
        for i in range(self.num_probes):
            lane = probe_address(address, i, fingerprint, size)
            if direction == "out":
                cols = self._rows.get(lane, ())
                cells = (lane * size + col for col in cols)
            else:
                rows = self._cols.get(lane, ())
                cells = (row * size + lane for row in rows)
            for cell in cells:
                bucket = self._buckets.get(cell)
                if not bucket:
                    continue
                for entry in bucket:
                    if direction == "out":
                        if entry.src_probe != i or entry.src_fingerprint != fingerprint:
                            continue
                    else:
                        if entry.dst_probe != i or entry.dst_fingerprint != fingerprint:
                            continue
                    if self.store_timestamps and t_start is not None:
                        if entry.timestamp is None:
                            continue
                        if not (t_start <= entry.timestamp <= t_end):
                            continue
                    total += entry.weight
        return total

    # ------------------------------------------------------------------ #
    # aggregation support
    # ------------------------------------------------------------------ #

    # hot-path
    def iter_canonical_entries(self) -> Iterator[Tuple[int, int, int, int, float,
                                                       Optional[int]]]:
        """Yield ``(f(s), f(d), h(s), h(d), weight, timestamp)`` per entry.

        Addresses are the *canonical* (probe index 0) addresses, recovered
        from the bucket coordinates and the stored probe indices.  This is the
        iteration primitive used by the parent-level aggregation.
        """
        size = self.size
        for key, bucket in self._buckets.items():
            row, col = divmod(key, size)
            for entry in bucket:
                src_fingerprint = entry.src_fingerprint
                dst_fingerprint = entry.dst_fingerprint
                # recover_base inlined: base = probed - probe * (2*fp + 1).
                base_row = (row - entry.src_probe
                            * (2 * src_fingerprint + 1)) % size
                base_col = (col - entry.dst_probe
                            * (2 * dst_fingerprint + 1)) % size
                yield (src_fingerprint, dst_fingerprint,
                       base_row, base_col, entry.weight, entry.timestamp)

    def __len__(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"CompressedMatrix(size={self.size}, entries={self._entry_count}/"
                f"{self.capacity}, timestamps={self.store_timestamps})")
