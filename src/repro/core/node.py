"""Tree nodes of the HIGGS hierarchy.

The HIGGS structure is an aggregated B-tree (paper Section IV-A): all leaves
sit on the bottom layer and hold timestamped compressed matrices built
directly from the stream; non-leaf nodes hold timestamp keys separating their
children plus an aggregated matrix (no timestamps) summarizing the whole
subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import HiggsConfig
from .matrix import CompressedMatrix


class LeafNode:
    """A leaf of the HIGGS tree: one timestamped compressed matrix plus any
    overflow blocks chained to it.

    Overflow blocks (paper Section IV-C) absorb edges that overflow the leaf
    matrix while carrying the same timestamp as the leaf's latest item, so the
    parent's timestamp keys stay discriminative.
    """

    __slots__ = ("index", "matrix", "overflow_blocks", "closed")

    def __init__(self, index: int, config: HiggsConfig) -> None:
        self.index = index
        self.matrix = CompressedMatrix(
            config.leaf_matrix_size, config.bucket_entries,
            num_probes=config.num_probes, store_timestamps=True,
            entry_bytes=config.leaf_entry_bytes())
        self.overflow_blocks: List[CompressedMatrix] = []
        self.closed = False

    # -- time range -------------------------------------------------------

    @property
    def t_min(self) -> Optional[int]:
        """Earliest timestamp stored in this leaf (matrix or overflow blocks)."""
        candidates = [m.start_time for m in self._all_matrices()
                      if m.start_time is not None]
        return min(candidates) if candidates else None

    @property
    def t_max(self) -> Optional[int]:
        """Latest timestamp stored in this leaf."""
        candidates = [m.end_time for m in self._all_matrices()
                      if m.end_time is not None]
        return max(candidates) if candidates else None

    def _all_matrices(self) -> List[CompressedMatrix]:
        return [self.matrix, *self.overflow_blocks]

    def matrices(self) -> List[CompressedMatrix]:
        """The leaf matrix followed by its overflow blocks, in creation order."""
        return self._all_matrices()

    def overlaps(self, t_start: int, t_end: int) -> bool:
        """True if the leaf stores any item whose timestamp may fall in range."""
        t_min, t_max = self.t_min, self.t_max
        if t_min is None or t_max is None:
            return False
        return not (t_max < t_start or t_min > t_end)

    # -- accounting ---------------------------------------------------------

    def entry_count(self) -> int:
        """Number of occupied entries across the leaf matrix and overflow blocks."""
        return sum(m.entry_count for m in self._all_matrices())

    def memory_bytes(self, config: HiggsConfig) -> int:
        """Analytic footprint: allocated matrices plus one parent pointer."""
        return sum(m.memory_bytes() for m in self._all_matrices()) + config.pointer_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"LeafNode(index={self.index}, entries={self.entry_count()}, "
                f"overflow_blocks={len(self.overflow_blocks)}, closed={self.closed})")


class InternalNode:
    """A non-leaf node: an aggregated matrix summarizing ``θ`` children.

    ``level`` is 2 for parents of leaves, 3 for their parents, and so on
    (the leaf layer is level 1).  The node is materialized only once all of
    its children are closed, at which point its matrix is built by the
    bit-shift aggregation of Algorithm 2.  Entries that cannot be placed in
    the aggregated matrix (all candidate buckets full) spill into an exact
    ``overflow`` map so aggregation never introduces error.
    """

    __slots__ = ("level", "index", "matrix", "overflow", "keys",
                 "t_min", "t_max", "complete")

    def __init__(self, level: int, index: int, matrix: CompressedMatrix,
                 keys: List[int], t_min: int, t_max: int) -> None:
        self.level = level
        self.index = index
        self.matrix = matrix
        #: Exact spill-over for entries the aggregated matrix could not place,
        #: keyed by (f(s), f(d), h(s), h(d)) at this node's level.
        self.overflow: Dict[Tuple[int, int, int, int], float] = {}
        #: Timestamp keys separating the children (paper: k-1 keys for k children).
        self.keys = keys
        self.t_min = t_min
        self.t_max = t_max
        self.complete = True

    def covered_by(self, t_start: int, t_end: int) -> bool:
        """True if the node's entire time span lies inside ``[t_start, t_end]``."""
        return t_start <= self.t_min and self.t_max <= t_end

    def overlaps(self, t_start: int, t_end: int) -> bool:
        """True if the node's time span intersects ``[t_start, t_end]``."""
        return not (self.t_max < t_start or self.t_min > t_end)

    # -- queries on the aggregated data ------------------------------------

    def query_edge(self, src_fingerprint: int, dst_fingerprint: int,
                   src_address: int, dst_address: int) -> float:
        """Aggregated weight of one edge over this node's whole subtree."""
        total = self.matrix.query_edge(src_fingerprint, dst_fingerprint,
                                       src_address, dst_address)
        total += self.overflow.get(
            (src_fingerprint, dst_fingerprint, src_address, dst_address), 0.0)
        return total

    def query_vertex(self, fingerprint: int, address: int, *,
                     direction: str = "out") -> float:
        """Aggregated weight of a vertex's incident edges over the subtree."""
        total = self.matrix.query_vertex(fingerprint, address, direction=direction)
        for (fs, fd, hs, hd), weight in self.overflow.items():
            if direction == "out" and fs == fingerprint and hs == address:
                total += weight
            elif direction == "in" and fd == fingerprint and hd == address:
                total += weight
        return total

    def add_overflow(self, src_fingerprint: int, dst_fingerprint: int,
                     src_address: int, dst_address: int, weight: float) -> None:
        """Accumulate an entry that did not fit in the aggregated matrix."""
        key = (src_fingerprint, dst_fingerprint, src_address, dst_address)
        self.overflow[key] = self.overflow.get(key, 0.0) + weight

    def decrement(self, src_fingerprint: int, dst_fingerprint: int,
                  src_address: int, dst_address: int, weight: float) -> bool:
        """Subtract weight from the aggregated view (deletion support)."""
        if self.matrix.decrement(src_fingerprint, dst_fingerprint,
                                 src_address, dst_address, weight):
            return True
        key = (src_fingerprint, dst_fingerprint, src_address, dst_address)
        if key in self.overflow:
            self.overflow[key] -= weight
            return True
        return False

    # -- accounting ---------------------------------------------------------

    def memory_bytes(self, config: HiggsConfig) -> int:
        """Analytic footprint: matrix, overflow entries, keys and child pointers."""
        overflow_bytes = len(self.overflow) * (
            config.internal_entry_bytes(self.level) + 2)
        key_bytes = len(self.keys) * config.key_bytes
        pointer_bytes = config.fanout * config.pointer_bytes
        return self.matrix.memory_bytes() + overflow_bytes + key_bytes + pointer_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"InternalNode(level={self.level}, index={self.index}, "
                f"entries={self.matrix.entry_count}, overflow={len(self.overflow)}, "
                f"range=[{self.t_min}, {self.t_max}])")
