"""Parallel / pipelined insertion (paper Section IV-C, "Parallelization").

The paper assigns one thread per tree layer: the leaf-layer thread performs
the per-item insert, and upper-layer threads aggregate closed groups in the
background, so stream ingestion is not blocked by aggregation work.

CPython's GIL prevents thread-per-layer from speeding up CPU-bound pure-Python
inserts, so this module provides two modes (the substitution is documented in
DESIGN.md §3):

* ``"threaded"`` — a faithful two-stage pipeline: the caller thread performs
  leaf inserts while a worker thread drains an aggregation queue.  This keeps
  the paper's structure (useful when the aggregation step releases the GIL or
  when running under a GIL-free interpreter) but gives little speed-up here.
  If the consumer thread dies on an exception it drains the remaining queue
  (so the producer can never block forever on the bounded queue) and the
  recorded exception is re-raised in the caller.
* ``"batched"`` — the practical equivalent in CPython: chunks are driven
  through :meth:`Higgs.insert_batch`, whose one-pass hashing and deferred
  upward aggregation capture exactly the benefit the optimization targets
  (decoupling stream ingestion from aggregation).

Both modes produce a structure identical to sequential insertion.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable, List, Optional

from ..streams.edge import GraphStream, StreamEdge
from .higgs import Higgs


class PipelinedInserter:
    """Two-stage insert pipeline over a :class:`Higgs` summary.

    The first stage hashes items and applies leaf-level inserts; the second
    stage (a worker thread in ``"threaded"`` mode, or an inline batch flush in
    ``"batched"`` mode) performs the upward aggregation triggered by closed
    leaves.  Because HIGGS already performs aggregation inside
    ``insert_hashed`` when a leaf closes, the pipeline is realized by chunking
    the stream: chunks are inserted back-to-back while throughput accounting
    separates ingestion from aggregation stalls.
    """

    def __init__(self, summary: Higgs, *, mode: str = "batched",
                 batch_size: int = 1024) -> None:
        if mode not in ("threaded", "batched", "serial"):
            raise ValueError("mode must be 'threaded', 'batched', or 'serial'")
        self.summary = summary
        self.mode = mode
        self.batch_size = max(1, batch_size)

    # ------------------------------------------------------------------ #

    def insert_stream(self, stream: GraphStream | Iterable[StreamEdge]) -> int:
        """Insert every item of ``stream``; returns the number of items inserted."""
        if self.mode == "threaded":
            return self._insert_threaded(stream)
        if self.mode == "batched":
            return self._insert_batched(stream)
        return self._insert_serial(stream)

    def _insert_serial(self, stream: Iterable[StreamEdge]) -> int:
        count = 0
        for edge in stream:
            self.summary.insert(edge.source, edge.destination,
                                edge.weight, edge.timestamp)
            count += 1
        return count

    def _insert_batched(self, stream: Iterable[StreamEdge]) -> int:
        """Insert in pre-hashed batches via :meth:`Higgs.insert_batch`.

        Hashing is hoisted out of the insert loop per batch (with a per-batch
        fingerprint/address memo) and upward aggregation is deferred to batch
        boundaries, mirroring how the paper's leaf-layer thread prepares items
        before the structural update.
        """
        return self.summary.insert_stream(stream, batch_size=self.batch_size)

    def _insert_threaded(self, stream: Iterable[StreamEdge]) -> int:
        """Producer/consumer pipeline: hashing in the caller, structural
        updates in a dedicated worker thread (one consumer keeps updates
        sequential, matching the element-level ordering the paper requires).

        A consumer-side exception must not deadlock the producer: the bounded
        queue would fill while the dead consumer never drains it, and the
        producer would block in ``put`` before ever sending the ``None``
        sentinel.  On error the consumer therefore keeps consuming (and
        discarding) items until the sentinel arrives, while the producer
        stops early as soon as it observes the failure flag.
        """
        work: "queue.Queue[Optional[tuple]]" = queue.Queue(maxsize=4 * self.batch_size)
        hasher = self.summary._hasher
        tree = self.summary.tree
        inserted = 0
        errors: List[BaseException] = []
        failed = threading.Event()

        def consumer() -> None:
            nonlocal inserted
            while True:
                item = work.get()
                if item is None:
                    return
                try:
                    fs, fd, hs, hd, weight, timestamp = item
                    tree.insert_hashed(fs, fd, hs, hd, weight, timestamp)
                    inserted += 1
                except BaseException as exc:
                    errors.append(exc)
                    failed.set()
                    # Drain until the sentinel so the producer never blocks
                    # on the bounded queue.
                    while work.get() is not None:
                        pass
                    return

        worker = threading.Thread(target=consumer, name="higgs-aggregator",
                                  daemon=True)
        worker.start()
        for edge in stream:
            if failed.is_set():
                break
            fs, hs = hasher.split(edge.source)
            fd, hd = hasher.split(edge.destination)
            work.put((fs, fd, hs, hd, edge.weight, int(edge.timestamp)))
        work.put(None)
        worker.join()
        if errors:
            raise errors[0]
        return inserted


def insert_stream_parallel(summary: Higgs, stream: GraphStream, *,
                           mode: str = "batched", batch_size: int = 1024) -> int:
    """Convenience wrapper: insert ``stream`` into ``summary`` using the
    requested pipeline mode and return the number of items inserted."""
    return PipelinedInserter(summary, mode=mode, batch_size=batch_size).insert_stream(stream)
