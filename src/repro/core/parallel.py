"""Parallel / pipelined insertion (paper Section IV-C, "Parallelization").

The paper assigns one thread per tree layer: the leaf-layer thread performs
the per-item insert, and upper-layer threads aggregate closed groups in the
background, so stream ingestion is not blocked by aggregation work.

CPython's GIL prevents thread-per-layer from speeding up CPU-bound pure-Python
inserts, so this module provides two modes (the substitution is documented in
DESIGN.md §3):

* ``"threaded"`` — a faithful two-stage pipeline: the caller thread performs
  leaf inserts while a worker thread drains an aggregation queue.  This keeps
  the paper's structure (useful when the aggregation step releases the GIL or
  when running under a GIL-free interpreter) but gives little speed-up here.
  If the consumer thread dies on an exception it drains the remaining queue
  (so the producer can never block forever on the bounded queue) and the
  recorded exception is re-raised in the caller.
* ``"batched"`` — the practical equivalent in CPython: chunks are driven
  through :meth:`Higgs.insert_batch`, whose one-pass hashing and deferred
  upward aggregation capture exactly the benefit the optimization targets
  (decoupling stream ingestion from aggregation).

Both modes produce a structure identical to sequential insertion.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError
from ..streams.edge import GraphStream, StreamEdge
from .executor import QueueWorker
from .higgs import Higgs


class PipelinedInserter:
    """Two-stage insert pipeline over a :class:`Higgs` summary.

    The first stage hashes items and applies leaf-level inserts; the second
    stage (a worker thread in ``"threaded"`` mode, or an inline batch flush in
    ``"batched"`` mode) performs the upward aggregation triggered by closed
    leaves.  Because HIGGS already performs aggregation inside
    ``insert_hashed`` when a leaf closes, the pipeline is realized by chunking
    the stream: chunks are inserted back-to-back while throughput accounting
    separates ingestion from aggregation stalls.
    """

    def __init__(self, summary: Higgs, *, mode: str = "batched",
                 batch_size: int = 1024) -> None:
        if mode not in ("threaded", "batched", "serial"):
            raise ConfigurationError(
                "mode must be 'threaded', 'batched', or 'serial'")
        self.summary = summary
        self.mode = mode
        self.batch_size = max(1, batch_size)

    # ------------------------------------------------------------------ #

    def insert_stream(self, stream: GraphStream | Iterable[StreamEdge]) -> int:
        """Insert every item of ``stream``; returns the number of items inserted."""
        if self.mode == "threaded":
            return self._insert_threaded(stream)
        if self.mode == "batched":
            return self._insert_batched(stream)
        return self._insert_serial(stream)

    def _insert_serial(self, stream: Iterable[StreamEdge]) -> int:
        count = 0
        for edge in stream:
            self.summary.insert(edge.source, edge.destination,
                                edge.weight, edge.timestamp)
            count += 1
        return count

    def _insert_batched(self, stream: Iterable[StreamEdge]) -> int:
        """Insert in pre-hashed batches via :meth:`Higgs.insert_batch`.

        Hashing is hoisted out of the insert loop per batch (with a per-batch
        fingerprint/address memo) and upward aggregation is deferred to batch
        boundaries, mirroring how the paper's leaf-layer thread prepares items
        before the structural update.
        """
        return self.summary.insert_stream(stream, batch_size=self.batch_size)

    def _insert_threaded(self, stream: Iterable[StreamEdge]) -> int:
        """Producer/consumer pipeline: hashing in the caller, structural
        updates in a dedicated worker thread (one consumer keeps updates
        sequential, matching the element-level ordering the paper requires).

        The queue lifecycle — bounded back-pressure, shutdown sentinel, and
        the drain-on-failure guarantee that a dead consumer can never
        deadlock the producer — lives in the shared
        :class:`~repro.core.executor.QueueWorker`; this method only supplies
        the per-item handler and stops producing early once the worker has
        failed.  The worker's first exception is re-raised here.
        """
        hasher = self.summary._hasher
        tree = self.summary.tree
        inserted = 0

        def apply(item: tuple) -> None:
            nonlocal inserted
            fs, fd, hs, hd, weight, timestamp = item
            tree.insert_hashed(fs, fd, hs, hd, weight, timestamp)
            inserted += 1

        worker = QueueWorker(apply, name="higgs-aggregator",
                             maxsize=4 * self.batch_size)
        try:
            for edge in stream:
                if worker.failed:
                    break
                fs, hs = hasher.split(edge.source)
                fd, hd = hasher.split(edge.destination)
                worker.put((fs, fd, hs, hd, edge.weight, int(edge.timestamp)))
        finally:
            # Runs even when the stream iterable itself raises: the sentinel
            # must always be sent or the worker thread would leak, blocked on
            # the queue forever (and its recorded first error would be lost).
            worker.close()
        return inserted


def insert_stream_parallel(summary: Higgs, stream: GraphStream, *,
                           mode: str = "batched", batch_size: int = 1024) -> int:
    """Convenience wrapper: insert ``stream`` into ``summary`` using the
    requested pipeline mode and return the number of items inserted."""
    return PipelinedInserter(summary, mode=mode, batch_size=batch_size).insert_stream(stream)
