"""Packed-edge wire format over shared memory for process shard workers.

Pickling a Python list of :class:`~repro.streams.edge.StreamEdge` objects
into a pipe is the dominant cost of scattering batches to
:class:`~repro.core.executor.ProcessShardWorker` children: every edge pays
object header, per-field pickle opcodes, and a copy on each side.  This
module replaces the payload with a **packed wire format**: the batch's
distinct vertices are indexed once, and the per-edge records (vertex
indices, weight, timestamp) are laid out as a structured numpy array
(:data:`EDGE_DTYPE`) inside a ``multiprocessing.shared_memory`` ring
buffer.  Only a tiny :class:`PackedBatchRef` (segment name, offset, count,
and the vertex table) crosses the pipe; the child maps the records
zero-copy and hands the summary a :class:`PackedEdges` batch, which
:meth:`~repro.core.higgs.Higgs.insert_batch` consumes through its
``packed_arrays()`` fast path without ever materializing edge objects.

Lifecycle
---------
The parent owns one :class:`ShmRingSender` per worker: a single fixed-size
segment carved into FIFO regions, one per in-flight packed batch.  Workers
serve calls in FIFO order, so the oldest live region is exactly the one
whose result arrives next; the parent frees it on every result arrival and
unlinks the whole segment when the worker dies or closes (crash-safe: a
dead child can never hold the segment open on Linux, and the parent's
unlink removes the name immediately).  The child's :class:`ShmRingReceiver`
attaches lazily on the first packed batch, **copies** the records out of
the mapping (so the parent may recycle the region the moment the result is
on the pipe), and detaches on shutdown.

numpy is required on both sides: the parent only packs when
:func:`~repro.core.config.accelerator` is active, and the child falls back
to an error result if it cannot import numpy (a configuration mismatch the
transport tests pin down).  Everything degrades to the pickled-list path —
packing is an optimization, never a semantic change.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from ..errors import ShardingError
from ..streams.edge import StreamEdge, Vertex

#: Per-edge wire record: vertex-table indices, weight, timestamp.
#: 24 bytes per edge, little-endian, alignment-free — the layout is part of
#: the parent/child protocol and must match on both sides (both map the
#: same bytes), which the explicit field types guarantee.
EDGE_DTYPE = [("src", "<i4"), ("dst", "<i4"),
              ("weight", "<f8"), ("timestamp", "<i8")]

#: Bytes per packed edge record (fixed by :data:`EDGE_DTYPE`).
RECORD_BYTES = 24

#: Default ring-buffer capacity per worker.  At 24 bytes/edge this holds
#: ~43k in-flight edges — dozens of engine-sized batches; batches that do
#: not fit fall back to the pickled path rather than blocking.
DEFAULT_RING_BYTES = 1 << 20

#: Batches smaller than this are cheaper to pickle than to pack (the
#: vertex-table indexing pass costs more than the pickle savings).
MIN_PACK_EDGES = 32


def available() -> bool:
    """True when numpy is importable (packing may be attempted)."""
    return np is not None


class PackedEdges:
    """A batch of stream edges in packed (vertex table + records) form.

    Iterating yields :class:`~repro.streams.edge.StreamEdge` objects, so any
    summary accepts a packed batch wherever it accepts an edge list; numpy
    summaries skip that entirely through :meth:`packed_arrays`, which is the
    duck-typed fast path :meth:`repro.core.higgs.Higgs.insert_batch` probes
    for with ``getattr``.
    """

    __slots__ = ("vertices", "records")

    def __init__(self, vertices: Sequence[Vertex], records: "np.ndarray") -> None:
        self.vertices = vertices
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StreamEdge]:
        vertices = self.vertices
        for src, dst, weight, timestamp in self.records.tolist():
            yield StreamEdge(vertices[src], vertices[dst], weight, timestamp)

    def packed_arrays(self) -> Tuple[Sequence[Vertex], "np.ndarray",
                                     "np.ndarray", "np.ndarray", "np.ndarray"]:
        """``(vertices, src_idx, dst_idx, weights, timestamps)`` arrays.

        The contract of the bulk-insert fast path: vertex-table indices per
        edge plus parallel weight/timestamp arrays, in batch order.
        """
        records = self.records
        return (self.vertices, records["src"], records["dst"],
                records["weight"], records["timestamp"])


def pack_edges(edges: Sequence) -> PackedEdges:
    """Pack an edge sequence into a :class:`PackedEdges` batch.

    Raises whatever the edge attributes raise on conversion (``TypeError``
    for unpackable weights, ``OverflowError`` for out-of-range timestamps,
    ...); callers treat any failure as "pickle instead".
    """
    index: Dict[Vertex, int] = {}
    setdefault = index.setdefault
    records = np.empty(len(edges), dtype=EDGE_DTYPE)
    src_col = records["src"]
    dst_col = records["dst"]
    weight_col = records["weight"]
    ts_col = records["timestamp"]
    for position, edge in enumerate(edges):
        src_col[position] = setdefault(edge.source, len(index))
        dst_col[position] = setdefault(edge.destination, len(index))
        weight_col[position] = edge.weight
        ts_col[position] = int(edge.timestamp)
    return PackedEdges(list(index), records)


@dataclass(frozen=True, slots=True)
class PackedBatchRef:
    """Pipe-sized reference to a packed batch living in shared memory.

    Crosses the parent→child pipe in place of the edge list; the child
    resolves it through its :class:`ShmRingReceiver`.  The vertex table
    rides along in the ref (vertex identifiers are arbitrary Python values
    and pickle compactly once per distinct vertex).
    """

    shm_name: str
    offset: int
    count: int
    vertices: Tuple[Vertex, ...]


class ShmRingSender:
    """Parent-side FIFO ring allocator over one shared-memory segment.

    Regions are allocated at :attr:`_head` and freed strictly oldest-first
    (:meth:`free_oldest`), mirroring the FIFO submit/collect protocol of
    :class:`~repro.core.executor.ShardWorker`.  When the live list empties
    the head resets to zero, and an allocation that does not fit contiguously
    before the oldest live region simply fails (the caller falls back to
    pickling) — the ring never blocks and never fragments.
    """

    def __init__(self, name: str, capacity: int = DEFAULT_RING_BYTES) -> None:
        from multiprocessing import shared_memory
        self._shm = shared_memory.SharedMemory(create=True, size=capacity)
        self.capacity = capacity
        self.name = name
        self._head = 0
        self._live: List[Tuple[int, int]] = []
        #: Transport counters surfaced via worker/engine stats.
        self.packed_batches = 0
        self.packed_bytes = 0

    @property
    def shm_name(self) -> str:
        """OS-level name of the segment (what the child attaches to)."""
        return self._shm.name

    @property
    def live_regions(self) -> int:
        """Number of in-flight packed batches currently holding ring space."""
        return len(self._live)

    def send(self, packed: PackedEdges) -> Optional[PackedBatchRef]:
        """Copy a packed batch into the ring; ``None`` when it does not fit."""
        nbytes = packed.records.nbytes
        offset = self._alloc(nbytes)
        if offset is None:
            return None
        view = np.ndarray(len(packed.records), dtype=EDGE_DTYPE,
                          buffer=self._shm.buf, offset=offset)
        view[:] = packed.records
        self.packed_batches += 1
        self.packed_bytes += nbytes
        return PackedBatchRef(self._shm.name, offset, len(packed.records),
                              tuple(packed.vertices))

    def _alloc(self, nbytes: int) -> Optional[int]:
        if nbytes > self.capacity:
            return None
        if not self._live:
            self._head = 0
        tail = self._live[0][0] if self._live else 0
        head = self._head
        if not self._live or head > tail:
            # Free space is [head, capacity) then [0, tail).
            if nbytes <= self.capacity - head:
                offset = head
            elif nbytes < tail:
                offset = 0
            else:
                return None
        else:
            # Free space is [head, tail) only.
            if nbytes > tail - head:
                return None
            offset = head
        self._live.append((offset, nbytes))
        self._head = offset + nbytes
        return offset

    def free_oldest(self) -> None:
        """Release the oldest live region (its result arrived)."""
        if self._live:
            self._live.pop(0)

    def cancel_last(self) -> None:
        """Release the newest live region (its submit never reached the child)."""
        if self._live:
            offset, _nbytes = self._live.pop()
            self._head = offset

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent, crash-safe)."""
        self._live.clear()
        with contextlib.suppress(BufferError, FileNotFoundError, OSError):
            self._shm.close()
        with contextlib.suppress(BufferError, FileNotFoundError, OSError):
            self._shm.unlink()


class ShmRingReceiver:
    """Child-side reader resolving :class:`PackedBatchRef` into batches.

    Attaches to the parent's segment lazily on the first ref and keeps the
    mapping for the worker's lifetime.  Records are **copied** out of the
    mapping — the parent recycles ring regions as soon as results arrive,
    so a zero-copy view could be overwritten while the summary still reads
    it.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}

    def read(self, ref: PackedBatchRef) -> PackedEdges:
        """Materialize a packed batch from its shared-memory reference."""
        if np is None:  # pragma: no cover - parent gates packing on numpy
            raise ShardingError(
                "packed batch received but numpy is not importable in the "
                "shard worker process")
        shm = self._segments.get(ref.shm_name)
        if shm is None:
            from multiprocessing import resource_tracker, shared_memory
            # CPython <3.13 registers attached segments with the resource
            # tracker as if this process owned them (bpo-39959); depending
            # on fork timing the worker's tracker may be its own or shared
            # with the parent, so both unregistering and leaving the
            # registration corrupt someone's bookkeeping.  Suppressing the
            # registration during attach is the one variant that is correct
            # in both topologies: the parent's create/unlink pair stays the
            # sole owner of the segment's lifetime.
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=ref.shm_name)
            finally:
                resource_tracker.register = original_register
            self._segments[ref.shm_name] = shm
        view = np.ndarray(ref.count, dtype=EDGE_DTYPE,
                          buffer=shm.buf, offset=ref.offset)
        return PackedEdges(list(ref.vertices), view.copy())

    def close(self) -> None:
        """Detach from every mapped segment (idempotent)."""
        for shm in self._segments.values():
            with contextlib.suppress(BufferError, OSError):
                shm.close()  # type: ignore[attr-defined]
        self._segments.clear()
