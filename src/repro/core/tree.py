"""The HIGGS tree: an append-only, bottom-up aggregated B-tree of matrices.

Leaves hold timestamped compressed matrices built directly from the arriving
stream; whenever a group of ``θ`` consecutive nodes at one layer is complete,
an aggregated parent node is materialized one layer up (Algorithm 1 + 2).
The tree works on *hashed* items — the public :class:`~repro.core.higgs.Higgs`
class owns the vertex hasher and passes fingerprint/address pairs down.

Timestamps are expected to be non-decreasing across inserts (the natural
order of a stream replay).  Out-of-order inserts are still stored correctly —
every leaf tracks its exact time range — but the structure notes the
violation and the range decomposition then relies only on per-node ranges,
never on positional assumptions.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..errors import InsertionError
from .aggregation import aggregate_internal, aggregate_leaves, lift_coordinates
from .config import HiggsConfig
from .matrix import CompressedMatrix
from .node import InternalNode, LeafNode


class HiggsTree:
    """Container managing the leaf layer and all aggregated layers."""

    def __init__(self, config: HiggsConfig) -> None:
        self.config = config
        self.leaves: List[LeafNode] = []
        #: ``self._internal[k]`` holds the nodes of tree layer ``k + 2``.
        self._internal: List[List[InternalNode]] = []
        #: First timestamp inserted into each leaf (for delete-time lookup).
        self._leaf_first_ts: List[Optional[int]] = []
        self._last_timestamp: Optional[int] = None
        self._monotonic = True
        self._items_inserted = 0

    # ------------------------------------------------------------------ #
    # structure accessors
    # ------------------------------------------------------------------ #

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes (``n1`` in the paper)."""
        return len(self.leaves)

    @property
    def height(self) -> int:
        """Number of layers (leaf layer counts as 1)."""
        return 1 + sum(1 for level_nodes in self._internal if level_nodes)

    @property
    def items_inserted(self) -> int:
        """Total number of stream items inserted so far."""
        return self._items_inserted

    def internal_node(self, level: int, index: int) -> Optional[InternalNode]:
        """Return the materialized internal node at ``(level, index)`` or None.

        ``level`` is the tree layer (2 = parents of leaves).
        """
        slot = level - 2
        if slot < 0 or slot >= len(self._internal):
            return None
        nodes = self._internal[slot]
        if index >= len(nodes):
            return None
        return nodes[index]

    def internal_levels(self) -> List[List[InternalNode]]:
        """All materialized internal layers, bottom-up (layer 2 first)."""
        return self._internal

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    def _current_leaf(self) -> LeafNode:
        if not self.leaves:
            self._open_leaf()
        return self.leaves[-1]

    def _open_leaf(self) -> LeafNode:
        leaf = LeafNode(len(self.leaves), self.config)
        self.leaves.append(leaf)
        self._leaf_first_ts.append(None)
        return leaf

    def insert_hashed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_address: int, dst_address: int, weight: float,
                      timestamp: int) -> None:
        """Insert one hashed stream item, opening new leaves / overflow blocks
        and triggering upward aggregation as needed (Algorithm 1)."""
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            self._monotonic = False
        self._last_timestamp = (timestamp if self._last_timestamp is None
                                else max(self._last_timestamp, timestamp))

        leaf = self._current_leaf()
        if leaf.matrix.insert(src_fingerprint, dst_fingerprint,
                              src_address, dst_address, weight, timestamp):
            self._note_insert(leaf, timestamp)
            return

        if (self.config.enable_overflow_blocks
                and leaf.t_max is not None and timestamp == leaf.t_max):
            self._insert_into_overflow(leaf, src_fingerprint, dst_fingerprint,
                                       src_address, dst_address, weight, timestamp)
            self._note_insert(leaf, timestamp)
            return

        self._close_leaf(leaf)
        new_leaf = self._open_leaf()
        if not new_leaf.matrix.insert(src_fingerprint, dst_fingerprint,
                                      src_address, dst_address, weight, timestamp):
            raise InsertionError("insertion into a freshly opened leaf matrix failed; "
                                 "this indicates an invalid configuration")
        self._note_insert(new_leaf, timestamp)

    def _note_insert(self, leaf: LeafNode, timestamp: int) -> None:
        if self._leaf_first_ts[leaf.index] is None:
            self._leaf_first_ts[leaf.index] = timestamp
        self._items_inserted += 1

    def _insert_into_overflow(self, leaf: LeafNode, src_fingerprint: int,
                              dst_fingerprint: int, src_address: int,
                              dst_address: int, weight: float,
                              timestamp: int) -> None:
        """Place an item into the leaf's overflow-block chain, growing it if needed."""
        for block in leaf.overflow_blocks:
            if block.insert(src_fingerprint, dst_fingerprint,
                            src_address, dst_address, weight, timestamp):
                return
        # Overflow blocks share the leaf matrix dimension so their entries'
        # canonical addresses lift to parent levels exactly like leaf entries;
        # the smaller per-bucket capacity keeps each block lightweight.
        block = CompressedMatrix(
            self.config.leaf_matrix_size, self.config.overflow_block_entries,
            num_probes=self.config.num_probes, store_timestamps=True,
            entry_bytes=self.config.leaf_entry_bytes())
        leaf.overflow_blocks.append(block)
        if not block.insert(src_fingerprint, dst_fingerprint,
                            src_address, dst_address, weight, timestamp):
            raise InsertionError("insertion into a fresh overflow block failed")

    # ------------------------------------------------------------------ #
    # leaf closing and upward aggregation
    # ------------------------------------------------------------------ #

    def _close_leaf(self, leaf: LeafNode) -> None:
        leaf.closed = True
        fanout = self.config.fanout
        if (leaf.index + 1) % fanout != 0:
            return
        group_start = leaf.index + 1 - fanout
        group = self.leaves[group_start:leaf.index + 1]
        parent_index = leaf.index // fanout
        node = aggregate_leaves(parent_index, group, self.config)
        self._append_internal(2, parent_index, node)
        self._maybe_close_internal(2, parent_index)

    def _append_internal(self, level: int, index: int, node: InternalNode) -> None:
        slot = level - 2
        while len(self._internal) <= slot:
            self._internal.append([])
        nodes = self._internal[slot]
        if len(nodes) != index:
            raise InsertionError(
                f"internal node at level {level} materialized out of order: "
                f"expected index {len(nodes)}, got {index}")
        nodes.append(node)

    def _maybe_close_internal(self, level: int, index: int) -> None:
        """Cascade aggregation upward when a group of ``θ`` internal nodes completes."""
        fanout = self.config.fanout
        if (index + 1) % fanout != 0:
            return
        slot = level - 2
        group_start = index + 1 - fanout
        children = self._internal[slot][group_start:index + 1]
        parent_index = index // fanout
        node = aggregate_internal(parent_index, children, self.config)
        self._append_internal(level + 1, parent_index, node)
        self._maybe_close_internal(level + 1, parent_index)

    # ------------------------------------------------------------------ #
    # deletion
    # ------------------------------------------------------------------ #

    def delete_hashed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_address: int, dst_address: int, weight: float,
                      timestamp: int) -> bool:
        """Subtract ``weight`` from the matching leaf entry and every
        materialized ancestor aggregate.  Returns True if a leaf entry matched."""
        leaf = self._find_leaf_for_delete(src_fingerprint, dst_fingerprint,
                                          src_address, dst_address, weight,
                                          timestamp)
        if leaf is None:
            return False
        self._decrement_ancestors(leaf.index, src_fingerprint, dst_fingerprint,
                                  src_address, dst_address, weight)
        return True

    def _candidate_leaf_indices(self, timestamp: int) -> List[int]:
        """Leaf indices whose time range may contain ``timestamp``."""
        n = len(self.leaves)
        if n == 0:
            return []
        if not self._monotonic:
            return [i for i, leaf in enumerate(self.leaves)
                    if leaf.overlaps(timestamp, timestamp)]
        starts = [ts if ts is not None else timestamp for ts in self._leaf_first_ts]
        hi = bisect.bisect_right(starts, timestamp)
        candidates = []
        index = hi - 1
        while index >= 0:
            leaf = self.leaves[index]
            if leaf.t_max is not None and leaf.t_max < timestamp:
                break
            candidates.append(index)
            index -= 1
        return candidates

    def _find_leaf_for_delete(self, src_fingerprint: int, dst_fingerprint: int,
                              src_address: int, dst_address: int, weight: float,
                              timestamp: int) -> Optional[LeafNode]:
        for index in self._candidate_leaf_indices(timestamp):
            leaf = self.leaves[index]
            for matrix in leaf.matrices():
                if matrix.decrement(src_fingerprint, dst_fingerprint,
                                    src_address, dst_address, weight, timestamp):
                    return leaf
        return None

    def _decrement_ancestors(self, leaf_index: int, src_fingerprint: int,
                             dst_fingerprint: int, src_address: int,
                             dst_address: int, weight: float) -> None:
        fanout = self.config.fanout
        group = leaf_index
        for slot, nodes in enumerate(self._internal):
            level = slot + 2
            group //= fanout
            if group >= len(nodes):
                break
            node = nodes[group]
            lifted_fs, lifted_hs = lift_coordinates(src_fingerprint, src_address,
                                                    1, level, self.config)
            lifted_fd, lifted_hd = lift_coordinates(dst_fingerprint, dst_address,
                                                    1, level, self.config)
            node.decrement(lifted_fs, lifted_fd, lifted_hs, lifted_hd, weight)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Analytic footprint of all layers, keys and pointers."""
        total = sum(leaf.memory_bytes(self.config) for leaf in self.leaves)
        for nodes in self._internal:
            total += sum(node.memory_bytes(self.config) for node in nodes)
        return total

    def stats(self) -> Dict[str, object]:
        """Structural statistics used by benchmarks and debugging."""
        leaf_entries = sum(leaf.entry_count() for leaf in self.leaves)
        leaf_capacity = sum(
            sum(m.capacity for m in leaf.matrices()) for leaf in self.leaves)
        overflow_blocks = sum(len(leaf.overflow_blocks) for leaf in self.leaves)
        return {
            "leaf_count": self.leaf_count,
            "height": self.height,
            "items_inserted": self._items_inserted,
            "leaf_entries": leaf_entries,
            "leaf_utilization": (leaf_entries / leaf_capacity) if leaf_capacity else 0.0,
            "overflow_blocks": overflow_blocks,
            "internal_nodes": sum(len(nodes) for nodes in self._internal),
            "memory_bytes": self.memory_bytes(),
            "monotonic": self._monotonic,
        }
