"""The HIGGS tree — an append-only, bottom-up aggregated B-tree of matrices.

This module implements the paper's central data structure.  Leaves hold
timestamped compressed matrices built directly from the arriving stream;
whenever a group of ``θ`` consecutive nodes at one layer is complete, an
aggregated parent node is materialized one layer up (Algorithm 1 + 2).  The
tree operates on *hashed* items throughout: the public
:class:`~repro.core.higgs.Higgs` class owns the vertex hasher and passes
fingerprint/address pairs down, which keeps the structural code independent
of vertex identifier types.

Timestamps are expected to be non-decreasing across inserts (the natural
order of a stream replay).  Out-of-order inserts are still stored correctly —
every leaf tracks its exact time range — but the structure notes the
violation and the range decomposition then relies only on per-node ranges,
never on positional assumptions.

Batch insertion
---------------
:meth:`HiggsTree.insert_hashed_batch` is the bulk counterpart of
:meth:`HiggsTree.insert_hashed`: it applies a pre-hashed batch in one tight
loop and *defers the upward aggregation* of leaf groups that complete
mid-batch to the end of the batch.  Deferral is sound because a completed
group's leaves are closed — no later item of the batch can change them — so
aggregating at batch end builds byte-identical internal nodes.  The tree also
carries a monotonically increasing :attr:`version`, bumped by every mutation,
which query-plan caches use as their invalidation key.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import InsertionError
from . import vectorized
from .aggregation import aggregate_internal, aggregate_leaves, lift_coordinates
from .config import HiggsConfig
from .hashing import probe_address
from .matrix import CompressedMatrix, MatrixEntry
from .node import InternalNode, LeafNode


class HiggsTree:
    """Container managing the leaf layer and all aggregated layers."""

    def __init__(self, config: HiggsConfig) -> None:
        self.config = config
        self.leaves: List[LeafNode] = []
        #: ``self._internal[k]`` holds the nodes of tree layer ``k + 2``.
        self._internal: List[List[InternalNode]] = []
        #: First timestamp inserted into each leaf (for delete-time lookup).
        self._leaf_first_ts: List[Optional[int]] = []
        self._last_timestamp: Optional[int] = None
        self._monotonic = True
        self._items_inserted = 0
        self._version = 0

    # ------------------------------------------------------------------ #
    # structure accessors
    # ------------------------------------------------------------------ #

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes (``n1`` in the paper)."""
        return len(self.leaves)

    @property
    def height(self) -> int:
        """Number of layers (leaf layer counts as 1)."""
        return 1 + sum(1 for level_nodes in self._internal if level_nodes)

    @property
    def items_inserted(self) -> int:
        """Total number of stream items inserted so far."""
        return self._items_inserted

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every insert/delete that may change a
        range decomposition.  Query-plan caches key on it for invalidation."""
        return self._version

    def internal_node(self, level: int, index: int) -> Optional[InternalNode]:
        """Return the materialized internal node at ``(level, index)`` or None.

        ``level`` is the tree layer (2 = parents of leaves).
        """
        slot = level - 2
        if slot < 0 or slot >= len(self._internal):
            return None
        nodes = self._internal[slot]
        if index >= len(nodes):
            return None
        return nodes[index]

    def internal_levels(self) -> List[List[InternalNode]]:
        """All materialized internal layers, bottom-up (layer 2 first)."""
        return self._internal

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    def _current_leaf(self) -> LeafNode:
        if not self.leaves:
            self._open_leaf()
        return self.leaves[-1]

    def _open_leaf(self) -> LeafNode:
        leaf = LeafNode(len(self.leaves), self.config)
        self.leaves.append(leaf)
        self._leaf_first_ts.append(None)
        return leaf

    def insert_hashed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_address: int, dst_address: int, weight: float,
                      timestamp: int) -> None:
        """Insert one hashed stream item, opening new leaves / overflow blocks
        and triggering upward aggregation as needed (Algorithm 1)."""
        self._version += 1
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            self._monotonic = False
        self._last_timestamp = (timestamp if self._last_timestamp is None
                                else max(self._last_timestamp, timestamp))

        leaf = self._current_leaf()
        if leaf.matrix.insert(src_fingerprint, dst_fingerprint,
                              src_address, dst_address, weight, timestamp):
            self._note_insert(leaf, timestamp)
            return

        if (self.config.enable_overflow_blocks
                and leaf.t_max is not None and timestamp == leaf.t_max):
            self._insert_into_overflow(leaf, src_fingerprint, dst_fingerprint,
                                       src_address, dst_address, weight, timestamp)
            self._note_insert(leaf, timestamp)
            return

        self._close_leaf(leaf)
        new_leaf = self._open_leaf()
        if not new_leaf.matrix.insert(src_fingerprint, dst_fingerprint,
                                      src_address, dst_address, weight, timestamp):
            raise InsertionError("insertion into a freshly opened leaf matrix failed; "
                                 "this indicates an invalid configuration")
        self._note_insert(new_leaf, timestamp)

    def _note_insert(self, leaf: LeafNode, timestamp: int) -> None:
        if self._leaf_first_ts[leaf.index] is None:
            self._leaf_first_ts[leaf.index] = timestamp
        self._items_inserted += 1

    def insert_edges_batch(self, edges: Iterable, split) -> int:
        """Fused bulk insert: hash, probe and place a batch of stream edges.

        ``split`` maps a vertex to its ``(fingerprint, address)`` pair (the
        public :class:`~repro.core.higgs.Higgs` passes its hasher's method).
        Each distinct vertex in the batch is hashed once and its leaf-level
        probe rows computed once; the items then flow through the same
        deferred-aggregation loop as :meth:`insert_hashed_batch` without an
        intermediate pre-hashed list.  Returns the number of items inserted.
        """
        size = self.config.leaf_matrix_size
        num_probes = self.config.num_probes
        memo: Dict[object, Tuple[int, Tuple[int, ...]]] = {}
        memo_get = memo.get

        def prepared() -> Iterable[Tuple[int, int, Tuple[int, ...],
                                         Tuple[int, ...], float, int]]:
            for edge in edges:
                source = edge.source
                src = memo_get(source)
                if src is None:
                    fp, addr = split(source)
                    src = memo[source] = (fp, tuple(
                        probe_address(addr, i, fp, size)
                        for i in range(num_probes)))
                destination = edge.destination
                dst = memo_get(destination)
                if dst is None:
                    fp, addr = split(destination)
                    dst = memo[destination] = (fp, tuple(
                        probe_address(addr, i, fp, size)
                        for i in range(num_probes)))
                yield (src[0], dst[0], src[1], dst[1],
                       edge.weight, int(edge.timestamp))

        return self.insert_hashed_batch(prepared())

    def insert_hashed_batch(self, items: Iterable[Tuple[int, int,
                                                        Sequence[int],
                                                        Sequence[int],
                                                        float, int]]) -> int:
        """Insert a batch of pre-hashed items with precomputed probe rows.

        Each item is ``(f(s), f(d), src_probe_rows, dst_probe_rows, w, t)``
        where the probe rows come from
        :meth:`~repro.core.matrix.CompressedMatrix.probe_rows` at the leaf
        dimension (overflow blocks and fresh leaves share that dimension, so
        one sequence per vertex serves the whole batch; reusing one tuple
        per distinct vertex maximizes the placement memo's hit rate, but
        fresh tuples per item are also safe).  Applies
        the same per-item logic as :meth:`insert_hashed` but defers the
        upward aggregation of leaf groups completed during the batch to the
        end, so the leaf-insert loop runs without interleaved aggregation
        work.  The final structure is identical to per-item insertion.
        Returns the number of items inserted.
        """
        config = self.config
        enable_overflow = config.enable_overflow_blocks
        last_ts = self._last_timestamp
        monotonic = self._monotonic
        pending_groups: List[int] = []
        leaf = self._current_leaf()
        matrix_insert = leaf.matrix.insert_probed
        leaf_first_ts = self._leaf_first_ts
        # Placement memo for the *current leaf matrix*: item key → the
        # MatrixEntry holding it.  A repeated key accumulates directly into
        # its entry — bit-identical to the scan, which would find exactly
        # that entry (a matrix holds at most one entry per key).  Probe-row
        # tuples are identified by ``id``; ``memo_alive`` pins every
        # memoized tuple so its id cannot be recycled while the memo lives,
        # which makes id-keying safe even for callers that build fresh
        # tuples per item (distinct live objects always have distinct ids).
        # The memo dies with the leaf: overflow-block placements are never
        # memoized (a later identical item may close the leaf instead once
        # ``t_max`` advances).
        entry_memo: Dict[Tuple[int, int, int], object] = {}
        memo_get = entry_memo.get
        memo_alive: List[object] = []
        leaf_has_first = leaf_first_ts[leaf.index] is not None
        count = 0
        try:
            for fs, fd, src_rows, dst_cols, weight, timestamp in items:
                if last_ts is None:
                    last_ts = timestamp
                elif timestamp < last_ts:
                    monotonic = False
                elif timestamp > last_ts:
                    last_ts = timestamp
                key = (id(src_rows), id(dst_cols), timestamp)
                entry = memo_get(key)
                if entry is not None:
                    entry.weight += weight
                    count += 1
                    continue
                entry = matrix_insert(fs, fd, src_rows, dst_cols,
                                      weight, timestamp)
                if entry is not None:
                    entry_memo[key] = entry
                    memo_alive.append(src_rows)
                    memo_alive.append(dst_cols)
                    if not leaf_has_first:
                        leaf_first_ts[leaf.index] = timestamp
                        leaf_has_first = True
                    count += 1
                    continue
                if (enable_overflow
                        and leaf.t_max is not None and timestamp == leaf.t_max):
                    self._insert_into_overflow_probed(leaf, fs, fd, src_rows,
                                                      dst_cols, weight,
                                                      timestamp)
                    count += 1
                    continue
                leaf.closed = True
                pending_groups.append(leaf.index)
                leaf = self._open_leaf()
                leaf_first_ts = self._leaf_first_ts
                matrix_insert = leaf.matrix.insert_probed
                entry_memo.clear()
                memo_get = entry_memo.get
                memo_alive.clear()
                entry = matrix_insert(fs, fd, src_rows, dst_cols,
                                      weight, timestamp)
                if entry is None:
                    raise InsertionError(
                        "insertion into a freshly opened leaf matrix failed; "
                        "this indicates an invalid configuration")
                entry_memo[key] = entry
                memo_alive.append(src_rows)
                memo_alive.append(dst_cols)
                leaf_first_ts[leaf.index] = timestamp
                leaf_has_first = True
                count += 1
        finally:
            # Runs even when `items` (a caller's generator) or an insert
            # raises mid-batch: account exactly the items applied and
            # aggregate every group completed so far, so the tree stays
            # consistent and query-plan caches invalidate.
            self._last_timestamp = last_ts
            self._monotonic = monotonic
            self._items_inserted += count
            if count or pending_groups:
                # +1 covers a failed item that already mutated the structure
                # (closed a leaf) before raising; version only needs to grow
                # on mutation, not match the per-item count.
                self._version += count + 1
            # Deferred upward aggregation: closed-leaf groups are aggregated
            # in leaf order so internal nodes materialize in the same order
            # as the per-item path (``_append_internal`` enforces this).
            for index in pending_groups:
                self._aggregate_if_group_complete(index)
        return count

    # hot-path
    def insert_hashed_batch_arrays(self, fingerprints, addresses,
                                   src_idx, dst_idx,
                                   weights, timestamps) -> int:
        """Array front-end of :meth:`insert_hashed_batch` (requires numpy).

        ``fingerprints`` / ``addresses`` are per-*distinct-vertex* ``int64``
        arrays (the caller hashed the batch's distinct vertices in one
        vectorized pass, see :meth:`Higgs._hash_indexed`); ``src_idx`` /
        ``dst_idx`` map each batch item to its endpoints' rows.  The
        leaf-level probe sequences are computed vectorized — once per
        distinct vertex, the array analogue of the scalar split memo — and
        one probe tuple is shared by every item touching a vertex, which
        maximizes the placement memo's hit rate downstream.  The prepared
        items then flow through the scalar batch loop, whose placement
        memo, overflow handling, exception contract and accounting make
        the result bit-identical to the pure-Python path by construction.
        """
        config = self.config
        rows = [tuple(row) for row in vectorized.probe_rows_array(
            fingerprints, addresses, config.num_probes,
            config.leaf_matrix_size).tolist()]
        fps = fingerprints.tolist()
        return self.insert_hashed_batch(
            [(fps[s], fps[d], rows[s], rows[d], weight, ts)
             for s, d, weight, ts in zip(
                 src_idx.tolist(), dst_idx.tolist(),
                 weights.tolist(), timestamps.tolist())])

    def _insert_into_overflow(self, leaf: LeafNode, src_fingerprint: int,
                              dst_fingerprint: int, src_address: int,
                              dst_address: int, weight: float,
                              timestamp: int) -> None:
        """Place an item into the leaf's overflow-block chain, growing it if needed."""
        for block in leaf.overflow_blocks:
            if block.insert(src_fingerprint, dst_fingerprint,
                            src_address, dst_address, weight, timestamp):
                return
        # Overflow blocks share the leaf matrix dimension so their entries'
        # canonical addresses lift to parent levels exactly like leaf entries;
        # the smaller per-bucket capacity keeps each block lightweight.
        block = CompressedMatrix(
            self.config.leaf_matrix_size, self.config.overflow_block_entries,
            num_probes=self.config.num_probes, store_timestamps=True,
            entry_bytes=self.config.leaf_entry_bytes())
        leaf.overflow_blocks.append(block)
        if not block.insert(src_fingerprint, dst_fingerprint,
                            src_address, dst_address, weight, timestamp):
            raise InsertionError("insertion into a fresh overflow block failed")

    def _insert_into_overflow_probed(self, leaf: LeafNode, src_fingerprint: int,
                                     dst_fingerprint: int,
                                     src_rows: Sequence[int],
                                     dst_cols: Sequence[int], weight: float,
                                     timestamp: int) -> None:
        """Probed-path twin of :meth:`_insert_into_overflow` (overflow blocks
        share the leaf matrix dimension, so the probe rows carry over)."""
        for block in leaf.overflow_blocks:
            if block.insert_probed(src_fingerprint, dst_fingerprint,
                                   src_rows, dst_cols, weight, timestamp):
                return
        block = CompressedMatrix(
            self.config.leaf_matrix_size, self.config.overflow_block_entries,
            num_probes=self.config.num_probes, store_timestamps=True,
            entry_bytes=self.config.leaf_entry_bytes())
        leaf.overflow_blocks.append(block)
        if not block.insert_probed(src_fingerprint, dst_fingerprint,
                                   src_rows, dst_cols, weight, timestamp):
            raise InsertionError("insertion into a fresh overflow block failed")

    # ------------------------------------------------------------------ #
    # leaf closing and upward aggregation
    # ------------------------------------------------------------------ #

    def _close_leaf(self, leaf: LeafNode) -> None:
        leaf.closed = True
        self._aggregate_if_group_complete(leaf.index)

    def _aggregate_if_group_complete(self, leaf_index: int) -> None:
        """Materialize the parent of the leaf group ending at ``leaf_index``
        (and cascade upward) once all ``θ`` leaves of the group are closed."""
        fanout = self.config.fanout
        if (leaf_index + 1) % fanout != 0:
            return
        group_start = leaf_index + 1 - fanout
        group = self.leaves[group_start:leaf_index + 1]
        parent_index = leaf_index // fanout
        node = aggregate_leaves(parent_index, group, self.config)
        self._append_internal(2, parent_index, node)
        self._maybe_close_internal(2, parent_index)

    def _append_internal(self, level: int, index: int, node: InternalNode) -> None:
        slot = level - 2
        while len(self._internal) <= slot:
            self._internal.append([])
        nodes = self._internal[slot]
        if len(nodes) != index:
            raise InsertionError(
                f"internal node at level {level} materialized out of order: "
                f"expected index {len(nodes)}, got {index}")
        nodes.append(node)

    def _maybe_close_internal(self, level: int, index: int) -> None:
        """Cascade aggregation upward when a group of ``θ`` internal nodes completes."""
        fanout = self.config.fanout
        if (index + 1) % fanout != 0:
            return
        slot = level - 2
        group_start = index + 1 - fanout
        children = self._internal[slot][group_start:index + 1]
        parent_index = index // fanout
        node = aggregate_internal(parent_index, children, self.config)
        self._append_internal(level + 1, parent_index, node)
        self._maybe_close_internal(level + 1, parent_index)

    # ------------------------------------------------------------------ #
    # deletion
    # ------------------------------------------------------------------ #

    def delete_hashed(self, src_fingerprint: int, dst_fingerprint: int,
                      src_address: int, dst_address: int, weight: float,
                      timestamp: int) -> bool:
        """Subtract ``weight`` from the matching leaf entry and every
        materialized ancestor aggregate.  Returns True if a leaf entry matched."""
        leaf = self._find_leaf_for_delete(src_fingerprint, dst_fingerprint,
                                          src_address, dst_address, weight,
                                          timestamp)
        if leaf is None:
            return False
        self._version += 1
        self._decrement_ancestors(leaf.index, src_fingerprint, dst_fingerprint,
                                  src_address, dst_address, weight)
        return True

    def _candidate_leaf_indices(self, timestamp: int) -> List[int]:
        """Leaf indices whose time range may contain ``timestamp``."""
        n = len(self.leaves)
        if n == 0:
            return []
        if not self._monotonic:
            return [i for i, leaf in enumerate(self.leaves)
                    if leaf.overlaps(timestamp, timestamp)]
        starts = [ts if ts is not None else timestamp for ts in self._leaf_first_ts]
        hi = bisect.bisect_right(starts, timestamp)
        candidates = []
        index = hi - 1
        while index >= 0:
            leaf = self.leaves[index]
            if leaf.t_max is not None and leaf.t_max < timestamp:
                break
            candidates.append(index)
            index -= 1
        return candidates

    def _find_leaf_for_delete(self, src_fingerprint: int, dst_fingerprint: int,
                              src_address: int, dst_address: int, weight: float,
                              timestamp: int) -> Optional[LeafNode]:
        for index in self._candidate_leaf_indices(timestamp):
            leaf = self.leaves[index]
            for matrix in leaf.matrices():
                if matrix.decrement(src_fingerprint, dst_fingerprint,
                                    src_address, dst_address, weight, timestamp):
                    return leaf
        return None

    def _decrement_ancestors(self, leaf_index: int, src_fingerprint: int,
                             dst_fingerprint: int, src_address: int,
                             dst_address: int, weight: float) -> None:
        fanout = self.config.fanout
        group = leaf_index
        for slot, nodes in enumerate(self._internal):
            level = slot + 2
            group //= fanout
            if group >= len(nodes):
                break
            node = nodes[group]
            lifted_fs, lifted_hs = lift_coordinates(src_fingerprint, src_address,
                                                    1, level, self.config)
            lifted_fd, lifted_hd = lift_coordinates(dst_fingerprint, dst_address,
                                                    1, level, self.config)
            node.decrement(lifted_fs, lifted_fd, lifted_hs, lifted_hd, weight)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Analytic footprint of all layers, keys and pointers."""
        total = sum(leaf.memory_bytes(self.config) for leaf in self.leaves)
        for nodes in self._internal:
            total += sum(node.memory_bytes(self.config) for node in nodes)
        return total

    def stats(self) -> Dict[str, object]:
        """Structural statistics used by benchmarks and debugging."""
        leaf_entries = sum(leaf.entry_count() for leaf in self.leaves)
        leaf_capacity = sum(
            sum(m.capacity for m in leaf.matrices()) for leaf in self.leaves)
        overflow_blocks = sum(len(leaf.overflow_blocks) for leaf in self.leaves)
        return {
            "leaf_count": self.leaf_count,
            "height": self.height,
            "items_inserted": self._items_inserted,
            "leaf_entries": leaf_entries,
            "leaf_utilization": (leaf_entries / leaf_capacity) if leaf_capacity else 0.0,
            "overflow_blocks": overflow_blocks,
            "internal_nodes": sum(len(nodes) for nodes in self._internal),
            "memory_bytes": self.memory_bytes(),
            "monotonic": self._monotonic,
        }
