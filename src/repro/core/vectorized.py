"""Vectorized (numpy) twins of the scalar hot-path kernels.

Every function in this module reproduces a scalar kernel from
:mod:`repro.core.hashing` / :mod:`repro.core.matrix` /
:mod:`repro.core.aggregation` **bit-identically** over whole arrays: the
same FNV-1a/splitmix64 constants, the same modular probe arithmetic, the
same per-level lift clamping.  numpy is optional — callers select between
the two kernel families through :func:`repro.core.config.accelerator` and
only call into this module when it returns a module; the scalar kernels
remain the always-available fallback (and the reference the property tests
compare against).

The arithmetic is arranged so every intermediate fits in ``int64``/
``uint64`` for the full supported parameter range (fingerprints up to 56
bits, see :class:`~repro.core.hashing.VertexHasher`): products are reduced
mod the matrix size before they grow, and the 64-bit hash runs on unsigned
arrays whose multiplications wrap exactly like the scalar
``& _MASK64`` masking.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from .config import HiggsConfig
from .hashing import hash64

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def available() -> bool:
    """True when numpy is importable (the kernels below may be called)."""
    return np is not None


def _fnv_state(seed: int, count: int) -> "np.ndarray":
    """Initial FNV-1a state per lane, seed-mixed exactly like :func:`hash64`."""
    initial = (_FNV_OFFSET ^ (seed * _GOLDEN)) & _MASK64
    return np.full(count, initial, dtype=np.uint64)


def _finalize(state: "np.ndarray") -> "np.ndarray":
    """splitmix64 finalizer over a lane array (wrapping uint64 arithmetic)."""
    mixed = state + np.uint64(_GOLDEN)
    mixed = (mixed ^ (mixed >> np.uint64(30))) * np.uint64(_MIX1)
    mixed = (mixed ^ (mixed >> np.uint64(27))) * np.uint64(_MIX2)
    return mixed ^ (mixed >> np.uint64(31))


# hot-path
def hash64_array(keys: Sequence[object], seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`repro.core.hashing.hash64` over a key sequence.

    Returns one ``uint64`` hash per key, bit-identical to ``hash64(key,
    seed)`` for every key.  Integer keys within the ``int64`` range run as a
    16-pass byte-wise FNV over a packed lane array (the scalar kernel hashes
    a 16-byte little-endian two's-complement encoding; the low 8 bytes are
    the raw ``int64`` bit pattern, the high 8 a sign extension).  String and
    ``bytes`` keys run over a zero-padded byte matrix with a per-lane length
    mask.  Anything else (wide integers, ``repr``-hashed objects) drops to
    the scalar kernel — such keys are rare and correctness beats speed.
    """
    count = len(keys)
    out = np.zeros(count, dtype=np.uint64)
    int_lanes: List[int] = []
    int_values: List[int] = []
    byte_lanes: List[int] = []
    byte_values: List[bytes] = []
    for lane, key in enumerate(keys):
        if isinstance(key, bytes):
            byte_lanes.append(lane)
            byte_values.append(key)
        elif isinstance(key, str):
            byte_lanes.append(lane)
            byte_values.append(key.encode())
        elif isinstance(key, int) and _INT64_MIN <= key <= _INT64_MAX:
            int_lanes.append(lane)
            int_values.append(key)
        else:
            out[lane] = hash64(key, seed)

    if int_values:
        signed = np.asarray(int_values, dtype=np.int64)
        pattern = signed.view(np.uint64)
        state = _fnv_state(seed, len(int_values))
        prime = np.uint64(_FNV_PRIME)
        low_byte = np.uint64(0xFF)
        for shift in range(0, 64, 8):
            state = (state ^ ((pattern >> np.uint64(shift)) & low_byte)) * prime
        extension = np.where(signed < 0, np.uint64(0xFF), np.uint64(0))
        for _ in range(8):
            state = (state ^ extension) * prime
        out[int_lanes] = _finalize(state)

    if byte_values:
        lengths = np.asarray([len(data) for data in byte_values],
                             dtype=np.int64)
        state = _fnv_state(seed, len(byte_values))
        max_length = int(lengths.max())
        if max_length:
            padded = np.zeros((len(byte_values), max_length), dtype=np.uint8)
            for row, data in enumerate(byte_values):
                if data:
                    padded[row, :len(data)] = np.frombuffer(data,
                                                            dtype=np.uint8)
            prime = np.uint64(_FNV_PRIME)
            for position in range(max_length):
                mixed = (state ^ padded[:, position]) * prime
                state = np.where(position < lengths, mixed, state)
        out[byte_lanes] = _finalize(state)

    return out


def split_array(hashes: "np.ndarray", fingerprint_bits: int,
                matrix_size: int) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized :meth:`~repro.core.hashing.VertexHasher.split`.

    Splits an array of 64-bit hashes into ``(fingerprints, addresses)``
    ``int64`` arrays: ``f = H & (2^F1 - 1)``, ``h = (H >> F1) % d1``.
    """
    fingerprints = (hashes
                    & np.uint64((1 << fingerprint_bits) - 1)).astype(np.int64)
    addresses = ((hashes >> np.uint64(fingerprint_bits))
                 % np.uint64(matrix_size)).astype(np.int64)
    return fingerprints, addresses


def probe_rows_array(fingerprints: "np.ndarray", addresses: "np.ndarray",
                     num_probes: int, size: int) -> "np.ndarray":
    """Vectorized :meth:`~repro.core.matrix.CompressedMatrix.probe_rows`.

    Returns an ``(n, num_probes)`` ``int64`` matrix of candidate addresses.
    The linear-congruential step is reduced mod ``size`` before the
    multiply so every intermediate fits in ``int64`` even for 56-bit
    fingerprints — bit-identical because
    ``(a + i*s) % m == (a + i*(s % m)) % m``.
    """
    steps = (2 * fingerprints + 1) % size
    probes = np.arange(num_probes, dtype=np.int64)
    return (addresses[:, None] + probes[None, :] * steps[:, None]) % size


def lift_array(fingerprints: "np.ndarray", addresses: "np.ndarray",
               from_level: int, to_level: int,
               config: HiggsConfig) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized :func:`~repro.core.aggregation.lift_coordinates`.

    Applies the per-level clamped bit shift to whole coordinate arrays; the
    loop runs over tree levels (a handful), not entries.
    """
    lifted_fps = fingerprints.astype(np.int64, copy=True)
    lifted_addrs = addresses.astype(np.int64, copy=True)
    for level in range(from_level, to_level):
        available_bits = config.fingerprint_bits_at(level)
        shift = min(config.shift_bits, available_bits)
        if shift <= 0:
            continue
        remaining = available_bits - shift
        high_bits = lifted_fps >> remaining
        lifted_fps = lifted_fps & ((1 << remaining) - 1)
        lifted_addrs = (lifted_addrs << shift) | high_bits
    return lifted_fps, lifted_addrs


def candidate_cells_array(src_rows: "np.ndarray",
                          dst_cols: "np.ndarray", size: int) -> "np.ndarray":
    """Flat candidate-bucket indices per item, in probe-scan order.

    ``cells[k, i*r + j] = src_rows[k, i] * size + dst_cols[k, j]`` — exactly
    the ``(i, j)``-ordered scan of
    :meth:`~repro.core.matrix.CompressedMatrix.insert_probed`, precomputed
    for the whole batch so the per-item placement loop only does dict
    lookups.
    """
    count = src_rows.shape[0]
    return (src_rows[:, :, None] * size
            + dst_cols[:, None, :]).reshape(count, -1)


def group_ids(*columns: "np.ndarray") -> "np.ndarray":
    """Dense group id per row over parallel int64 key columns.

    Rows with equal key tuples share an id — the value-based counterpart of
    the tuple-keyed placement memos in the scalar batch paths (an ``int``
    dict key is cheaper to hash than a tuple of five ints).
    """
    stacked = np.column_stack(columns)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    # numpy <2.1 returns the inverse with a trailing unit axis for axis-wise
    # unique; flatten so callers always see one id per row.
    return inverse.reshape(-1)
