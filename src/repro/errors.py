"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class.  Each error keeps enough context in its message to
diagnose the failure without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a summary or workload is constructed with invalid parameters."""


class InsertionError(ReproError):
    """Raised when an edge cannot be inserted into a summary structure.

    Most structures handle overflow internally (e.g. HIGGS opens a new leaf);
    this error signals a bug or a structurally impossible insert such as a
    timestamp that moves backwards when the structure requires monotone time.
    """


class QueryError(ReproError):
    """Raised when a query is malformed (e.g. an empty or inverted time range)."""


class ShardingError(ReproError):
    """Raised when a sharded summary engine fails.

    Covers shard-worker failures during scatter-gather operations (the
    message names the failing shard and the failed operation; the original
    exception is attached as ``__cause__``), dead or unreachable shard
    worker processes, and operations that are unavailable in the configured
    executor mode (e.g. direct access to shard summaries living in worker
    processes).
    """


class SnapshotError(ShardingError):
    """Raised when a shard snapshot cannot be written, read, or trusted.

    Covers torn or corrupt manifests (truncated JSON, checksum mismatch),
    missing or tampered per-shard payload files (the message names the
    offending shard), and snapshots taken without a configured destination.
    Subclasses :class:`ShardingError` so existing engine-level handlers keep
    working, while callers that care can distinguish persistence failures
    from live scatter-gather failures.
    """


class ServingError(ReproError):
    """Raised when the concurrent serving engine cannot serve a request.

    Covers admission rejections under the ``"drop"`` backpressure policy,
    submissions to a closed (or closing) engine, and requests abandoned by
    an engine shutdown.  Failures of the underlying summary (for example a
    :class:`ShardingError` from a scattered write) propagate unchanged
    through the request's future instead.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, parsed, or validated."""


class BenchmarkError(ReproError):
    """Raised when an experiment harness is given an inconsistent specification."""
