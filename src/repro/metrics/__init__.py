"""Evaluation metrics: accuracy (AAE / ARE) and timing (throughput / latency)."""

from .accuracy import (AccuracyReport, accuracy_report, average_absolute_error,
                       average_relative_error)
from .timing import (ThroughputResult, Timer, average_latency_micros,
                     measure_latencies, measure_throughput)

__all__ = [
    "AccuracyReport", "accuracy_report", "average_absolute_error",
    "average_relative_error",
    "ThroughputResult", "Timer", "average_latency_micros",
    "measure_latencies", "measure_throughput",
]
