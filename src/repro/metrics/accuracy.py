"""Accuracy metrics: average absolute error (AAE) and average relative error (ARE).

The paper (Section VI-A, Equation 17) defines, over ``p`` queries with true
values ``f_i`` and estimates ``f̂_i``:

* ``AAE = (1/p) Σ |f_i − f̂_i|``
* ``ARE = (1/p) Σ |f_i − f̂_i| / f_i``

ARE terms with ``f_i = 0`` are skipped (the ratio is undefined); if every
true value is zero the ARE is reported as 0 when all estimates are also exact
and as ``inf`` otherwise, which keeps the metric one-sided-error friendly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import BenchmarkError


@dataclass(frozen=True, slots=True)
class AccuracyReport:
    """Aggregate accuracy of a batch of queries."""

    aae: float
    are: float
    max_absolute_error: float
    exact_fraction: float
    count: int
    underestimates: int

    def is_one_sided(self, tolerance: float = 1e-9) -> bool:
        """True if no query underestimated the truth (within tolerance)."""
        return self.underestimates == 0


def average_absolute_error(truths: Sequence[float],
                           estimates: Sequence[float]) -> float:
    """AAE over paired true values and estimates."""
    _check_lengths(truths, estimates)
    if not truths:
        return 0.0
    return sum(abs(t - e)
               for t, e in zip(truths, estimates, strict=True)) / len(truths)


def average_relative_error(truths: Sequence[float],
                           estimates: Sequence[float]) -> float:
    """ARE over paired true values and estimates (zero-truth terms skipped)."""
    _check_lengths(truths, estimates)
    terms: List[float] = []
    zero_truth_error = False
    for truth, estimate in zip(truths, estimates, strict=True):
        if truth != 0:
            terms.append(abs(truth - estimate) / abs(truth))
        elif estimate != 0:
            zero_truth_error = True
    if terms:
        return sum(terms) / len(terms)
    return math.inf if zero_truth_error else 0.0


def accuracy_report(truths: Sequence[float], estimates: Sequence[float],
                    *, tolerance: float = 1e-9) -> AccuracyReport:
    """Compute the full accuracy summary of one query batch."""
    _check_lengths(truths, estimates)
    count = len(truths)
    if count == 0:
        return AccuracyReport(0.0, 0.0, 0.0, 1.0, 0, 0)
    absolute_errors = [abs(t - e)
                       for t, e in zip(truths, estimates, strict=True)]
    exact = sum(1 for error in absolute_errors if error <= tolerance)
    under = sum(1 for t, e in zip(truths, estimates, strict=True)
                if e < t - tolerance)
    return AccuracyReport(
        aae=sum(absolute_errors) / count,
        are=average_relative_error(truths, estimates),
        max_absolute_error=max(absolute_errors),
        exact_fraction=exact / count,
        count=count,
        underestimates=under,
    )


def _check_lengths(truths: Sequence[float], estimates: Sequence[float]) -> None:
    if len(truths) != len(estimates):
        raise BenchmarkError(
            f"truths ({len(truths)}) and estimates ({len(estimates)}) differ in length")
