"""Timing metrics: throughput, latency, and a simple wall-clock timer.

The paper reports insertion throughput (items per second), per-item insertion
latency, deletion throughput, and average query latency.  These helpers wrap
``time.perf_counter`` so every benchmark measures the same way.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True, slots=True)
class ThroughputResult:
    """Outcome of a timed bulk operation."""

    operations: int
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """Operations per second (0 for an empty run)."""
        if self.elapsed_seconds <= 0:
            return float(self.operations) if self.operations else 0.0
        return self.operations / self.elapsed_seconds

    @property
    def latency_seconds(self) -> float:
        """Average seconds per operation."""
        if self.operations == 0:
            return 0.0
        return self.elapsed_seconds / self.operations

    @property
    def latency_micros(self) -> float:
        """Average microseconds per operation."""
        return self.latency_seconds * 1e6


class Timer:
    """Minimal wall-clock timer based on ``perf_counter``."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


def measure_throughput(operation: Callable[[], None], operations: int) -> ThroughputResult:
    """Time a callable that internally performs ``operations`` operations."""
    start = time.perf_counter()
    operation()
    elapsed = time.perf_counter() - start
    return ThroughputResult(operations=operations, elapsed_seconds=elapsed)


def measure_latencies(callables: Sequence[Callable[[], object]]) -> List[float]:
    """Run each callable once and return per-call wall-clock seconds."""
    latencies = []
    for call in callables:
        start = time.perf_counter()
        call()
        latencies.append(time.perf_counter() - start)
    return latencies


def average_latency_micros(callables: Sequence[Callable[[], object]]) -> float:
    """Average latency of the given calls, in microseconds."""
    latencies = measure_latencies(callables)
    if not latencies:
        return 0.0
    return sum(latencies) / len(latencies) * 1e6
