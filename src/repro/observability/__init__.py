"""Observability layer: metrics registry, exporters, and adaptive control.

This package is the operational window into the serving stack:

* :class:`MetricsRegistry` holds named metric families — :class:`Counter`,
  :class:`Gauge`, and :class:`WindowedHistogram` — with optional labels,
  and renders them two ways: Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`) and a JSON-able snapshot
  (:meth:`MetricsRegistry.snapshot`).
* :class:`SnapshotEmitter` periodically serializes a registry snapshot as a
  structured JSON log line to a pluggable sink (stderr by default), so an
  operator can tail engine health without scraping.
* :class:`AdaptiveEpochController` is the closed-loop controller the
  serving engine uses to widen/narrow its write-epoch coalescing bound
  from admission-queue depth (see
  :class:`~repro.core.config.ServingConfig`).

The serving engine (:class:`~repro.serving.ServingEngine`) and the sharded
engine (:class:`~repro.sharding.ShardedSummary`) both instrument themselves
against a registry — their own private one by default, or a caller-provided
registry when one dashboard should cover both (the ``serve`` benchmark does
this).  :func:`nearest_rank` is the percentile definition shared by every
latency report in the repository.
"""

from .adaptive import AdaptiveEpochController
from .logs import SnapshotEmitter
from .registry import (Counter, Gauge, MetricsRegistry, WindowedHistogram,
                       nearest_rank)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "WindowedHistogram",
    "nearest_rank", "SnapshotEmitter", "AdaptiveEpochController",
]
