"""Closed-loop controller for adaptive write-epoch coalescing.

The serving engine coalesces admitted writes into one ``insert_batch`` epoch
per scheduler round, capped at a maximum epoch size.  That cap is a
latency/throughput dial: small epochs let reads interleave quickly (good
under light load), large epochs amortize per-batch overhead and drain a
backlog fast (good under heavy load).  No fixed setting wins both regimes,
so :class:`AdaptiveEpochController` moves the cap at run time from the one
signal that distinguishes the regimes — admission-queue depth:

* queue depth at or above ``high_fraction`` of capacity → **widen**
  immediately (multiply by ``grow_factor``, clamped to ``max_size``): a
  deep queue means the engine is behind and epoch overhead is the enemy;
* queue depth at or below ``low_fraction`` of capacity for
  ``cooldown_rounds`` *consecutive* observations → **narrow** once
  (multiply by ``shrink_factor``, clamped to ``min_size``): a persistently
  shallow queue means latency, not throughput, is what matters;
* anything in between (or an interrupted low streak) → hold.

Growing reacts instantly while shrinking needs a sustained quiet period —
that asymmetry is the oscillation damping: a bursty workload that
alternates deep and shallow queues settles wide instead of thrashing the
cap every round.  With zero traffic the controller walks down to
``min_size`` and idles there.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class AdaptiveEpochController:
    """Queue-depth-driven controller for the write-epoch size cap.

    Parameters
    ----------
    min_size / max_size:
        Inclusive bounds the epoch cap moves between.
    initial:
        Starting cap; ``None`` starts at ``min_size``.  Clamped into the
        bounds either way.
    grow_factor:
        Multiplier applied when the queue is deep (must be > 1).
    shrink_factor:
        Multiplier applied after a sustained shallow streak (in ``(0, 1)``).
    high_fraction / low_fraction:
        Queue-depth fractions of capacity that trigger growing and count
        toward shrinking; ``0 <= low_fraction < high_fraction <= 1``.
    cooldown_rounds:
        Number of consecutive shallow observations required before one
        shrink step (>= 1) — the damping term.

    The controller is deliberately stateless about time: it observes once
    per scheduler round, so its time constant scales with round rate (busy
    engines adapt faster, idle engines cost nothing).

    Raises
    ------
    ConfigurationError
        On inconsistent bounds, factors, fractions, or cooldown.
    """

    def __init__(self, *, min_size: int, max_size: int,
                 initial: int | None = None,
                 grow_factor: float = 2.0, shrink_factor: float = 0.5,
                 high_fraction: float = 0.5, low_fraction: float = 0.125,
                 cooldown_rounds: int = 3) -> None:
        if min_size < 1:
            raise ConfigurationError("min_size must be >= 1")
        if max_size < min_size:
            raise ConfigurationError(
                f"max_size ({max_size}) must be >= min_size ({min_size})")
        if grow_factor <= 1.0:
            raise ConfigurationError("grow_factor must be > 1")
        if not 0.0 < shrink_factor < 1.0:
            raise ConfigurationError("shrink_factor must be in (0, 1)")
        if not 0.0 <= low_fraction < high_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 <= low_fraction < high_fraction <= 1, got "
                f"low {low_fraction} / high {high_fraction}")
        if cooldown_rounds < 1:
            raise ConfigurationError("cooldown_rounds must be >= 1")
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.grow_factor = float(grow_factor)
        self.shrink_factor = float(shrink_factor)
        self.high_fraction = float(high_fraction)
        self.low_fraction = float(low_fraction)
        self.cooldown_rounds = int(cooldown_rounds)
        start = self.min_size if initial is None else int(initial)
        self._size = min(self.max_size, max(self.min_size, start))
        self._low_streak = 0
        self._adjustments = 0

    @property
    def size(self) -> int:
        """The current epoch-size cap (always within the bounds)."""
        return self._size

    @property
    def adjustments(self) -> int:
        """Number of cap changes made so far (grow and shrink steps)."""
        return self._adjustments

    def observe(self, queue_depth: int, queue_capacity: int) -> int:
        """Feed one queue-depth observation; return the (new) cap.

        ``queue_depth`` is the admission-queue length at round start and
        ``queue_capacity`` its configured bound.  Depths beyond capacity
        (possible transiently around a blocked producer) count as full.
        """
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        fraction = min(1.0, max(0, queue_depth) / queue_capacity)
        if fraction >= self.high_fraction:
            self._low_streak = 0
            widened = min(self.max_size, int(self._size * self.grow_factor))
            if widened != self._size:
                self._size = max(self.min_size, widened)
                self._adjustments += 1
        elif fraction <= self.low_fraction:
            self._low_streak += 1
            if self._low_streak >= self.cooldown_rounds:
                self._low_streak = 0
                narrowed = max(self.min_size, int(self._size * self.shrink_factor))
                if narrowed != self._size:
                    self._size = narrowed
                    self._adjustments += 1
        else:
            self._low_streak = 0
        return self._size
