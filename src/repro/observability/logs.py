"""Structured JSON metric snapshots: periodic log lines to a pluggable sink.

Prometheus exposition answers "scrape me now"; log lines answer "what was
happening at 14:02:31".  :class:`SnapshotEmitter` bridges the two: on a
fixed interval (or on demand) it serializes a
:meth:`~repro.observability.registry.MetricsRegistry.snapshot` as one JSON
object per line — the structured-logging convention every log pipeline
ingests — and hands it to a sink callable.  The default sink writes to
``sys.stderr``; tests pass a list-appending sink, services pass their
logger.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Optional

from ..errors import ConfigurationError
from .registry import MetricsRegistry


def _stderr_sink(line: str) -> None:
    """Default sink: one line to ``sys.stderr`` (looked up per call, so
    test harnesses that swap ``sys.stderr`` capture it)."""
    print(line, file=sys.stderr)


class SnapshotEmitter:
    """Emit a registry snapshot as a JSON log line, periodically or on demand.

    Parameters
    ----------
    registry:
        The :class:`~repro.observability.registry.MetricsRegistry` to
        snapshot.
    sink:
        Callable receiving each rendered line; defaults to ``sys.stderr``.
        The sink runs on the emitter thread — it should be quick.  A sink
        exception is swallowed (there is nowhere left to report it) and
        counted in :attr:`sink_errors` instead of killing the loop.
    interval_s:
        Seconds between periodic emissions once :meth:`start` is called.
    source:
        Free-form identity stamped into every line (e.g. ``"serving"``),
        so one pipeline can multiplex several emitters.
    clock:
        Wall-clock function used for the ``ts`` field (injectable for
        deterministic tests).

    The emitter is a context manager: entering calls :meth:`start`, leaving
    calls :meth:`stop`.  :meth:`emit_once` works with or without the
    background thread.
    """

    def __init__(self, registry: MetricsRegistry,
                 sink: Optional[Callable[[str], None]] = None, *,
                 interval_s: float = 10.0, source: str = "repro",
                 clock: Callable[[], float] = time.time) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self._registry = registry
        self._sink = sink if sink is not None else _stderr_sink
        self.interval_s = float(interval_s)
        self.source = source
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._emitted = 0
        self._sink_errors = 0

    @property
    def emitted(self) -> int:
        """Number of snapshot lines handed to the sink so far."""
        return self._emitted

    @property
    def sink_errors(self) -> int:
        """Number of sink invocations that raised (and were swallowed)."""
        return self._sink_errors

    def emit_once(self) -> str:
        """Build one snapshot line, hand it to the sink, and return it.

        The line is a single JSON object with ``ts`` (epoch seconds),
        ``event`` (always ``"metrics"``), ``source``, and ``metrics`` (the
        registry snapshot), serialized with sorted keys so identical state
        produces identical lines.
        """
        line = json.dumps({
            "ts": round(self._clock(), 6),
            "event": "metrics",
            "source": self.source,
            "metrics": self._registry.snapshot(),
        }, sort_keys=True)
        try:
            self._sink(line)
        # A broken sink must not kill the periodic loop (there is no one
        # left to report to); the failure is counted instead.
        # repro-lint: ok EXC001 - sink failures are counted in sink_errors
        except Exception:  # noqa: BLE001
            self._sink_errors += 1
        self._emitted += 1
        return line

    def start(self) -> None:
        """Start the periodic background emitter (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="metrics-emitter", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the periodic emitter and join its thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.emit_once()

    def __enter__(self) -> "SnapshotEmitter":
        """Context-manager entry: starts the periodic emitter."""
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: stops the periodic emitter."""
        self.stop()
