"""Metric families and the registry that names, renders, and snapshots them.

Three metric kinds cover everything the engines report:

* :class:`Counter` — a monotonically increasing total (requests served,
  epochs committed, drops).
* :class:`Gauge` — a value that goes both ways (queue depth, current epoch
  limit, per-shard item counts); optionally backed by a callback evaluated
  at collection time.
* :class:`WindowedHistogram` — a bounded window of recent observations with
  nearest-rank percentile reporting (latencies, epoch sizes).  Rendered as
  a Prometheus ``summary`` (quantile series plus lifetime ``_count`` and
  ``_sum``).

Families are created through a :class:`MetricsRegistry` and may declare
label names; every ``(label values)`` combination becomes an independent
child series.  All operations are thread-safe, and both render paths are
**stable**: the same metric state renders to byte-identical text regardless
of registration or observation order, so diffs of scraped output are
meaningful.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import (Callable, Deque, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..errors import ConfigurationError

#: The percentile triple reported by every histogram/latency report.
REPORTED_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def nearest_rank(sorted_samples: Iterable[float], percentile: float) -> float:
    """Nearest-rank percentile of pre-sorted samples.

    Uses the classic ceil(p/100 * N) rank definition, so the result is
    always an observed sample (never an interpolation) and p100 is the
    maximum.  Raises ``ValueError`` on an empty sample set or a percentile
    outside ``(0, 100]``.
    """
    samples = list(sorted_samples)
    if not samples:
        # Stdlib-style math helper: ValueError mirrors statistics.quantiles
        # and keeps this function importable without repro.errors.
        # repro-lint: ok ERR001 — see above
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")  # repro-lint: ok ERR001 — same contract as above
    rank = max(1, -(-len(samples) * percentile // 100))  # ceil without math
    return samples[int(rank) - 1]


def _escape_help(text: str) -> str:
    """Escape a HELP line per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labelnames: Sequence[str], values: Sequence[str],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    """Render one ``{a="x",b="y"}`` label block (empty string when bare)."""
    pairs = [(name, value) for name, value in zip(labelnames, values,
                                                  strict=True)]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    """Render a sample value: integers bare, floats via ``repr``."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _MetricFamily:
    """Common machinery of one named metric family with optional labels.

    Children are keyed by their tuple of label values; a family declared
    with no label names has exactly one (anonymous) child.  Subclasses
    define what a child's state is and how it renders.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                 labelnames: Sequence[str] = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ConfigurationError(
                f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ConfigurationError(
                    f"invalid label name {label!r} on metric {name!r}")
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise ConfigurationError(
                f"duplicate label names on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        """Map a ``**labels`` dict onto the family's label-value tuple."""
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    @staticmethod
    def _series_key(key: Tuple[str, ...], labelnames: Tuple[str, ...]) -> str:
        """Flat ``a=x,b=y`` identifier for JSON snapshots (``""`` when bare)."""
        return ",".join(f"{name}={value}"
                        for name, value in zip(labelnames, key, strict=True))

    def render(self) -> List[str]:
        """Render the family's exposition lines (HELP, TYPE, samples)."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self._sample_lines())
        return lines

    def _sample_lines(self) -> List[str]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state: ``{"kind": ..., "values": {series: value}}``."""
        raise NotImplementedError


class Counter(_MetricFamily):
    """A monotonically increasing total (per label-value combination)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the child named by ``labels``."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current total of the child named by ``labels`` (0 when unseen)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _sample_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}"
                f"{_render_labels(self.labelnames, key)} "
                f"{_format_number(value)}"
                for key, value in items]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state: ``{"kind": "counter", "values": {...}}``."""
        with self._lock:
            items = sorted(self._values.items())
        return {"kind": self.kind,
                "values": {self._series_key(key, self.labelnames): value
                           for key, value in items}}


class Gauge(_MetricFamily):
    """A value that can go up and down, or be computed by a callback.

    A child is either *stored* (driven by :meth:`set` / :meth:`inc` /
    :meth:`dec`) or *computed* (:meth:`set_function` installs a callback
    evaluated at collection time); installing a callback replaces the
    stored value and vice versa.  Callbacks run **outside** the family
    lock, so they may take their own locks but must not block indefinitely.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}  # guarded-by: _lock
        self._functions: Dict[Tuple[str, ...],
                              Callable[[], float]] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: str) -> None:
        """Store ``value`` for the child named by ``labels``."""
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (either sign) to the child named by ``labels``."""
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the child named by ``labels``."""
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: str) -> None:
        """Raise the child to ``value`` if it is currently lower.

        A watermark update: used for peak queue depth, where the interesting
        number is the highest level ever observed, not the latest.
        """
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)
            current = self._values.get(key)
            if current is None or value > current:
                self._values[key] = float(value)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Back the child named by ``labels`` with a collection-time callback."""
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)
            self._functions[key] = fn

    def value(self, **labels: str) -> float:
        """Current value of the child named by ``labels`` (0 when unseen)."""
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        return float(fn())

    def _collect(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Stored and computed children, sorted; callbacks run unlocked."""
        with self._lock:
            stored = list(self._values.items())
            computed = list(self._functions.items())
        samples = stored + [(key, float(fn())) for key, fn in computed]
        return sorted(samples)

    def _sample_lines(self) -> List[str]:
        return [f"{self.name}"
                f"{_render_labels(self.labelnames, key)} "
                f"{_format_number(value)}"
                for key, value in self._collect()]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state: ``{"kind": "gauge", "values": {...}}``."""
        return {"kind": self.kind,
                "values": {self._series_key(key, self.labelnames): value
                           for key, value in self._collect()}}


class _HistogramChild:
    """Window, lifetime count, and lifetime sum of one histogram series."""

    __slots__ = ("window", "count", "total")

    def __init__(self, maxlen: int) -> None:
        self.window: Deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0


class WindowedHistogram(_MetricFamily):
    """Bounded sliding-window observations with percentile reporting.

    Keeps the most recent ``window`` observations per child (older samples
    fall off, so a long-running engine reports current — not lifetime —
    behavior) plus lifetime count and sum.  Rendered as a Prometheus
    ``summary``: one ``{quantile="..."}`` series per reported percentile
    over the *window*, and lifetime ``_count`` / ``_sum`` series.
    """

    kind = "summary"

    def __init__(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                 labelnames: Sequence[str] = (), window: int = 65536) -> None:
        super().__init__(name, help, labelnames)
        if window < 1:
            raise ConfigurationError("histogram window must be >= 1")
        self.window = window
        self._children: Dict[Tuple[str, ...],
                             _HistogramChild] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation for the child named by ``labels``."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(self.window)
            child.window.append(float(value))
            child.count += 1
            child.total += value

    def count(self, **labels: str) -> int:
        """Lifetime number of observations of the child named by ``labels``."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return 0 if child is None else child.count

    def report(self, **labels: str) -> Dict[str, float]:
        """p50/p95/p99 and mean over the child's current window.

        Returns an empty dict when the child has no observations, so
        callers can merge reports without special-casing cold series.
        """
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            samples = sorted(child.window) if child is not None else []
        if not samples:
            return {}
        report = {f"p{percentile:g}": nearest_rank(samples, percentile)
                  for percentile in REPORTED_PERCENTILES}
        report["mean"] = sum(samples) / len(samples)
        return report

    def _collect(self) -> List[Tuple[Tuple[str, ...], List[float], int, float]]:
        with self._lock:
            return sorted((key, sorted(child.window), child.count, child.total)
                          for key, child in self._children.items())

    def _sample_lines(self) -> List[str]:
        lines = []
        for key, samples, count, total in self._collect():
            for percentile in REPORTED_PERCENTILES:
                quantile = _format_number(percentile / 100.0) \
                    if percentile != 50.0 else "0.5"
                value = nearest_rank(samples, percentile) if samples else 0.0
                lines.append(
                    f"{self.name}"
                    f"{_render_labels(self.labelnames, key, (('quantile', quantile),))} "
                    f"{_format_number(value)}")
            lines.append(f"{self.name}_count"
                         f"{_render_labels(self.labelnames, key)} {count}")
            lines.append(f"{self.name}_sum"
                         f"{_render_labels(self.labelnames, key)} "
                         f"{_format_number(total)}")
        return lines

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state: per-series count/sum plus window percentiles."""
        values: Dict[str, object] = {}
        for key, samples, count, total in self._collect():
            entry: Dict[str, float] = {"count": float(count), "sum": total}
            if samples:
                for percentile in REPORTED_PERCENTILES:
                    entry[f"p{percentile:g}"] = nearest_rank(samples, percentile)
                entry["mean"] = sum(samples) / len(samples)
            values[self._series_key(key, self.labelnames)] = entry
        return {"kind": self.kind, "values": values}


class MetricsRegistry:
    """A named collection of metric families with two render paths.

    Families are created through :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` (re-registering a name raises
    :class:`~repro.errors.ConfigurationError` — components that share a
    registry must namespace their metrics with distinct prefixes, as the
    serving and sharding engines do).  :meth:`render_prometheus` produces
    the text exposition format; :meth:`snapshot` produces a JSON-able dict
    for structured logging.  Both orders output by metric name and label
    values, so identical state renders identically across runs.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _register(self, family: _MetricFamily) -> _MetricFamily:
        with self._lock:
            if family.name in self._families:
                raise ConfigurationError(
                    f"metric {family.name!r} is already registered")
            self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                labelnames: Sequence[str] = ()) -> Counter:
        """Create and register a :class:`Counter` family."""
        return self._register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str = "",  # noqa: A002 - prometheus term
              labelnames: Sequence[str] = ()) -> Gauge:
        """Create and register a :class:`Gauge` family."""
        return self._register(Gauge(name, help, labelnames))

    def histogram(self, name: str, help: str = "",  # noqa: A002 - prometheus term
                  labelnames: Sequence[str] = (),
                  window: int = 65536) -> WindowedHistogram:
        """Create and register a :class:`WindowedHistogram` family."""
        return self._register(WindowedHistogram(name, help, labelnames,
                                                window=window))

    def get(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> List[str]:
        """Sorted names of every registered family."""
        with self._lock:
            return sorted(self._families)

    def _sorted_families(self) -> List[_MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Families appear sorted by name, each with its ``# HELP`` (when a
        help string was given) and ``# TYPE`` lines followed by its sample
        lines sorted by label values; histograms render as summaries.  The
        output is stable: identical metric state produces byte-identical
        text regardless of registration or observation order.
        """
        lines: List[str] = []
        for family in self._sorted_families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able dump of every family, keyed by metric name.

        The shape is ``{name: {"kind": ..., "values": {series: value}}}``
        where ``series`` is a flat ``label=value`` comma string (empty for
        unlabelled metrics) — ready for ``json.dumps`` without custom
        encoders.
        """
        return {family.name: family.snapshot()
                for family in self._sorted_families()}
