"""Query types, workload generation, and evaluation against ground truth."""

from .types import EdgeQuery, PathQuery, Query, SubgraphQuery, VertexQuery
from .workload import QueryWorkloadGenerator, WorkloadConfig
from .evaluation import EvaluationResult, evaluate_methods, evaluate_queries

__all__ = [
    "EdgeQuery", "PathQuery", "Query", "SubgraphQuery", "VertexQuery",
    "QueryWorkloadGenerator", "WorkloadConfig",
    "EvaluationResult", "evaluate_methods", "evaluate_queries",
]
