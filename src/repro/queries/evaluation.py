"""Query evaluation: run a workload against a summary and the exact store.

This module connects workloads (:mod:`repro.queries.workload`), summaries
(:mod:`repro.summary`) and metrics (:mod:`repro.metrics`) into the evaluation
loop every experiment uses: for each query, obtain the estimate from the
summary under test, the truth from the exact store, the per-query latency,
and finally the aggregate AAE / ARE / latency statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines.exact import ExactTemporalGraph
from ..metrics.accuracy import AccuracyReport, accuracy_report
from ..summary import TemporalGraphSummary
from .types import Query


@dataclass(frozen=True, slots=True)
class EvaluationResult:
    """Accuracy and latency of one (summary, workload) pair."""

    method: str
    accuracy: AccuracyReport
    average_latency_micros: float
    total_queries: int

    @property
    def aae(self) -> float:
        """Average absolute error of the batch."""
        return self.accuracy.aae

    @property
    def are(self) -> float:
        """Average relative error of the batch."""
        return self.accuracy.are


def evaluate_queries(summary: TemporalGraphSummary, queries: Sequence[Query],
                     truth: ExactTemporalGraph, *,
                     use_batch: bool = False) -> EvaluationResult:
    """Evaluate ``queries`` on ``summary`` against the exact ``truth`` store.

    With ``use_batch=True`` the estimates are obtained from one
    ``summary.query_batch`` call (timed as a whole, latency amortized per
    query); estimates are bit-identical to the per-item path by the batch-API
    contract, so accuracy metrics do not depend on this flag.
    """
    estimates: List[float] = []
    truths: List[float] = []
    if use_batch:
        start = time.perf_counter()
        estimates = list(summary.query_batch(queries))
        elapsed = time.perf_counter() - start
        truths = [query.evaluate(truth) for query in queries]
    else:
        elapsed = 0.0
        for query in queries:
            start = time.perf_counter()
            estimates.append(query.evaluate(summary))
            elapsed += time.perf_counter() - start
            truths.append(query.evaluate(truth))
    report = accuracy_report(truths, estimates)
    average_latency = (elapsed / len(queries) * 1e6) if queries else 0.0
    return EvaluationResult(method=summary.name, accuracy=report,
                            average_latency_micros=average_latency,
                            total_queries=len(queries))


def evaluate_methods(summaries: Sequence[TemporalGraphSummary],
                     queries: Sequence[Query],
                     truth: ExactTemporalGraph) -> List[EvaluationResult]:
    """Evaluate the same workload on several summaries (one result per method)."""
    return [evaluate_queries(summary, queries, truth) for summary in summaries]
