"""Query type definitions used by workloads and the evaluation harness.

The paper's TRQ primitives (Definition 2) are edge and vertex queries over a
temporal range; path and subgraph queries are composites built from edge
queries.  Each query object knows how to evaluate itself against any
:class:`~repro.summary.TemporalGraphSummary`, which keeps the evaluation
harness method-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..streams.edge import Vertex
from ..summary import TemporalGraphSummary


@dataclass(frozen=True, slots=True)
class EdgeQuery:
    """Aggregated weight of ``source → destination`` within ``[t_start, t_end]``."""

    source: Vertex
    destination: Vertex
    t_start: int
    t_end: int

    def evaluate(self, summary: TemporalGraphSummary) -> float:
        return summary.edge_query(self.source, self.destination,
                                  self.t_start, self.t_end)


@dataclass(frozen=True, slots=True)
class VertexQuery:
    """Aggregated weight of a vertex's outgoing/incoming edges within a range."""

    vertex: Vertex
    t_start: int
    t_end: int
    direction: str = "out"

    def evaluate(self, summary: TemporalGraphSummary) -> float:
        return summary.vertex_query(self.vertex, self.t_start, self.t_end,
                                    direction=self.direction)


@dataclass(frozen=True, slots=True)
class PathQuery:
    """Aggregated weight along a vertex path within a range."""

    path: Tuple[Vertex, ...]
    t_start: int
    t_end: int

    @property
    def hops(self) -> int:
        """Number of edges in the path."""
        return len(self.path) - 1

    def evaluate(self, summary: TemporalGraphSummary) -> float:
        return summary.path_query(self.path, self.t_start, self.t_end)


@dataclass(frozen=True, slots=True)
class SubgraphQuery:
    """Aggregated weight of a set of edges within a range."""

    edges: Tuple[Tuple[Vertex, Vertex], ...]
    t_start: int
    t_end: int

    @property
    def size(self) -> int:
        """Number of edges in the queried subgraph."""
        return len(self.edges)

    def evaluate(self, summary: TemporalGraphSummary) -> float:
        return summary.subgraph_query(self.edges, self.t_start, self.t_end)


Query = EdgeQuery | VertexQuery | PathQuery | SubgraphQuery
