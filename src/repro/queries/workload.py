"""Query workload generation (paper Section VI-A).

The paper evaluates each method with randomly generated query workloads:

* edge / vertex queries whose temporal range length ``Lq`` is swept over
  orders of magnitude, anchored at random positions of the stream's lifetime;
* path queries with 1-7 hops, obtained by random walks over the observed
  graph;
* subgraph queries of 50-350 edges, obtained by sampling connected edge sets.

Workloads are generated from the *stream itself* so that a controlled
fraction of the queried items actually exists (queries over never-seen edges
have a true value of zero, which makes ARE undefined; the paper's ARE plots
imply mostly-existing queries).

Batched workloads
-----------------
The throughput experiments drive summaries through the bulk
``query_batch`` API, so the generator can also emit *batched* workloads:
:meth:`QueryWorkloadGenerator.batched` chunks any query list, and
:meth:`QueryWorkloadGenerator.repeated_range_edge_queries` draws the query
ranges from a small set of distinct ranges — the repeated-range shape of the
paper's Figs. 10-13 sweeps that query-plan caches exploit.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..streams.edge import GraphStream, Vertex
from .types import EdgeQuery, PathQuery, SubgraphQuery, VertexQuery


@dataclass(slots=True)
class WorkloadConfig:
    """Knobs shared by all workload generators."""

    seed: int = 42
    #: Fraction of queries targeting edges/vertices that occur in the stream.
    existing_fraction: float = 0.9


class QueryWorkloadGenerator:
    """Generates reproducible query workloads from a graph stream."""

    def __init__(self, stream: GraphStream,
                 config: Optional[WorkloadConfig] = None) -> None:
        if len(stream) == 0:
            raise ConfigurationError("cannot build a workload from an empty stream")
        self.stream = stream
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self._edges: List[Tuple[Vertex, Vertex]] = sorted(stream.distinct_edges())
        self._vertices: List[Vertex] = sorted(stream.vertices())
        self._adjacency: Dict[Vertex, List[Vertex]] = defaultdict(list)
        for source, destination in self._edges:
            self._adjacency[source].append(destination)
        self._t_min, self._t_max = stream.time_span

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _random_range(self, length: int) -> Tuple[int, int]:
        """A random range of the requested length clamped to the stream span."""
        span = self._t_max - self._t_min
        length = max(1, min(length, span + 1))
        start_max = self._t_max - length + 1
        start = self._rng.randint(self._t_min, max(self._t_min, start_max))
        return start, start + length - 1

    def _pick_edge(self) -> Tuple[Vertex, Vertex]:
        if self._rng.random() < self.config.existing_fraction:
            return self._rng.choice(self._edges)
        return (self._rng.choice(self._vertices), self._rng.choice(self._vertices))

    def _pick_vertex(self) -> Vertex:
        if self._rng.random() < self.config.existing_fraction:
            return self._rng.choice(self._vertices)
        return f"__absent_{self._rng.randint(0, 10**9)}"

    # ------------------------------------------------------------------ #
    # workload builders
    # ------------------------------------------------------------------ #

    def edge_queries(self, count: int, range_length: int) -> List[EdgeQuery]:
        """``count`` edge queries with temporal ranges of ``range_length`` units."""
        queries = []
        for _ in range(count):
            source, destination = self._pick_edge()
            t_start, t_end = self._random_range(range_length)
            queries.append(EdgeQuery(source, destination, t_start, t_end))
        return queries

    @staticmethod
    def batched(queries: Sequence, batch_size: int) -> List[List]:
        """Chunk any query list into batches of at most ``batch_size``."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        return [list(queries[i:i + batch_size])
                for i in range(0, len(queries), batch_size)]

    def edge_query_batches(self, count: int, range_length: int,
                           batch_size: int) -> List[List[EdgeQuery]]:
        """``count`` edge queries chunked into batches of ``batch_size``."""
        return self.batched(self.edge_queries(count, range_length), batch_size)

    def vertex_query_batches(self, count: int, range_length: int,
                             batch_size: int,
                             direction: str = "out") -> List[List[VertexQuery]]:
        """``count`` vertex queries chunked into batches of ``batch_size``."""
        return self.batched(self.vertex_queries(count, range_length,
                                                direction=direction), batch_size)

    def repeated_range_edge_queries(self, count: int, range_length: int,
                                    distinct_ranges: int) -> List[EdgeQuery]:
        """``count`` edge queries whose ranges repeat from a small pool.

        Draws ``distinct_ranges`` random ranges of ``range_length`` units and
        assigns each query one of them round-robin — the repeated-range
        workload shape that exercises query-plan caching.
        """
        if distinct_ranges < 1:
            raise ConfigurationError("distinct_ranges must be >= 1")
        ranges = [self._random_range(range_length) for _ in range(distinct_ranges)]
        queries = []
        for i in range(count):
            source, destination = self._pick_edge()
            t_start, t_end = ranges[i % distinct_ranges]
            queries.append(EdgeQuery(source, destination, t_start, t_end))
        return queries

    def vertex_queries(self, count: int, range_length: int,
                       direction: str = "out") -> List[VertexQuery]:
        """``count`` vertex queries with temporal ranges of ``range_length`` units."""
        queries = []
        for _ in range(count):
            vertex = self._pick_vertex()
            t_start, t_end = self._random_range(range_length)
            queries.append(VertexQuery(vertex, t_start, t_end, direction))
        return queries

    def path_queries(self, count: int, hops: int,
                     range_length: int) -> List[PathQuery]:
        """``count`` path queries of ``hops`` edges via random walks.

        Walks follow observed adjacency where possible and fall back to random
        vertices when a walk dead-ends, matching how real workloads mix
        existing and non-existing path segments.
        """
        if hops < 1:
            raise ConfigurationError("path queries need at least one hop")
        queries = []
        for _ in range(count):
            start = self._rng.choice(self._vertices)
            path = [start]
            current = start
            for _ in range(hops):
                neighbors = self._adjacency.get(current)
                current = self._rng.choice(neighbors) if neighbors \
                    else self._rng.choice(self._vertices)
                path.append(current)
            t_start, t_end = self._random_range(range_length)
            queries.append(PathQuery(tuple(path), t_start, t_end))
        return queries

    def subgraph_queries(self, count: int, size: int,
                         range_length: int) -> List[SubgraphQuery]:
        """``count`` subgraph queries of ``size`` edges each.

        Subgraphs are grown from a random seed edge by repeatedly adding edges
        incident to the current vertex set, falling back to random edges when
        the frontier is exhausted — this yields mostly-connected edge sets as
        in the paper's workloads.
        """
        if size < 1:
            raise ConfigurationError("subgraph queries need at least one edge")
        by_source: Dict[Vertex, List[Tuple[Vertex, Vertex]]] = defaultdict(list)
        for edge in self._edges:
            by_source[edge[0]].append(edge)
        queries = []
        for _ in range(count):
            chosen: Set[Tuple[Vertex, Vertex]] = set()
            frontier: List[Vertex] = []
            seed_edge = self._rng.choice(self._edges)
            chosen.add(seed_edge)
            frontier.extend(seed_edge)
            while len(chosen) < size:
                grown = False
                self._rng.shuffle(frontier)
                for vertex in frontier:
                    for edge in by_source.get(vertex, ()):
                        if edge not in chosen:
                            chosen.add(edge)
                            frontier.append(edge[1])
                            grown = True
                            break
                    if grown:
                        break
                if not grown:
                    extra = self._rng.choice(self._edges)
                    if extra in chosen:
                        extra = (self._rng.choice(self._vertices),
                                 self._rng.choice(self._vertices))
                    chosen.add(extra)
                    frontier.append(extra[1])
            t_start, t_end = self._random_range(range_length)
            queries.append(SubgraphQuery(tuple(sorted(chosen)), t_start, t_end))
        return queries
