"""Concurrent serving layer: mixed read/write traffic over one summary.

This package turns a passive :class:`~repro.summary.TemporalGraphSummary`
into a served system:

* :class:`ServingEngine` multiplexes many client threads through a bounded
  admission queue onto one summary, coalescing writes into
  ``insert_batch`` epochs and reads into ``query_batch`` rounds, with an
  epoch barrier between them so no read ever observes a torn mid-batch
  shard state,
* :class:`ServingFuture` is the per-request completion handle (and latency
  probe) clients wait on,
* :class:`LatencyTracker` keeps the sliding-window p50/p95/p99 latency
  report the engine's :meth:`~ServingEngine.stats` exposes.

Configuration (queue bound, block/drop backpressure, coalescing limits)
lives in :class:`~repro.core.config.ServingConfig`; the mixed-workload
generator that drives the ``serve`` benchmark lives in
:mod:`repro.streams.generators`.
"""

from ..core.config import SERVING_ADMISSION_POLICIES, ServingConfig
from .engine import ServingEngine
from .metrics import LatencyTracker, nearest_rank
from .requests import (MAINTENANCE, READ, WRITE, MaintenanceRequest,
                       ReadRequest, ServingFuture, WriteRequest)

__all__ = [
    "ServingEngine", "ServingConfig", "SERVING_ADMISSION_POLICIES",
    "ServingFuture", "ReadRequest", "WriteRequest", "MaintenanceRequest",
    "READ", "WRITE", "MAINTENANCE", "LatencyTracker", "nearest_rank",
]
