"""The concurrent serving engine: mixed read/write traffic over one summary.

:class:`ServingEngine` multiplexes many client threads onto a single
:class:`~repro.summary.TemporalGraphSummary` (typically a
:class:`~repro.sharding.ShardedSummary`) through a bounded admission queue
and a single scheduler thread.  The request lifecycle is::

    admission ──► coalesce ──► epoch commit ──► collect/answer
    (bounded       (writes →      (insert_batch      (futures
     queue,         one batch;     across all         resolved,
     block/drop     reads → one    shards, barrier    latencies
     policy)        query_batch)   before reads)      recorded)

**Epoch-based read/write interleaving.**  Each scheduler round drains a
contiguous prefix of the admission queue and splits it into a write set and
a read set.  The writes are coalesced into one ``insert_batch`` — submitted
through the engine's :meth:`~repro.sharding.ShardedSummary.insert_batch_async`
submit-without-collect path when the summary offers one, and resolved as the
epoch barrier — so the entire write epoch is applied on *every* shard before
any read of the round is issued.  Reads therefore always observe a
prefix-consistent state: the summary exactly as it was after some whole
number of committed write epochs, never a torn mid-batch state where one
shard has applied a write its sibling has not (the epoch-consistency stress
test enforces this against the Exact baseline).

**Backpressure.**  The admission queue is bounded
(:attr:`~repro.core.config.ServingConfig.max_pending`); at capacity the
``"block"`` policy parks the submitting client while ``"drop"`` rejects with
:class:`~repro.errors.ServingError`, so an open-loop overload degrades into
explicit rejections instead of unbounded queueing latency.

**Observability.**  The engine instruments itself against a
:class:`~repro.observability.MetricsRegistry` (its own private one by
default, or a caller-provided registry when one dashboard should cover the
engine and its sharded summary together): queue depth and peak, in-flight
requests, the current epoch-size cap, per-kind request/drop/failure
counters, epoch/read-round size histograms, and the per-request
admission-to-completion latency summary.  :meth:`ServingEngine.render_prometheus`
exposes everything in Prometheus text format; :meth:`ServingEngine.stats`
keeps its dict report for programmatic callers.

**Adaptive epoch sizing.**  With
:attr:`~repro.core.config.ServingConfig.adaptive_epochs` on, the per-epoch
write-coalescing cap is no longer the fixed ``max_batch_writes`` but a
closed-loop value an :class:`~repro.observability.AdaptiveEpochController`
moves between ``min_epoch_size`` and ``max_epoch_size`` from admission-queue
depth: wide while a backlog is standing (amortize per-epoch overhead, drain
fast), narrow once the queue stays shallow (let reads interleave quickly).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

from ..core.config import ServingConfig
from ..errors import ServingError
from ..observability import AdaptiveEpochController, MetricsRegistry
from ..streams.edge import StreamEdge
from ..summary import TemporalGraphSummary
from .metrics import LatencyTracker
from .requests import (MaintenanceRequest, ReadRequest, ServingFuture,
                       WriteRequest)

_Request = Union[WriteRequest, ReadRequest, MaintenanceRequest]


class ServingEngine:
    """Serve concurrent reads and writes over one temporal graph summary.

    Parameters
    ----------
    summary:
        The summary all traffic targets.  Any
        :class:`~repro.summary.TemporalGraphSummary` works; a
        :class:`~repro.sharding.ShardedSummary` additionally gets its write
        epochs submitted through the shard workers' submit-without-collect
        path.  The engine never closes the summary — it stays caller-owned.
    config:
        Queue bound, backpressure policy, coalescing limits, adaptive
        epoch-sizing knobs
        (:class:`~repro.core.config.ServingConfig`); ``None`` uses defaults.
    registry:
        The :class:`~repro.observability.MetricsRegistry` the engine
        registers its ``serving_*`` metrics in; ``None`` creates a private
        registry (exposed via :attr:`metrics`).  Pass a shared registry to
        scrape the engine and its sharded summary from one endpoint.

    Notes
    -----
    The engine is a context manager; leaving the ``with`` block (or calling
    :meth:`close`) drains every admitted request and stops the scheduler.
    All public methods are thread-safe.

    **Failed epochs.**  When a write epoch fails (e.g. a
    :class:`~repro.errors.ShardingError` from a partial shard failure), the
    round's write futures carry the original error and the round's read
    futures fail with :class:`~repro.errors.ServingError` — the post-failure
    state matches no whole-epoch prefix, so serving those reads would be a
    torn read.  The engine keeps serving afterwards (mirroring
    :class:`~repro.sharding.ShardedSummary`'s partial-failure semantics,
    which keep acknowledged counts consistent), but reads after a partial
    shard failure observe that degraded state; callers needing strict
    consistency should treat a failed write epoch as a signal to rebuild.
    """

    def __init__(self, summary: TemporalGraphSummary,
                 config: Optional[ServingConfig] = None, *,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._summary = summary
        self.config = config or ServingConfig()
        self._pending: Deque[_Request] = deque()  # guarded-by: _state
        self._inflight = 0  # guarded-by: _state
        self._lock = threading.Lock()
        self._state = threading.Condition(self._lock)
        self._closing = False  # guarded-by: _state
        self._epochs = 0
        self._edges_inserted = 0
        self._writes_served = 0
        self._reads_served = 0
        self._dropped = 0
        self._failed = 0
        self._registry = registry if registry is not None else MetricsRegistry()
        self._latency = LatencyTracker(self.config.latency_window,
                                       registry=self._registry)
        self._controller: Optional[AdaptiveEpochController] = None
        if self.config.adaptive_epochs:
            self._controller = AdaptiveEpochController(
                min_size=self.config.min_epoch_size,
                max_size=self.config.max_epoch_size,
                grow_factor=self.config.epoch_grow_factor,
                shrink_factor=self.config.epoch_shrink_factor,
                high_fraction=self.config.queue_high_fraction,
                low_fraction=self.config.queue_low_fraction,
                cooldown_rounds=self.config.epoch_cooldown_rounds)
        # The effective write-epoch cap of the *next* round: the controller's
        # current size when adaptive, the fixed config bound otherwise.
        self._epoch_limit = self._effective_epoch_limit()
        self._init_metrics()
        self._scheduler = threading.Thread(target=self._loop,
                                           name="serving-scheduler", daemon=True)
        self._scheduler.start()

    def _effective_epoch_limit(self) -> int:
        """The write-epoch edge cap currently in force."""
        if self._controller is None:
            return self.config.max_batch_writes
        return min(self.config.max_batch_writes, self._controller.size)

    def _init_metrics(self) -> None:
        """Register the engine's ``serving_*`` families in its registry."""
        registry = self._registry
        # Depth and in-flight are computed at collection time so a scrape is
        # always current; len() on a deque and an int read are atomic in
        # CPython, so the callbacks take no lock.
        self._metric_queue_depth = registry.gauge(
            "serving_queue_depth",
            "Admitted requests waiting in the admission queue.")
        self._metric_queue_depth.set_function(
            # repro-lint: ok CONC002 - racy-read gauge; len(deque) is atomic
            lambda: float(len(self._pending)))
        self._metric_queue_peak = registry.gauge(
            "serving_queue_depth_peak",
            "Highest admission-queue depth observed so far.")
        self._metric_queue_peak.set(0.0)
        self._metric_inflight = registry.gauge(
            "serving_inflight",
            "Requests admitted but not yet resolved (queued or being served).")
        self._metric_inflight.set_function(
            # repro-lint: ok CONC002 - racy-read gauge; int read is atomic
            lambda: float(self._inflight))
        self._metric_epoch_limit = registry.gauge(
            "serving_epoch_limit",
            "Write-epoch edge cap currently in force (moves when adaptive "
            "epoch sizing is enabled).")
        self._metric_epoch_limit.set(float(self._epoch_limit))
        self._metric_requests = registry.counter(
            "serving_requests_total",
            "Requests admitted, by request kind.", labelnames=("kind",))
        self._metric_epochs = registry.counter(
            "serving_epochs_total", "Write epochs committed.")
        self._metric_edges = registry.counter(
            "serving_edges_inserted_total",
            "Edges acknowledged by committed write epochs.")
        self._metric_dropped = registry.counter(
            "serving_dropped_total",
            "Requests rejected at admission under the drop policy.")
        self._metric_failed = registry.counter(
            "serving_failed_total",
            "Requests resolved with an error (failed epochs, aborted reads).")
        self._metric_maintenance = registry.counter(
            "serving_maintenance_total", "Maintenance rounds executed.")
        self._metric_epoch_edges = registry.histogram(
            "serving_epoch_edges",
            "Edges coalesced per committed write epoch.", window=4096)
        self._metric_round_reads = registry.histogram(
            "serving_round_reads",
            "Queries coalesced per read round.", window=4096)

    # ------------------------------------------------------------------ #
    # client-facing API
    # ------------------------------------------------------------------ #

    def submit_write(self, edges: Union[StreamEdge, Iterable]) -> ServingFuture:
        """Admit a write of one stream item (or a batch of items).

        Accepts a single :class:`~repro.streams.edge.StreamEdge`, a
        ``(source, destination, weight, timestamp)`` tuple, or an iterable
        of either.  Returns a future resolving to the number of items
        acknowledged for *this* request once its epoch commits.

        Raises
        ------
        ServingError
            When the engine is closed, or immediately under the ``"drop"``
            policy when the admission queue is full.
        """
        request = WriteRequest(self._normalize_edges(edges))
        self._admit(request)
        return request.future

    def submit_query(self, query: Any) -> ServingFuture:
        """Admit a read: any query object implementing ``evaluate(summary)``.

        The temporal range of the query (when it exposes ``t_start`` /
        ``t_end``) is validated at admission, so a malformed request is
        rejected synchronously instead of poisoning the read round it would
        have been coalesced into.  Returns a future resolving to the
        estimate.

        Raises
        ------
        QueryError
            On a malformed temporal range.
        ServingError
            When the engine is closed, or immediately under the ``"drop"``
            policy when the admission queue is full.
        """
        t_start = getattr(query, "t_start", None)
        t_end = getattr(query, "t_end", None)
        if t_start is not None and t_end is not None:
            self._summary.check_range(t_start, t_end)
        request = ReadRequest(query)
        self._admit(request)
        return request.future

    def run_maintenance(self, fn: Any) -> ServingFuture:
        """Admit a maintenance operation to run between epochs.

        ``fn(summary)`` executes on the scheduler thread as a round of its
        own: every earlier admitted request has been served (its epoch
        committed, its reads answered) and no later request starts until
        ``fn`` returns.  That exclusivity is what makes in-place summary
        surgery — :meth:`~repro.sharding.ShardedSummary.snapshot`,
        :meth:`~repro.sharding.ShardedSummary.migrate_shard`,
        :meth:`~repro.sharding.ShardedSummary.rebalance` — safe under
        concurrent traffic: clients never observe a torn mid-migration
        state, only the summary before or after the operation.

        Returns a future resolving to ``fn``'s return value; an exception
        raised by ``fn`` fails the future and the engine keeps serving.

        Raises
        ------
        ServingError
            When the engine is closed, or immediately under the ``"drop"``
            policy when the admission queue is full.
        """
        request = MaintenanceRequest(fn)
        self._admit(request)
        return request.future

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has been resolved.

        Returns ``True`` when the engine went idle, ``False`` when
        ``timeout`` seconds elapsed first.
        """
        with self._state:
            return self._state.wait_for(lambda: self._inflight == 0, timeout)

    def close(self) -> None:
        """Drain admitted requests, stop the scheduler, reject new traffic.

        Idempotent.  Requests admitted before the close are still served
        (graceful drain); submissions after it raise
        :class:`~repro.errors.ServingError`.  The underlying summary is left
        open — it belongs to the caller.
        """
        with self._state:
            if self._closing:
                closing_thread = None
            else:
                self._closing = True
                closing_thread = self._scheduler
            self._state.notify_all()
        if closing_thread is not None:
            closing_thread.join()

    def __enter__(self) -> "ServingEngine":
        """Context-manager entry: returns the engine itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: drains and closes the engine."""
        self.close()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """Number of committed write epochs."""
        return self._epochs

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding the engine's ``serving_*`` metric families."""
        return self._registry

    def render_prometheus(self) -> str:
        """The engine's metrics in Prometheus text exposition format.

        Renders the whole registry — including any co-registered families,
        such as a shared sharded summary's ``sharding_*`` metrics — so one
        scrape covers the full serving stack.
        """
        return self._registry.render_prometheus()

    def latency_percentiles(self, kind: str) -> Dict[str, float]:
        """p50/p95/p99 (and mean) latency of ``kind`` (``"read"``/``"write"``)."""
        return self._latency.percentiles(kind)

    def stats(self) -> Dict[str, object]:
        """Engine counters plus the per-kind latency report."""
        with self._state:
            pending = len(self._pending)
            inflight = self._inflight
        return {
            "epochs": self._epochs,
            "edges_inserted": self._edges_inserted,
            "writes_served": self._writes_served,
            "reads_served": self._reads_served,
            "dropped": self._dropped,
            "failed": self._failed,
            "pending": pending,
            "inflight": inflight,
            "epoch_limit": self._epoch_limit,
            "latency": self._latency.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    @staticmethod
    def _normalize_edges(edges: Union[StreamEdge, Iterable]) -> List[StreamEdge]:
        """Coerce a write payload into a non-empty list of stream items."""
        if isinstance(edges, StreamEdge):
            return [edges]
        # The payload is caller-supplied; a malformed item must surface as
        # ServingError, not a bare ValueError/TypeError (ERR002).
        try:
            if isinstance(edges, tuple) and len(edges) == 4 and \
                    not isinstance(edges[0], StreamEdge):
                source, destination, weight, timestamp = edges
                return [StreamEdge(source, destination,
                                   float(weight), int(timestamp))]
            normalized: List[StreamEdge] = []
            for item in edges:
                if isinstance(item, StreamEdge):
                    normalized.append(item)
                else:
                    source, destination, weight, timestamp = item
                    normalized.append(StreamEdge(source, destination,
                                                 float(weight), int(timestamp)))
        except (TypeError, ValueError) as exc:
            raise ServingError(
                f"malformed stream item in write payload: {exc}") from exc
        if not normalized:
            raise ServingError("a write request needs at least one stream item")
        return normalized

    def _admit(self, request: _Request) -> None:
        """Apply the backpressure policy and enqueue one request."""
        with self._state:
            if self._closing:
                raise ServingError("submit on a closed serving engine")
            if len(self._pending) >= self.config.max_pending:
                if self.config.admission == "drop":
                    self._dropped += 1
                    self._metric_dropped.inc()
                    raise ServingError(
                        f"admission queue full ({self.config.max_pending} "
                        f"pending); request dropped")
                self._state.wait_for(
                    lambda: self._closing or
                    len(self._pending) < self.config.max_pending)
                if self._closing:
                    raise ServingError("serving engine closed while blocked "
                                       "on admission")
            # The future was stamped at submission, so reported latency
            # includes any time spent blocked here — a saturated engine
            # must not hide its admission wait from the percentiles.
            self._pending.append(request)
            self._inflight += 1
            self._metric_queue_peak.set_max(float(len(self._pending)))
            self._metric_requests.inc(kind=request.future.kind)
            self._state.notify_all()

    # ------------------------------------------------------------------ #
    # scheduler
    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while True:
            round_requests = self._next_round()
            if round_requests is None:
                return
            try:
                self._serve_round(round_requests)
            except BaseException as exc:  # noqa: BLE001 - scheduler backstop
                # An unexpected scheduler error must not kill the thread:
                # that would strand every in-flight and future request.
                # Fail the round's unresolved futures and keep serving.
                unresolved = [r for r in round_requests if not r.future.done]
                if unresolved:
                    self._finish(unresolved, error=ServingError(
                        f"round aborted by a scheduler error: {exc!r}"))

    def _next_round(self) -> Optional[List[_Request]]:
        """Drain one coalescable prefix of the queue (or ``None`` to stop).

        With adaptive epoch sizing on, the round starts by feeding the
        queue depth into the controller (pure arithmetic, safe under
        ``_state``); the resulting cap bounds this round's write
        coalescing in place of the fixed ``max_batch_writes``.
        """
        with self._state:
            while not self._pending:
                if self._closing:
                    return None
                self._state.wait(self.config.poll_interval_s)
            if self._controller is not None:
                self._controller.observe(len(self._pending),
                                         self.config.max_pending)
                self._epoch_limit = self._effective_epoch_limit()
            epoch_limit = self._epoch_limit
            picked: List[_Request] = []
            write_edges = 0
            reads = 0
            while self._pending:
                request = self._pending[0]
                if isinstance(request, MaintenanceRequest):
                    # Maintenance runs as its own round: close the current
                    # round before it, and never coalesce anything after it.
                    if picked:
                        break
                    picked.append(self._pending.popleft())
                    break
                if isinstance(request, WriteRequest):
                    if picked and write_edges + len(request.edges) > \
                            epoch_limit:
                        break
                    write_edges += len(request.edges)
                else:
                    if reads >= self.config.max_batch_reads:
                        break
                    reads += 1
                picked.append(self._pending.popleft())
            self._state.notify_all()
        self._metric_epoch_limit.set(float(epoch_limit))
        return picked

    def _serve_round(self, round_requests: List[_Request]) -> None:
        """Commit the round's write epoch, then answer the round's reads.

        A failed epoch aborts the round's reads with
        :class:`~repro.errors.ServingError`: a partial shard failure leaves
        the summary in a state that matches no whole-epoch prefix, and
        serving it would be exactly the torn read the engine promises never
        to produce.
        """
        if len(round_requests) == 1 and \
                isinstance(round_requests[0], MaintenanceRequest):
            self._run_maintenance_round(round_requests[0])
            return
        writes = [r for r in round_requests if isinstance(r, WriteRequest)]
        reads = [r for r in round_requests if isinstance(r, ReadRequest)]
        epoch_error = self._commit_epoch(writes) if writes else None
        if not reads:
            return
        if epoch_error is not None:
            self._finish(reads, error=ServingError(
                f"read round aborted: its write epoch failed "
                f"({epoch_error})"))
            return
        self._answer_reads(reads)

    def _run_maintenance_round(self, request: MaintenanceRequest) -> None:
        """Execute one maintenance callable with the engine to itself.

        Runs on the scheduler thread between epochs — the previous round's
        barrier has passed and no other request is in flight — so the
        callable has exclusive use of the summary.  Its exception (if any)
        fails only its own future; the engine keeps serving.
        """
        try:
            value = request.fn(self._summary)
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            self._finish([request], error=exc)
            return
        self._metric_maintenance.inc()
        self._finish([request], values=[value])

    def _commit_epoch(self, writes: List[WriteRequest]) -> Optional[BaseException]:
        """Apply the round's writes as one batch; return the failure, if any.

        The batch is fully applied (on every shard, for sharded summaries)
        before this method returns without error — that is the epoch
        barrier the round's reads rely on.  Over a sharded summary the
        epoch goes through the submit-without-collect path and resolving
        the returned handle is that barrier, made explicit.
        """
        edges: List[StreamEdge] = []
        for request in writes:
            edges.extend(request.edges)
        try:
            submit_async = getattr(self._summary, "insert_batch_async", None)
            if submit_async is not None:
                pending = submit_async(edges)
                inserted = pending.result() if pending is not None else 0
            else:
                inserted = self._summary.insert_batch(edges)
        except BaseException as exc:  # noqa: BLE001 - delivered via futures
            self._finish(writes, error=exc)
            return exc
        self._epochs += 1
        self._edges_inserted += inserted
        self._writes_served += len(writes)
        self._metric_epochs.inc()
        self._metric_edges.inc(inserted)
        self._metric_epoch_edges.observe(float(len(edges)))
        self._finish(writes, values=[len(r.edges) for r in writes])
        return None

    def _answer_reads(self, reads: List[ReadRequest]) -> None:
        """Answer the round's reads in one coalesced ``query_batch``."""
        try:
            answers = self._summary.query_batch([r.query for r in reads])
            if len(answers) != len(reads):
                raise ServingError(
                    f"summary.query_batch returned {len(answers)} answers "
                    f"for {len(reads)} queries")
        except BaseException as exc:  # noqa: BLE001 - delivered via futures
            self._finish(reads, error=exc)
            return
        self._reads_served += len(reads)
        self._metric_round_reads.observe(float(len(reads)))
        self._finish(reads, values=answers)

    def _finish(self, requests: List[_Request], *,
                values: Optional[List[Any]] = None,
                error: Optional[BaseException] = None) -> None:
        """Resolve a round's futures, record latencies, release admission."""
        for index, request in enumerate(requests):
            if error is not None:
                request.future._resolve(error=error)
            else:
                request.future._resolve(values[index])
            latency = request.future.latency_s
            if latency is not None:
                self._latency.record(request.future.kind, latency)
        if error is not None:
            self._failed += len(requests)
            self._metric_failed.inc(len(requests))
        with self._state:
            self._inflight -= len(requests)
            self._state.notify_all()
