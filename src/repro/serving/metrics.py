"""Per-request latency accounting for the serving engine.

The engine records one admission-to-completion latency sample per served
request, split by request kind (read / write / maintenance).  Since the
observability layer landed, the tracker is a thin façade over a
:class:`~repro.observability.WindowedHistogram` family labelled by request
kind — the same series the engine's Prometheus endpoint exposes as
``serving_latency_seconds{kind=...}`` — so ``stats()`` consumers and metric
scrapers read one source of truth.  :func:`nearest_rank` (the percentile
definition) lives in :mod:`repro.observability` and is re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..observability import MetricsRegistry, WindowedHistogram, nearest_rank
from ..observability.registry import REPORTED_PERCENTILES

__all__ = ["LatencyTracker", "nearest_rank", "REPORTED_PERCENTILES"]


class LatencyTracker:
    """Bounded sliding-window latency samples with percentile reporting.

    Parameters
    ----------
    window:
        Number of most-recent samples kept per request kind; older samples
        fall off so a long-running engine reports current, not lifetime,
        latency.
    registry:
        The :class:`~repro.observability.MetricsRegistry` to register the
        backing ``serving_latency_seconds`` histogram in; ``None`` uses a
        private registry (standalone trackers keep working unchanged).

    The tracker is thread-safe; the engine records from its scheduler thread
    while clients read snapshots concurrently.
    """

    #: Name of the histogram family backing every tracker.
    METRIC_NAME = "serving_latency_seconds"

    def __init__(self, window: int = 65536,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self._histogram: WindowedHistogram = registry.histogram(
            self.METRIC_NAME,
            "Admission-to-completion request latency by request kind.",
            labelnames=("kind",), window=window)

    def record(self, kind: str, seconds: float) -> None:
        """Record one latency sample for request ``kind``."""
        self._histogram.observe(seconds, kind=kind)

    def count(self, kind: str) -> int:
        """Lifetime number of samples recorded for ``kind``."""
        return self._histogram.count(kind=kind)

    def percentiles(self, kind: str) -> Dict[str, float]:
        """p50/p95/p99 (and mean) over the current window of ``kind``.

        Returns an empty dict when no sample of ``kind`` was recorded, so
        callers can merge the report without special-casing cold kinds.
        """
        return self._histogram.report(kind=kind)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Full report: per-kind counts, means, and percentile triples."""
        report: Dict[str, Dict[str, float]] = {}
        for series, entry in self._histogram.snapshot()["values"].items():
            kind = str(series).split("=", 1)[1]
            kind_report = dict(self.percentiles(kind))
            kind_report["count"] = entry["count"]
            report[kind] = kind_report
        return report
