"""Per-request latency accounting for the serving engine.

The engine records one admission-to-completion latency sample per served
request, split by request kind (read / write).  The tracker keeps a bounded
window of recent samples per kind and reports nearest-rank percentiles —
the p50/p95/p99 triple every serving benchmark and dashboard leads with.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterable, Tuple

from ..errors import ConfigurationError

#: The percentile triple reported by :meth:`LatencyTracker.percentiles`.
REPORTED_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def nearest_rank(sorted_samples: Iterable[float], percentile: float) -> float:
    """Nearest-rank percentile of pre-sorted samples.

    Uses the classic ceil(p/100 * N) rank definition, so the result is
    always an observed sample (never an interpolation) and p100 is the
    maximum.  Raises ``ValueError`` on an empty sample set or a percentile
    outside ``(0, 100]``.
    """
    samples = list(sorted_samples)
    if not samples:
        # Stdlib-style math helper: ValueError mirrors statistics.quantiles
        # and keeps this function importable without repro.errors.
        # repro-lint: ok ERR001 — see above
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")  # repro-lint: ok ERR001 — same contract as above
    rank = max(1, -(-len(samples) * percentile // 100))  # ceil without math
    return samples[int(rank) - 1]


class LatencyTracker:
    """Bounded sliding-window latency samples with percentile reporting.

    Parameters
    ----------
    window:
        Number of most-recent samples kept per request kind; older samples
        fall off so a long-running engine reports current, not lifetime,
        latency.

    The tracker is thread-safe; the engine records from its scheduler thread
    while clients read snapshots concurrently.
    """

    def __init__(self, window: int = 65536) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._window = window
        self._samples: Dict[str, Deque[float]] = {}  # guarded-by: _lock
        self._counts: Dict[str, int] = {}  # guarded-by: _lock
        self._total_seconds: Dict[str, float] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def record(self, kind: str, seconds: float) -> None:
        """Record one latency sample for request ``kind``."""
        with self._lock:
            bucket = self._samples.get(kind)
            if bucket is None:
                bucket = self._samples[kind] = deque(maxlen=self._window)
                self._counts[kind] = 0
                self._total_seconds[kind] = 0.0
            bucket.append(seconds)
            self._counts[kind] += 1
            self._total_seconds[kind] += seconds

    def count(self, kind: str) -> int:
        """Lifetime number of samples recorded for ``kind``."""
        with self._lock:
            return self._counts.get(kind, 0)

    def percentiles(self, kind: str) -> Dict[str, float]:
        """p50/p95/p99 (and mean) over the current window of ``kind``.

        Returns an empty dict when no sample of ``kind`` was recorded, so
        callers can merge the report without special-casing cold kinds.
        """
        with self._lock:
            samples = sorted(self._samples.get(kind, ()))
        if not samples:
            return {}
        report = {f"p{percentile:g}": nearest_rank(samples, percentile)
                  for percentile in REPORTED_PERCENTILES}
        report["mean"] = sum(samples) / len(samples)
        return report

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Full report: per-kind counts, means, and percentile triples."""
        with self._lock:
            kinds = list(self._samples)
        report: Dict[str, Dict[str, float]] = {}
        for kind in kinds:
            entry = self.percentiles(kind)
            entry["count"] = float(self.count(kind))
            report[kind] = entry
        return report
