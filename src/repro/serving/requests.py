"""Request and future types exchanged between clients and the serving engine.

Clients submit work to the :class:`~repro.serving.ServingEngine` and
immediately receive a :class:`ServingFuture`; the scheduler thread resolves
it once the request's epoch commits (writes) or its read round completes
(queries).  The future doubles as the per-request latency probe: it stamps
admission and completion times, and the engine feeds the difference into its
percentile tracker.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import ServingError
from ..streams.edge import StreamEdge

#: Request kinds tracked separately by the latency report.
WRITE = "write"
READ = "read"
MAINTENANCE = "maintenance"


class ServingFuture:
    """Completion handle for one admitted serving request.

    The engine resolves each future exactly once, with either a value (the
    acknowledged edge count for writes, the estimate for reads) or an
    exception.  Futures are thread-safe: any number of client threads may
    :meth:`wait` on one.
    """

    __slots__ = ("kind", "enqueued_at", "completed_at", "_event", "_value",
                 "_error")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        #: Monotonic submission timestamp.  Latency is measured from here,
        #: so time spent blocked at a full admission queue counts toward
        #: the request's reported percentiles.
        self.enqueued_at: float = time.perf_counter()
        #: Monotonic completion timestamp (``None`` while pending).
        self.completed_at: Optional[float] = None
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """True once the request completed (successfully or not)."""
        return self._event.is_set()

    @property
    def latency_s(self) -> Optional[float]:
        """Admission-to-completion latency in seconds; ``None`` while pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the request completes; return its value.

        Raises
        ------
        ServingError
            When ``timeout`` seconds elapse before completion.
        BaseException
            Whatever error failed the request (re-raised unchanged).
        """
        if not self._event.wait(timeout):
            raise ServingError(
                f"timed out after {timeout}s waiting for a {self.kind} request")
        if self._error is not None:
            raise self._error
        return self._value

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until completion (or ``timeout``); return :attr:`done`."""
        return self._event.wait(timeout)

    def _resolve(self, value: Any = None,
                 error: Optional[BaseException] = None) -> None:
        """Complete the future (engine-internal; first resolution wins)."""
        if self._event.is_set():  # pragma: no cover - defensive
            return
        self._value = value
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()


@dataclass(slots=True)
class WriteRequest:
    """One admitted write: a list of stream items and its future."""

    edges: List[StreamEdge]
    future: ServingFuture = field(default_factory=lambda: ServingFuture(WRITE))


@dataclass(slots=True)
class ReadRequest:
    """One admitted read: a query object (``evaluate`` protocol) and its future."""

    query: Any
    future: ServingFuture = field(default_factory=lambda: ServingFuture(READ))


@dataclass(slots=True)
class MaintenanceRequest:
    """One admitted maintenance operation: a callable and its future.

    The scheduler runs ``fn(summary)`` on the scheduler thread as its *own*
    round — after the previous round's epoch barrier, before the next
    round's writes — so the callable observes (and may replace parts of)
    the summary with no request in flight.  This is how snapshots and live
    shard migrations run under concurrent serving traffic (see
    :meth:`~repro.serving.ServingEngine.run_maintenance`).
    """

    fn: Callable[[Any], Any]
    future: ServingFuture = field(
        default_factory=lambda: ServingFuture(MAINTENANCE))
