"""Sharded ingestion and querying on top of the batch substrate.

This package scales any :class:`~repro.summary.TemporalGraphSummary` out
across ``N`` hash-partitioned shards:

* :class:`ShardPartitioner` assigns stream items to shards by a stable hash
  of the partition key (source vertex, or the whole edge),
* :class:`ShardedSummary` is the engine: it routes inserts and deletes to
  owning shards, drives per-shard ingestion through each summary's native
  ``insert_batch`` fast path (serially, on worker threads, or on worker
  processes), and answers edge / vertex / path / subgraph queries by
  scatter-gather with an exact sum-merge,
* :class:`HiggsShardFactory` is the picklable default factory building one
  HIGGS summary per shard.

The worker machinery (inline / thread / process execution with a uniform
submit-collect protocol) lives in :mod:`repro.core.executor` and is shared
with the pipelined inserter.
"""

from .engine import HiggsShardFactory, PendingBatch, ShardedSummary
from .partition import PARTITION_MODES, ShardPartitioner

__all__ = [
    "HiggsShardFactory", "PendingBatch", "ShardedSummary", "ShardPartitioner",
    "PARTITION_MODES",
]
