"""Sharded ingestion and querying on top of the batch substrate.

This package scales any :class:`~repro.summary.TemporalGraphSummary` out
across ``N`` hash-partitioned shards:

* :class:`ShardPartitioner` assigns stream items to shards by a stable hash
  of the partition key (source vertex, or the whole edge),
* :class:`ShardedSummary` is the engine: it routes inserts and deletes to
  owning shards, drives per-shard ingestion through each summary's native
  ``insert_batch`` fast path (serially, on worker threads, or on worker
  processes), and answers edge / vertex / path / subgraph queries by
  scatter-gather with an exact sum-merge,
* :class:`HiggsShardFactory` is the picklable default factory building one
  HIGGS summary per shard,
* elasticity: :meth:`ShardedSummary.snapshot` /
  :meth:`ShardedSummary.restore` persist and rebuild the whole engine
  through the checksummed on-disk format in :mod:`repro.sharding.snapshot`,
  :class:`RebalancePlan` + :meth:`ShardedSummary.rebalance` move hot keys
  and live shards, and :meth:`ShardedSummary.recover_dead_shards` rebuilds
  crashed workers from the last snapshot with a bounded loss.

The worker machinery (inline / thread / process execution with a uniform
submit-collect protocol) lives in :mod:`repro.core.executor` and is shared
with the pipelined inserter.
"""

from ..core.config import SnapshotConfig
from ..errors import SnapshotError
from .engine import (HiggsShardFactory, PendingBatch, RebalancePlan,
                     ShardedSummary)
from .partition import PARTITION_MODES, ShardPartitioner

__all__ = [
    "HiggsShardFactory", "PendingBatch", "RebalancePlan", "ShardedSummary",
    "ShardPartitioner", "PARTITION_MODES", "SnapshotConfig", "SnapshotError",
]
