"""The sharded summary engine: scatter-gather over independent summaries.

:class:`ShardedSummary` hash-partitions an edge stream across ``N``
independent inner summaries (HIGGS by default, any
:class:`~repro.summary.TemporalGraphSummary` via a factory) and presents the
union as one summary implementing the same interface:

* **Ingestion** routes every item to the shard owning its partition key;
  batches are split once and driven through each shard's native
  ``insert_batch`` fast path, concurrently when the executor allows it.
* **Queries** route to a single shard when the partition key pins the answer
  there (edge queries always; outgoing vertex queries under source
  partitioning) and scatter-gather otherwise: each involved shard answers
  over its slice and the engine sums the per-shard estimates.  Summing is
  exact because the shards partition the stream — every stream item is
  counted by exactly one shard.
* **Accounting** (``memory_bytes``, per-shard item counts) aggregates over
  shards.

With ``num_shards == 1`` the engine is a pass-through wrapper: every item
and every query reaches the single inner summary in the original order, so
results are bit-identical to using the inner summary directly (tests enforce
this).

**Elasticity.**  The engine is not welded to its initial worker layout:
:meth:`ShardedSummary.snapshot` persists every shard plus a checksummed
manifest to disk and :meth:`ShardedSummary.restore` rebuilds a bit-identical
engine from it; :meth:`ShardedSummary.migrate_shard` and
:meth:`ShardedSummary.rebalance` move live shard state across workers (and
hot keys across shards) behind the same quiesce/drain barrier the serving
layer uses; and a dead process worker is rebuilt from the last snapshot by
:meth:`ShardedSummary.recover_dead_shards`, losing at most the edges that
shard acknowledged *after* the snapshot (see ARCHITECTURE.md, "Elastic
sharding & recovery").
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import (SHARD_EXECUTORS, HiggsConfig, ShardingConfig,
                           SnapshotConfig)
from ..core.executor import (LOAD_OP, SERIALIZE_OP, ShardResult, ShardWorker,
                             make_shard_worker, resolve_executor)
from ..core.higgs import Higgs
from ..errors import QueryError, ShardingError, SnapshotError
from ..observability import MetricsRegistry
from ..streams.edge import GraphStream, StreamEdge, Vertex
from ..summary import TemporalGraphSummary
from . import snapshot as snapshot_format
from .partition import ShardPartitioner


class HiggsShardFactory:
    """Picklable factory building one HIGGS summary per shard.

    Process-mode shard workers rebuild their summary inside the child
    process, so the factory must survive pickling — lambdas and closures do
    not.  This class does: it carries only the (frozen, picklable)
    :class:`~repro.core.config.HiggsConfig`.

    Parameters
    ----------
    config:
        Configuration applied to every shard's summary; ``None`` uses the
        paper's default configuration.
    """

    def __init__(self, config: Optional[HiggsConfig] = None) -> None:
        self.config = config

    def __call__(self) -> Higgs:
        """Build one fresh :class:`~repro.core.higgs.Higgs` summary."""
        return Higgs(self.config)


@dataclass(frozen=True)
class RebalancePlan:
    """Declarative description of one rebalancing step.

    Attributes
    ----------
    reassign:
        Vertex → target-shard overrides installed in the partitioner so the
        vertices' *future* edges land on the target shard (``"source"``
        partitioning only; already-inserted edges stay put and reads union
        the owner history — see
        :meth:`~repro.sharding.partition.ShardPartitioner.reassign`).
    migrate:
        Shard index → executor mode: each named shard's live summary is
        serialized and moved onto a fresh worker of that mode (e.g. promote
        a hot shard from ``"thread"`` to ``"process"``).

    Both mappings may be empty; :meth:`ShardedSummary.rebalance` validates
    every entry before touching any state.
    """

    reassign: Mapping[Vertex, int] = field(default_factory=dict)
    migrate: Mapping[int, str] = field(default_factory=dict)


class PendingBatch:
    """Handle to an :meth:`ShardedSummary.insert_batch_async` in flight.

    Holds the shard order of the submitted sub-batches; :meth:`result`
    gathers the per-shard acknowledgements with exactly the semantics of the
    synchronous :meth:`~ShardedSummary.insert_batch` (all shards finish,
    counts recorded, :class:`~repro.errors.ShardingError` on any failure).

    The handle must be resolved exactly once, and no other engine operation
    may run between submission and resolution — the submit/collect protocol
    pairs results by order, so an interleaved call would collect this
    batch's results.  The engine enforces this: every other operation
    (including :meth:`~ShardedSummary.quiesce`) raises
    :class:`~repro.errors.ShardingError` while a handle is unresolved.  The
    serving engine is the intended caller: it submits each write epoch
    through this path and resolves the handle as the explicit epoch barrier
    before issuing the round's reads; callers with epoch-local bookkeeping
    can do it between submission and the barrier.
    """

    def __init__(self, engine: "ShardedSummary", shard_order: List[int]) -> None:
        self._engine = engine
        self._shard_order = shard_order
        self._resolved = False

    def result(self) -> int:
        """Gather every shard's acknowledgement; return the inserted count.

        Raises
        ------
        ShardingError
            When any shard's sub-batch failed (after all shards finished and
            successful counts were recorded), or when the handle was already
            resolved.
        """
        if self._resolved:
            raise ShardingError("insert_batch_async handle already resolved")
        self._resolved = True
        self._engine._pending_async = None
        return self._engine._finish_insert_batch(
            {shard: self._engine._workers[shard].collect()
             for shard in self._shard_order})


class ShardedSummary(TemporalGraphSummary):
    """A :class:`~repro.summary.TemporalGraphSummary` sharded across workers.

    Parameters
    ----------
    factory:
        Zero-argument callable building one inner summary per shard.
        Defaults to :class:`HiggsShardFactory` with the paper's default
        configuration.  Must be picklable when ``executor="process"``.
    shards:
        Number of shards; overrides ``config.num_shards`` when given.
    config:
        Full engine configuration (:class:`~repro.core.config.ShardingConfig`);
        individual keyword arguments below override its fields.
    partition_by:
        ``"source"`` (default) or ``"edge"`` — see
        :class:`~repro.sharding.partition.ShardPartitioner`.
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"`` — see
        :class:`~repro.core.config.ShardingConfig`.
    batch_size:
        Per-shard batch size used by :meth:`insert_stream`.
    snapshot:
        Snapshot / crash-recovery policy
        (:class:`~repro.core.config.SnapshotConfig`); ``None`` uses the
        defaults (no configured directory, auto-recovery of dead workers
        enabled, checksums verified on restore).
    registry:
        The :class:`~repro.observability.MetricsRegistry` the engine
        registers its ``sharding_*`` metrics in; ``None`` creates a private
        registry (exposed via :attr:`metrics`).  Pass the serving engine's
        registry to scrape both layers from one endpoint.

    Raises
    ------
    ConfigurationError
        On invalid configuration values.
    ShardingError
        When a shard worker cannot be started (e.g. the factory fails inside
        a worker process).

    Notes
    -----
    **Error semantics.**  Operations that touch a single shard (``insert``,
    ``delete``, routed queries) re-raise the shard's exception unchanged —
    the engine is transparent.  Operations that scatter across shards
    (``insert_batch``, broadcast queries, ``memory_bytes``) let every shard
    finish first, then raise :class:`~repro.errors.ShardingError` naming the
    failed shards, with the first underlying exception as ``__cause__``.
    After a partial ``insert_batch`` failure the engine remains usable and
    :meth:`items_ingested` still equals the sum of the per-shard
    acknowledged counts (tests enforce this).
    """

    name = "Sharded"

    def __init__(self, factory: Optional[Callable[[], TemporalGraphSummary]] = None,
                 *, shards: Optional[int] = None,
                 config: Optional[ShardingConfig] = None,
                 partition_by: Optional[str] = None,
                 executor: Optional[str] = None,
                 batch_size: Optional[int] = None,
                 snapshot: Optional[SnapshotConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        base = config or ShardingConfig()
        self.config = ShardingConfig(
            num_shards=shards if shards is not None else base.num_shards,
            partition_by=partition_by if partition_by is not None else base.partition_by,
            executor=executor if executor is not None else base.executor,
            batch_size=batch_size if batch_size is not None else base.batch_size,
            hash_seed=base.hash_seed)
        self.executor_mode = resolve_executor(self.config.executor)
        self.factory = factory if factory is not None else HiggsShardFactory()
        self._partitioner = ShardPartitioner(self.config.num_shards,
                                             partition_by=self.config.partition_by,
                                             seed=self.config.hash_seed)
        self._workers: List[ShardWorker] = []
        try:
            for index in range(self.config.num_shards):
                self._workers.append(make_shard_worker(
                    self.executor_mode, self.factory, name=f"shard-{index}"))
        except BaseException:
            self.close()
            raise
        self._shard_items = [0] * self.config.num_shards
        self._pending_async: Optional["PendingBatch"] = None
        self._closed = False
        self._snapshot_config = snapshot if snapshot is not None else SnapshotConfig()
        #: Per-shard acknowledged counts as of the last snapshot (None until
        #: one is taken); recovery's loss bound is measured against these.
        self._snapshot_items: Optional[List[int]] = None
        #: Directory of the last snapshot taken or loaded by this engine;
        #: crash recovery restores dead shards from here.
        self._last_snapshot_path: Optional[str] = None
        self._registry = registry if registry is not None else MetricsRegistry()
        self._init_metrics()
        self.name = f"Sharded[{self.config.num_shards}]"

    def _init_metrics(self) -> None:
        """Register the engine's ``sharding_*`` families in its registry.

        The per-shard item gauge is computed at collection time from the
        engine's acknowledged counts (a plain list read — no worker round
        trip), so scraping never touches the submit/collect protocol.  The
        busy-seconds and call-count gauges *do* need a worker round trip and
        are therefore only refreshed by explicit calls
        (:meth:`shard_busy_seconds` / :meth:`shard_stats`) — never from a
        render-time callback, which could run concurrently with scheduler
        traffic and mispair the workers' FIFO submit/collect ordering.
        """
        registry = self._registry
        self._metric_items = registry.gauge(
            "sharding_shard_items",
            "Items acknowledged per shard.", labelnames=("shard",))
        for index in range(self.config.num_shards):
            self._metric_items.set_function(
                lambda i=index: float(self._shard_items[i]),
                shard=str(index))
        self._metric_busy = registry.gauge(
            "sharding_shard_busy_seconds",
            "Cumulative seconds each shard worker spent executing calls "
            "(as of the last shard_busy_seconds/shard_stats sweep).",
            labelnames=("shard",))
        self._metric_calls = registry.gauge(
            "sharding_shard_calls",
            "Cumulative calls each shard worker executed (as of the last "
            "shard_stats sweep).", labelnames=("shard",))
        self._metric_packed = registry.gauge(
            "sharding_transport_packed_batches",
            "Batches shipped to process workers over the shared-memory "
            "packed-edge transport (parent-side counter; zero for serial "
            "and thread executors).")
        self._metric_packed.set_function(
            lambda: float(self.transport_stats()["packed_batches"]))
        self._metric_packed_bytes = registry.gauge(
            "sharding_transport_packed_bytes",
            "Payload bytes shipped over the shared-memory transport "
            "(parent-side counter).")
        self._metric_packed_bytes.set_function(
            lambda: float(self.transport_stats()["packed_bytes"]))
        self._metric_migrations = registry.counter(
            "sharding_migrations_total", "Completed live shard migrations.")
        self._metric_recoveries = registry.counter(
            "sharding_recoveries_total", "Dead shard workers rebuilt.")
        self._metric_snapshots = registry.counter(
            "sharding_snapshots_total", "Snapshots taken by this engine.")

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding the engine's ``sharding_*`` metric families."""
        return self._registry

    # ------------------------------------------------------------------ #
    # scatter-gather plumbing
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Number of shards the stream is partitioned across."""
        return self.config.num_shards

    @property
    def partitioner(self) -> ShardPartitioner:
        """The partitioner assigning stream items to shards."""
        return self._partitioner

    def _assert_no_pending_async(self) -> None:
        """Refuse to interleave with an unresolved async batch.

        The submit/collect protocol pairs results by order; running any
        other shard operation before the outstanding
        :class:`PendingBatch` is resolved would collect *its* results, so
        the engine fails loudly instead of silently mispairing.
        """
        if self._pending_async is not None:
            raise ShardingError(
                "operation attempted while an insert_batch_async is "
                "unresolved; resolve the PendingBatch first")

    def _scatter(self, calls: Dict[int, Tuple[str, Tuple]]) -> Dict[int, ShardResult]:
        """Submit one call per involved shard, then gather every result.

        Shards are visited in index order both when submitting and when
        collecting, so gather-side floating-point accumulation is
        deterministic.  All results are collected even when some fail;
        callers decide how to surface failures.
        """
        self._assert_no_pending_async()
        order = sorted(calls)
        for shard in order:
            method, args = calls[shard]
            self._workers[shard].submit(method, args)
        return {shard: self._workers[shard].collect() for shard in order}

    def _call_shard(self, shard: int, method: str, *args) -> ShardResult:
        """Route one call to one shard and return its result."""
        self._assert_no_pending_async()
        return self._workers[shard].call(method, *args)

    def _reraise(self, result: ShardResult):
        """Re-raise a single-shard failure transparently.

        If the failure was a worker death and auto-recovery is enabled, the
        dead shard is rebuilt first (the failed call is *not* retried).
        """
        self._maybe_auto_recover()
        raise result.error

    def _raise_scatter_failure(self, operation: str,
                               results: Dict[int, ShardResult]) -> None:
        """Raise :class:`ShardingError` if any scattered call failed.

        If any worker died and auto-recovery is enabled, dead shards are
        rebuilt before the error propagates (never retried silently).
        """
        failed = [shard for shard, result in results.items() if not result.ok]
        if not failed:
            return
        self._maybe_auto_recover()
        first = results[failed[0]].error
        raise ShardingError(
            f"{operation} failed on shard(s) {failed}: {first}") from first

    def _maybe_auto_recover(self) -> None:
        """Rebuild dead shard workers on the failure path, best-effort.

        Runs only when :class:`~repro.core.config.SnapshotConfig.auto_recover`
        is set and at least one worker is actually dead.  Recovery failures
        must not mask the original operation's error — the caller is about
        to raise it — so they are swallowed here; the next explicit
        :meth:`recover_dead_shards` call will surface them.
        """
        if self._closed or not self._snapshot_config.auto_recover:
            return
        if all(worker.alive() for worker in self._workers):
            return
        # Best-effort: the caller raises the original error right after.
        # repro-lint: ok EXC001 - recovery must not mask the original failure
        with contextlib.suppress(Exception):
            self.recover_dead_shards()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Insert one stream item into the shard owning its partition key.

        Raises whatever the owning shard's ``insert`` raises, unchanged.
        """
        shard = self._partitioner.shard_of_edge(source, destination)
        result = self._call_shard(shard, "insert", source, destination,
                                  weight, timestamp)
        if not result.ok:
            self._reraise(result)
        self._shard_items[shard] += 1

    def insert_batch(self, edges) -> int:
        """Partition a batch once and drive every shard's native batch path.

        The batch is split by partition key (preserving arrival order within
        each shard), the per-shard sub-batches are dispatched concurrently
        (executor permitting), and the acknowledged counts are summed.

        Returns the number of items acknowledged by shards.  If any shard
        fails, the remaining shards still finish, their counts are recorded,
        and a :class:`~repro.errors.ShardingError` naming the failed shards
        is raised (items of failed sub-batches are not counted).
        """
        parts = self._partitioner.split(edges)
        calls = {shard: ("insert_batch", (part,))
                 for shard, part in enumerate(parts) if part}
        if not calls:
            return 0
        return self._finish_insert_batch(self._scatter(calls))

    def _finish_insert_batch(self, results: Dict[int, ShardResult]) -> int:
        """Record per-shard acknowledgements and surface scatter failures."""
        inserted = 0
        for shard, result in results.items():
            if result.ok:
                self._shard_items[shard] += result.value
                inserted += result.value
        self._raise_scatter_failure("insert_batch", results)
        return inserted

    def insert_batch_async(self, edges) -> Optional[PendingBatch]:
        """Submit a batch to the shards without collecting the results.

        The submit-without-collect half of :meth:`insert_batch`: the batch
        is partitioned and each shard's sub-batch is dispatched, but the
        caller keeps control while shards execute (thread/process executors)
        and resolves the returned :class:`PendingBatch` when it needs the
        barrier.  Returns ``None`` for an empty batch (nothing submitted,
        nothing to resolve).

        No other operation may run on this engine until the handle is
        resolved (the engine raises :class:`~repro.errors.ShardingError`
        otherwise) — see :class:`PendingBatch`.
        """
        self._assert_no_pending_async()
        parts = self._partitioner.split(edges)
        calls = {shard: ("insert_batch", (part,))
                 for shard, part in enumerate(parts) if part}
        if not calls:
            return None
        order = sorted(calls)
        for shard in order:
            method, args = calls[shard]
            self._workers[shard].submit(method, args)
        pending = PendingBatch(self, order)
        self._pending_async = pending
        return pending

    def insert_stream(self, stream, *, batch_size: Optional[int] = None) -> int:
        """Replay a stream through the engine in partition rounds.

        Reads ``num_shards * batch_size`` items per round so that, after
        partitioning, every shard still receives full ``batch_size`` batches
        — per-shard batch sizes (and therefore per-shard memo amortization)
        stay comparable across shard counts.  Returns the number of items
        acknowledged by shards.
        """
        per_shard = self.config.batch_size if batch_size is None else max(1, batch_size)
        round_size = per_shard * self.config.num_shards
        count = 0
        chunk: List[StreamEdge] = []
        append = chunk.append
        for edge in stream:
            append(edge)
            if len(chunk) >= round_size:
                count += self.insert_batch(chunk)
                chunk.clear()
        if chunk:
            count += self.insert_batch(chunk)
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Delete from the shard owning the edge's partition key.

        Raises whatever the owning shard's ``delete`` raises, unchanged.
        """
        shard = self._partitioner.shard_of_edge(source, destination)
        result = self._call_shard(shard, "delete", source, destination,
                                  weight, timestamp)
        if not result.ok:
            self._reraise(result)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _vertex_routes_to_one_shard(self, direction: str) -> bool:
        """Whether a vertex query in ``direction`` is answerable by a single
        shard: only outgoing queries under source partitioning are."""
        return self.config.partition_by == "source" and direction == "out"

    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        """Estimated aggregated weight of ``source → destination`` in range.

        Routes to the single shard owning the edge (every copy of an edge
        lands on one shard, so no merge is needed).  After a rebalancing
        reassignment of the source vertex, the edge's occurrences may be
        split across its owner history; the query then scatters to every
        historical owner and sums the (disjoint) per-shard estimates, which
        is exact.  Raises :class:`~repro.errors.QueryError` on a malformed
        range.
        """
        self.check_range(t_start, t_end)
        owners = self._partitioner.owners_of_edge(source, destination)
        if len(owners) == 1:
            result = self._call_shard(owners[0], "edge_query", source,
                                      destination, t_start, t_end)
            if not result.ok:
                self._reraise(result)
            return result.value
        calls = {shard: ("edge_query", (source, destination, t_start, t_end))
                 for shard in owners}
        results = self._scatter(calls)
        self._raise_scatter_failure("edge_query", results)
        return sum(results[shard].value for shard in sorted(results))

    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        """Estimated aggregated weight of a vertex's incident edges in range.

        Under source partitioning, outgoing queries route to the vertex's
        shard — or, for a vertex moved by rebalancing, scatter to its owner
        history and sum (each edge occurrence lives in exactly one owner,
        so the sum is exact).  Incoming queries (and all queries under edge
        partitioning) scatter to every shard and the per-shard estimates
        are summed.  Raises :class:`~repro.errors.QueryError` on a
        malformed range or an unknown ``direction``.
        """
        self.check_range(t_start, t_end)
        if direction not in ("out", "in"):
            raise QueryError("direction must be 'out' or 'in'")
        if self._vertex_routes_to_one_shard(direction):
            owners = self._partitioner.owners_of_vertex(vertex)
            if len(owners) == 1:
                result = self._call_shard(owners[0], "vertex_query", vertex,
                                          t_start, t_end, direction)
                if not result.ok:
                    self._reraise(result)
                return result.value
            calls = {shard: ("vertex_query", (vertex, t_start, t_end, direction))
                     for shard in owners}
            results = self._scatter(calls)
            self._raise_scatter_failure("vertex_query", results)
            return sum(results[shard].value for shard in sorted(results))
        calls = {shard: ("vertex_query", (vertex, t_start, t_end, direction))
                 for shard in range(self.num_shards)}
        results = self._scatter(calls)
        self._raise_scatter_failure("vertex_query", results)
        return sum(results[shard].value for shard in sorted(results))

    def path_query(self, path: Sequence[Vertex], t_start: int, t_end: int) -> float:
        """Aggregated weight along a vertex path (sum of per-hop edge queries).

        The hops are grouped by owning shard and each involved shard answers
        one bulk sub-query over its hops; the per-shard sums are added.
        Raises :class:`~repro.errors.QueryError` for paths shorter than two
        vertices or malformed ranges.
        """
        if len(path) < 2:
            raise QueryError("a path query needs at least two vertices")
        return self.subgraph_query(list(zip(path[:-1], path[1:], strict=True)),
                                   t_start, t_end)

    def subgraph_query(self, edges: Sequence[Tuple[Vertex, Vertex]],
                       t_start: int, t_end: int) -> float:
        """Aggregated weight of a set of edges (sum of per-edge queries).

        Each involved shard answers a single ``subgraph_query`` over the
        edges it owns; the per-shard sums are added in shard order.  Raises
        :class:`~repro.errors.QueryError` on an empty edge set or a
        malformed range.
        """
        if not edges:
            raise QueryError("a subgraph query needs at least one edge")
        self.check_range(t_start, t_end)
        grouped = self._partitioner.group_pairs(edges)
        calls = {shard: ("subgraph_query", (pairs, t_start, t_end))
                 for shard, pairs in grouped.items()}
        results = self._scatter(calls)
        self._raise_scatter_failure("subgraph_query", results)
        return sum(results[shard].value for shard in sorted(results))

    def query_batch(self, queries: Sequence) -> List[float]:
        """Answer a batch of query objects with per-shard bulk sub-batches.

        Edge queries and routable vertex queries are grouped into one
        ``query_batch`` call per involved shard (preserving their relative
        order within the shard); scattered vertex queries are appended to
        every shard's sub-batch and their per-shard estimates summed.
        Composite (path / subgraph) queries are evaluated through the
        engine's own scatter-gather methods.  Results are returned in the
        callers' order and match the per-item methods exactly.
        """
        results: List[float] = [0.0] * len(queries)
        per_shard: Dict[int, List[Tuple[int, object]]] = {}
        composites: List[Tuple[int, object]] = []
        for index, query in enumerate(queries):
            # Structural dispatch mirrors Higgs.query_batch: it keeps this
            # module free of an import cycle with repro.queries.types.
            if hasattr(query, "destination"):  # edge query
                self.check_range(query.t_start, query.t_end)
                # A reassigned source splits the edge's occurrences across
                # its owner history; querying every owner and accumulating
                # into results[index] re-unifies the estimate exactly.
                for shard in self._partitioner.owners_of_edge(
                        query.source, query.destination):
                    per_shard.setdefault(shard, []).append((index, query))
            elif hasattr(query, "vertex"):  # vertex query
                self.check_range(query.t_start, query.t_end)
                if query.direction not in ("out", "in"):
                    raise QueryError("direction must be 'out' or 'in'")
                if self._vertex_routes_to_one_shard(query.direction):
                    for shard in self._partitioner.owners_of_vertex(
                            query.vertex):
                        per_shard.setdefault(shard, []).append((index, query))
                else:
                    for shard in range(self.num_shards):
                        per_shard.setdefault(shard, []).append((index, query))
            else:  # composite — evaluated via the engine's scatter-gather
                composites.append((index, query))
        calls = {shard: ("query_batch", ([query for _, query in items],))
                 for shard, items in per_shard.items()}
        gathered = self._scatter(calls)
        self._raise_scatter_failure("query_batch", gathered)
        for shard, items in per_shard.items():
            estimates = gathered[shard].value
            for (index, _), estimate in zip(items, estimates, strict=True):
                results[index] += estimate
        for index, query in composites:
            results[index] = query.evaluate(self)
        return results

    # ------------------------------------------------------------------ #
    # accounting and introspection
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Total analytic memory footprint: the sum over all shards."""
        calls = {shard: ("memory_bytes", ()) for shard in range(self.num_shards)}
        results = self._scatter(calls)
        self._raise_scatter_failure("memory_bytes", results)
        return sum(results[shard].value for shard in results)

    @property
    def items_ingested(self) -> int:
        """Total number of items acknowledged by shards.

        After a partial :meth:`insert_batch` failure this equals the sum of
        the successful shards' acknowledged counts — the engine never counts
        items whose insertion outcome is unknown.
        """
        return sum(self._shard_items)

    def shard_items(self) -> Tuple[int, ...]:
        """Per-shard acknowledged item counts (index = shard index)."""
        return tuple(self._shard_items)

    def shard_busy_seconds(self) -> List[float]:
        """Cumulative per-shard execution time, in seconds.

        Measured inside each worker around every call it executes; the
        benchmark harness derives load-imbalance and projected parallel
        ingest time from these counters.  Each sweep also refreshes the
        ``sharding_shard_busy_seconds`` gauge.
        """
        busy = [worker.busy_seconds() for worker in self._workers]
        for index, seconds in enumerate(busy):
            self._metric_busy.set(seconds, shard=str(index))
        return busy

    def shard_stats(self) -> List[Dict[str, float]]:
        """Per-shard load counters: ``busy_seconds`` and ``calls`` each.

        One reserved-op round trip per worker (see
        :data:`~repro.core.executor.STATS_OP`); a dead worker contributes
        zeros.  Each sweep refreshes the ``sharding_shard_busy_seconds``
        and ``sharding_shard_calls`` gauges, so callers that scrape metrics
        periodically get fresh per-shard load by calling this first.
        """
        stats = [worker.stats() for worker in self._workers]
        for index, entry in enumerate(stats):
            try:
                busy = float(entry["busy_seconds"])
                calls = float(entry["calls"])
            except (TypeError, ValueError) as exc:
                # Stats cross a pipe from worker processes; malformed data
                # is a shard fault, not a caller error (ERR002).
                raise ShardingError(
                    f"shard {index} returned malformed stats "
                    f"{entry!r}") from exc
            self._metric_busy.set(busy, shard=str(index))
            self._metric_calls.set(calls, shard=str(index))
        return stats

    def transport_stats(self) -> Dict[str, int]:
        """Aggregate shared-memory transport counters across all workers.

        Summed over each worker's parent-side
        :meth:`~repro.core.executor.ShardWorker.transport_stats` — a plain
        local read, never a worker round trip, so it is safe from
        collection-time metric callbacks.  All zeros for serial and thread
        executors, which never pack batches.
        """
        totals = {"packed_batches": 0, "packed_bytes": 0,
                  "fallback_batches": 0, "live_regions": 0}
        for index, worker in enumerate(self._workers):
            for key, value in worker.transport_stats().items():
                try:
                    totals[key] = totals.get(key, 0) + int(value)
                except (TypeError, ValueError) as exc:
                    # Counters come from worker wrappers tests may replace;
                    # malformed data is a shard fault, not a caller error
                    # (ERR002).
                    raise ShardingError(
                        f"shard {index} returned malformed transport "
                        f"stats {key}={value!r}") from exc
        return totals

    def shard_summaries(self) -> List[TemporalGraphSummary]:
        """The inner summaries, for inspection by tests and analyses.

        Raises
        ------
        ShardingError
            In ``"process"`` executor mode, where the summaries live in
            worker processes and cannot be returned by reference.
        """
        if any(worker.target is None for worker in self._workers):
            raise ShardingError(
                "shard summaries live in worker processes; use the 'serial' "
                "or 'thread' executor for direct access")
        return [worker.target for worker in self._workers]

    def stats(self) -> Dict[str, object]:
        """Engine-level statistics (shard count, executor, items, memory)."""
        return {
            "num_shards": self.num_shards,
            "partition_by": self.config.partition_by,
            "executor": self.executor_mode,
            "items_ingested": self.items_ingested,
            "shard_items": list(self._shard_items),
            "memory_bytes": self.memory_bytes(),
            "transport": self.transport_stats(),
        }

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #

    def snapshot_items(self) -> Optional[Tuple[int, ...]]:
        """Per-shard acknowledged counts as of the last snapshot.

        ``None`` until a snapshot has been taken or loaded.  The difference
        between :meth:`shard_items` and these counts is each shard's
        exposure to loss on crash — exactly the edges acknowledged since
        the snapshot (see :meth:`recover_dead_shards`).
        """
        return None if self._snapshot_items is None else tuple(self._snapshot_items)

    def snapshot(self, path: Optional[str] = None) -> str:
        """Persist every shard plus a checksummed manifest to ``path``.

        Quiesces all workers (so the snapshot sits on an epoch boundary),
        serializes each shard's summary *inside its worker* via the reserved
        serialize op, and writes the payloads, the partitioner state, the
        (picklable) factory, and — last, atomically — the manifest.  See
        :mod:`repro.sharding.snapshot` for the on-disk format.  Returns the
        snapshot directory, which also becomes the source for subsequent
        crash recovery.

        Raises
        ------
        SnapshotError
            When no destination is available (``path`` is ``None`` and the
            engine's :class:`~repro.core.config.SnapshotConfig` has no
            ``directory``), or when writing fails.
        ShardingError
            When an async batch is unresolved or a shard cannot be
            quiesced/serialized.
        """
        self._assert_no_pending_async()
        if path is None:
            path = self._snapshot_config.directory
        if path is None:
            raise SnapshotError(
                "no snapshot destination: pass snapshot(path) or configure "
                "SnapshotConfig.directory")
        path = str(path)
        self.quiesce()
        calls: Dict[int, Tuple[str, Tuple]] = {
            shard: (SERIALIZE_OP, ()) for shard in range(self.num_shards)}
        results = self._scatter(calls)
        self._raise_scatter_failure("snapshot", results)
        snapshot_format.write_snapshot(
            path, config=self.config,
            partitioner_state=self._partitioner.export_state(),
            payloads=[results[shard].value for shard in range(self.num_shards)],
            shard_items=list(self._shard_items),
            factory=self.factory)
        self._snapshot_items = list(self._shard_items)
        self._last_snapshot_path = path
        self._metric_snapshots.inc()
        return path

    @classmethod
    def restore(cls, path: str, *,
                factory: Optional[Callable[[], TemporalGraphSummary]] = None,
                executor: Optional[str] = None,
                snapshot: Optional[SnapshotConfig] = None) -> "ShardedSummary":
        """Reconstruct a bit-identical engine from a snapshot directory.

        Reads and verifies the manifest, rebuilds the engine with the
        snapshot's configuration (``executor`` may be overridden — state is
        executor-agnostic), restores the partitioner's reassignment state,
        and loads every shard's pickled summary into its worker.  Every
        query the restored engine answers is bit-identical to the original
        at snapshot time (property-tested), and further inserts behave
        exactly as they would have on the original.

        Parameters
        ----------
        path:
            Snapshot directory written by :meth:`snapshot`.
        factory:
            Shard factory override; required when the snapshot does not
            embed one (the writer's factory was unpicklable).
        executor:
            Executor-mode override; defaults to the snapshot's mode.
        snapshot:
            Snapshot / recovery policy of the restored engine; its
            ``verify_checksums`` also governs this restore.

        Raises
        ------
        SnapshotError
            On a missing, torn, or corrupt snapshot (the message names the
            offending file or shard), or when no factory is available.
        """
        policy = snapshot if snapshot is not None else SnapshotConfig()
        body = snapshot_format.read_manifest(
            path, verify=policy.verify_checksums)
        if factory is None:
            factory = snapshot_format.read_factory(
                path, body, verify=policy.verify_checksums)
        if factory is None:
            raise SnapshotError(
                f"snapshot at {path!r} does not embed its shard factory "
                f"(it was not picklable when written); pass factory=")
        # Field types were validated by read_manifest (SnapshotError on a
        # malformed manifest), so no further coercion here.
        config = ShardingConfig(
            num_shards=body["num_shards"],
            partition_by=str(body["partition_by"]),
            executor=str(executor if executor is not None else body["executor"]),
            batch_size=body["batch_size"],
            hash_seed=body["hash_seed"])
        engine = cls(factory, config=config, snapshot=policy)
        try:
            engine._load_snapshot_payloads(str(path), body)
        except BaseException:
            engine.close()
            raise
        return engine

    def load_snapshot(self, path: str) -> None:
        """Replace this engine's state with a snapshot's, in place.

        Unlike :meth:`restore` this keeps the existing workers (and their
        executor mode) and therefore demands **configuration
        compatibility**: the snapshot's shard count, partition mode, and
        hash seed must match this engine's, otherwise every key would
        silently route to the wrong shard.  Incompatibility raises
        :class:`~repro.errors.ShardingError` — e.g. loading a 4-shard
        snapshot into an 8-shard engine (or vice versa) refuses instead of
        mis-partitioning.

        Raises
        ------
        ShardingError
            On configuration mismatch, an unresolved async batch, or a
            shard that fails to load.
        SnapshotError
            On a missing, torn, or corrupt snapshot.
        """
        self._assert_no_pending_async()
        path = str(path)
        body = snapshot_format.read_manifest(
            path, verify=self._snapshot_config.verify_checksums)
        mismatches = []
        if body["num_shards"] != self.num_shards:
            mismatches.append(
                f"num_shards {body['num_shards']} != {self.num_shards}")
        if str(body["partition_by"]) != self.config.partition_by:
            mismatches.append(
                f"partition_by {body['partition_by']!r} != "
                f"{self.config.partition_by!r}")
        if body["hash_seed"] != self.config.hash_seed:
            mismatches.append(
                f"hash_seed {body['hash_seed']} != {self.config.hash_seed}")
        if mismatches:
            raise ShardingError(
                f"snapshot at {path!r} is incompatible with this engine: "
                + "; ".join(mismatches))
        self.quiesce()
        self._load_snapshot_payloads(path, body)

    def _load_snapshot_payloads(self, path: str, body: Dict[str, Any]) -> None:
        """Load partitioner state and every shard payload from a snapshot."""
        verify = self._snapshot_config.verify_checksums
        state = snapshot_format.read_partitioner_state(path, body, verify=verify)
        calls: Dict[int, Tuple[str, Tuple]] = {
            shard: (LOAD_OP,
                    (snapshot_format.read_shard_payload(path, body, shard,
                                                        verify=verify),))
            for shard in range(self.num_shards)}
        results = self._scatter(calls)
        self._raise_scatter_failure("restore", results)
        # State is swapped only after every shard loaded successfully, so a
        # failed restore leaves routing consistent with the untouched shards.
        self._partitioner = ShardPartitioner.from_state(state)
        self._shard_items = [entry["items"] for entry in body["shards"]]
        self._snapshot_items = list(self._shard_items)
        self._last_snapshot_path = path

    # ------------------------------------------------------------------ #
    # live migration, rebalancing, crash recovery
    # ------------------------------------------------------------------ #

    def migrate_shard(self, shard: int, worker: Optional[ShardWorker] = None,
                      *, executor: Optional[str] = None) -> None:
        """Move one shard's live summary onto a new worker, atomically.

        Serializes the shard inside its current worker, loads the payload
        into the replacement (a caller-provided ``worker``, or a fresh one
        of ``executor`` mode — default: this engine's mode), and only then
        swaps it into the routing table and closes the old worker.  A
        failed load closes the *replacement* and keeps the old worker
        serving, so concurrent readers never observe torn state; under a
        live :class:`~repro.serving.ServingEngine` the swap runs between
        epochs via :meth:`~repro.serving.ServingEngine.run_maintenance`.

        Raises
        ------
        ShardingError
            On an out-of-range shard, both ``worker`` and ``executor``
            given, an unknown executor mode, or a serialize/load failure.
        """
        self._assert_no_pending_async()
        if not 0 <= shard < self.num_shards:
            raise ShardingError(
                f"migrate_shard index {shard} out of range "
                f"[0, {self.num_shards})")
        if worker is not None and executor is not None:
            raise ShardingError(
                "pass either a replacement worker or an executor mode, "
                "not both")
        old = self._workers[shard]
        blob = old.call(SERIALIZE_OP)
        if not blob.ok:
            raise ShardingError(
                f"migration of shard {shard} failed to serialize: "
                f"{blob.error}") from blob.error
        if worker is None:
            mode = resolve_executor(
                executor if executor is not None else self.executor_mode)
            if mode not in SHARD_EXECUTORS:
                raise ShardingError(
                    f"unknown shard executor mode {mode!r}")
            worker = make_shard_worker(mode, self.factory,
                                       name=f"shard-{shard}")
        loaded = worker.call(LOAD_OP, blob.value)
        if not loaded.ok:
            # The replacement is the broken side: discard it and keep the
            # old worker serving — migration either completes or is a no-op.
            # repro-lint: ok EXC001 - cleanup; the load failure raises below
            with contextlib.suppress(Exception):
                worker.close()
            raise ShardingError(
                f"migration of shard {shard} failed to load into the new "
                f"worker: {loaded.error}") from loaded.error
        self._workers[shard] = worker
        self._metric_migrations.inc()
        # The old worker's state was fully copied; a close failure must
        # not undo a completed migration.
        # repro-lint: ok EXC001 - best-effort close of the replaced worker
        with contextlib.suppress(Exception):
            old.close()

    def rebalance(self, plan: RebalancePlan) -> None:
        """Apply a :class:`RebalancePlan`: reassign hot keys, migrate shards.

        Validates the whole plan first (so a bad entry changes nothing),
        quiesces the engine onto an epoch boundary, installs every key
        reassignment in the partitioner, then migrates each named shard.
        Reassigned vertices' future edges land on their new shard while
        reads transparently union the owner history — see
        :meth:`~repro.sharding.partition.ShardPartitioner.reassign`.

        Raises
        ------
        ShardingError
            On an invalid plan entry (out-of-range shard or target, unknown
            executor mode, reassignment under ``"edge"`` partitioning) or a
            failed migration.
        """
        self._assert_no_pending_async()
        if plan.reassign and self.config.partition_by != "source":
            raise ShardingError(
                "rebalance with key reassignments requires "
                "partition_by='source'")
        for vertex, target in plan.reassign.items():
            if not isinstance(target, int) or \
                    not 0 <= target < self.num_shards:
                raise ShardingError(
                    f"rebalance target shard {target!r} for vertex "
                    f"{vertex!r} is not an integer or out of range "
                    f"[0, {self.num_shards})")
        for shard, mode in plan.migrate.items():
            if not isinstance(shard, int) or \
                    not 0 <= shard < self.num_shards:
                raise ShardingError(
                    f"rebalance migration shard {shard!r} is not an "
                    f"integer or out of range [0, {self.num_shards})")
            if mode not in SHARD_EXECUTORS:
                raise ShardingError(
                    f"rebalance migration executor {mode!r} must be one of "
                    f"{SHARD_EXECUTORS}")
        self.quiesce()
        for vertex, target in plan.reassign.items():
            self._partitioner.reassign(vertex, target)
        for shard, mode in plan.migrate.items():
            self.migrate_shard(shard, executor=str(mode))

    def recover_dead_shards(self) -> List[int]:
        """Rebuild every dead worker; return the recovered shard indices.

        Each dead worker (a crashed / killed shard process) is replaced by
        a fresh worker of the engine's executor mode.  When the engine has
        a snapshot (taken or loaded), the dead shard's payload is restored
        from it and the shard's acknowledged count is reset to the
        snapshot's; without one the shard restarts empty (count 0).

        **Loss bound** (test-asserted): a recovered shard loses exactly the
        edges *it* acknowledged after the last snapshot —
        ``shard_items()[i] - snapshot_items()[i]`` at crash time — and
        nothing else; surviving shards lose nothing.  Queries after
        recovery are prefix-consistent per shard: they reflect every edge
        up to the shard's snapshot and none after it.

        Raises
        ------
        SnapshotError
            When the last snapshot has gone missing or corrupt.
        ShardingError
            When a replacement worker cannot be built or loaded.
        """
        self._assert_no_pending_async()
        dead = [shard for shard, worker in enumerate(self._workers)
                if not worker.alive()]
        if not dead:
            return []
        body = None
        if self._last_snapshot_path is not None:
            body = snapshot_format.read_manifest(
                self._last_snapshot_path,
                verify=self._snapshot_config.verify_checksums)
        for shard in dead:
            # The worker is already dead; close only reaps its remains.
            # repro-lint: ok EXC001 - reaping must not abort the recovery
            with contextlib.suppress(Exception):
                self._workers[shard].close()
            replacement = make_shard_worker(self.executor_mode, self.factory,
                                            name=f"shard-{shard}")
            if body is not None:
                payload = snapshot_format.read_shard_payload(
                    self._last_snapshot_path, body, shard,
                    verify=self._snapshot_config.verify_checksums)
                loaded = replacement.call(LOAD_OP, payload)
                if not loaded.ok:
                    # Discard the half-built replacement.
                    # repro-lint: ok EXC001 - the load failure raises below
                    with contextlib.suppress(Exception):
                        replacement.close()
                    raise ShardingError(
                        f"recovery of shard {shard} failed to load the "
                        f"snapshot payload: {loaded.error}") from loaded.error
                self._shard_items[shard] = body["shards"][shard]["items"]
            else:
                self._shard_items[shard] = 0
            self._workers[shard] = replacement
            self._metric_recoveries.inc()
        return dead

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def quiesce(self, timeout: Optional[float] = None) -> None:
        """Block until every shard worker has finished its submitted work.

        Drains each worker with the reserved barrier op (FIFO service order
        makes collecting the barrier's result proof that all earlier calls
        completed).  This is the engine-wide epoch barrier the serving layer
        uses between a write epoch and the reads that must observe it.

        Raises
        ------
        ShardingError
            When an :meth:`insert_batch_async` handle is still unresolved
            (its results must be collected, not discarded by a barrier), or
            naming the shards whose drain failed (dead worker) or timed out
            (``timeout`` seconds per wait).
        """
        self._assert_no_pending_async()
        results = {shard: worker.drain(timeout)
                   for shard, worker in enumerate(self._workers)}
        self._raise_scatter_failure("quiesce", results)

    def close(self) -> None:
        """Shut down all shard workers (idempotent).

        Serial-mode engines hold no external resources, but thread- and
        process-mode engines should always be closed (or used as context
        managers) so worker threads and processes exit promptly.
        """
        workers, self._workers = getattr(self, "_workers", []), []
        for worker in workers:
            # Best-effort shutdown: one worker's close failure must not keep
            # its siblings' threads/processes alive; workers report call
            # failures via ShardResult already.
            # repro-lint: ok EXC001 — see above
            with contextlib.suppress(Exception):
                worker.close()
        self._closed = True

    def __enter__(self) -> "ShardedSummary":
        """Context-manager entry: returns the engine itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: closes every shard worker."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ShardedSummary(shards={self.num_shards}, "
                f"executor={self.executor_mode!r}, "
                f"partition_by={self.config.partition_by!r}, "
                f"items={self.items_ingested})")
