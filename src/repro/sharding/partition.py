"""Hash partitioning of graph streams across shards.

The sharded summary engine assigns every stream item to exactly one shard by
hashing a **partition key** derived from the item:

* ``"source"`` (default) — the shard of an edge is the shard of its source
  vertex.  All outgoing edges of a vertex land together, so edge queries and
  outgoing vertex queries route to a single shard; incoming vertex queries
  must scatter to every shard.
* ``"edge"`` — the shard is derived from the ``(source, destination)`` pair.
  This spreads a hot source vertex across shards (better balance under heavy
  source skew) at the cost of scattering *all* vertex queries.

Both modes build on :func:`repro.core.hashing.shard_of`, the process-stable
shard-assignment hash also used by the shard-skew stream generators, so a
stream biased toward particular shards and the engine partitioning it always
agree on what "shard k" means.

``"source"`` mode additionally supports **key reassignment** for elastic
rebalancing: :meth:`ShardPartitioner.reassign` overrides the hash assignment
of a hot source vertex so its *future* edges land on a chosen shard.  Edges
inserted before the reassignment stay where they are, so the partitioner
remembers every vertex's **owner history**; read paths that must see all of
a vertex's edges query every historical owner and sum the (disjoint)
per-shard answers, which is exact because the shards partition the stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

from ..core.config import SHARD_PARTITION_MODES
from ..core.hashing import hash64, shard_of
from ..errors import ConfigurationError, ShardingError
from ..streams.edge import StreamEdge, Vertex

#: Partition-key modes understood by :class:`ShardPartitioner` — the single
#: definition lives in :mod:`repro.core.config` so the engine configuration
#: and the partitioner can never drift apart.
PARTITION_MODES = SHARD_PARTITION_MODES


class ShardPartitioner:
    """Maps vertices and edges to shard indices, deterministically.

    Parameters
    ----------
    num_shards:
        Number of shards; must be >= 1.
    partition_by:
        ``"source"`` or ``"edge"`` (see the module docstring).
    seed:
        Seed of the shard-assignment hash; two partitioners with the same
        ``(num_shards, partition_by, seed)`` agree on every assignment, in
        every process.

    Raises
    ------
    ConfigurationError
        On a non-positive shard count or an unknown partition mode.

    Notes
    -----
    Vertex-to-shard assignments are memoized in an unbounded dictionary;
    graph streams are heavily skewed, so nearly every lookup after warm-up is
    a dictionary hit.  The memo grows with the number of *distinct* vertices,
    which is small relative to the stream itself.
    """

    def __init__(self, num_shards: int, *, partition_by: str = "source",
                 seed: int = 0) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if partition_by not in PARTITION_MODES:
            raise ConfigurationError(
                f"partition_by must be one of {PARTITION_MODES}, "
                f"got {partition_by!r}")
        self.num_shards = num_shards
        self.partition_by = partition_by
        self.seed = seed
        self._vertex_memo: Dict[Vertex, int] = {}
        #: Explicit vertex→shard overrides installed by :meth:`reassign`.
        #: Authoritative record of every reassigned key (the memo holds the
        #: same values plus plain hash results, and can be rebuilt from this).
        self._overrides: Dict[Vertex, int] = {}
        #: Shards that owned a reassigned vertex before its current owner,
        #: oldest first.  Read fan-out unions these with the current owner.
        self._previous_owners: Dict[Vertex, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #

    def shard_of_vertex(self, vertex: Vertex) -> int:
        """Shard index owning ``vertex`` (its outgoing edges in ``"source"``
        mode).  Deterministic and stable across processes."""
        shard = self._vertex_memo.get(vertex)
        if shard is None:
            shard = self._vertex_memo[vertex] = shard_of(vertex, self.num_shards,
                                                         self.seed)
        return shard

    def shard_of_edge(self, source: Vertex, destination: Vertex) -> int:
        """Shard index owning the edge ``source → destination``.

        In ``"source"`` mode this is the source vertex's shard; in ``"edge"``
        mode the pair is hashed as a unit (both endpoints' hashes are mixed,
        so reversed edges land independently).
        """
        if self.partition_by == "source":
            return self.shard_of_vertex(source)
        if self.num_shards == 1:
            return 0
        return (hash64(source, self.seed) * 0x9E3779B97F4A7C15
                + hash64(destination, self.seed)) % self.num_shards

    # ------------------------------------------------------------------ #
    # key reassignment (elastic rebalancing)
    # ------------------------------------------------------------------ #

    @property
    def has_reassignments(self) -> bool:
        """True once any vertex has been moved off its hash-assigned shard."""
        return bool(self._overrides)

    def reassign(self, vertex: Vertex, shard: int) -> None:
        """Override ``vertex``'s shard so its *future* edges land on ``shard``.

        Only valid in ``"source"`` mode — in ``"edge"`` mode a single vertex
        has no owning shard to move.  Edges already inserted under the old
        owner stay there; the old owner joins the vertex's owner history so
        read paths keep seeing every edge (:meth:`owners_of_vertex`).
        Reassigning a vertex to its current owner is a no-op.

        Raises
        ------
        ConfigurationError
            In ``"edge"`` mode, or when ``shard`` is out of range.
        """
        if self.partition_by != "source":
            raise ConfigurationError(
                "key reassignment requires partition_by='source'; "
                "'edge' mode hashes (source, destination) pairs and has no "
                "per-vertex owner to move")
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"reassignment target shard {shard} out of range "
                f"[0, {self.num_shards})")
        current = self.shard_of_vertex(vertex)
        if shard == current:
            return
        history = self._previous_owners.get(vertex, ())
        if current not in history:
            self._previous_owners[vertex] = history + (current,)
        self._overrides[vertex] = shard
        self._vertex_memo[vertex] = shard

    def owners_of_vertex(self, vertex: Vertex) -> Tuple[int, ...]:
        """Every shard that may hold edges of ``vertex``, current owner first.

        For a never-reassigned vertex this is a 1-tuple; after reassignment
        it also contains every historical owner (deduplicated).  Summing a
        distributive query over these shards is exact because each edge
        occurrence was inserted into exactly one of them.
        """
        owners = (self.shard_of_vertex(vertex),)
        for previous in self._previous_owners.get(vertex, ()):
            if previous not in owners:
                owners += (previous,)
        return owners

    def owners_of_edge(self, source: Vertex, destination: Vertex) -> Tuple[int, ...]:
        """Every shard that may hold occurrences of the edge, current first.

        ``"edge"`` mode never reassigns, so the answer there is always a
        1-tuple; ``"source"`` mode delegates to :meth:`owners_of_vertex`.
        """
        if self.partition_by == "source":
            return self.owners_of_vertex(source)
        return (self.shard_of_edge(source, destination),)

    # ------------------------------------------------------------------ #
    # snapshot state
    # ------------------------------------------------------------------ #

    def export_state(self) -> Dict[str, Any]:
        """Snapshot of the partitioner's full assignment state.

        The returned dict captures the static identity (shard count, mode,
        seed) plus every override and owner history; feeding it to
        :meth:`from_state` reproduces a partitioner that agrees with this one
        on every assignment and every owner set.  Hash-derived memo entries
        are *not* exported — they are recomputed on demand.
        """
        return {
            "num_shards": self.num_shards,
            "partition_by": self.partition_by,
            "seed": self.seed,
            "overrides": dict(self._overrides),
            "previous_owners": dict(self._previous_owners),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ShardPartitioner":
        """Rebuild a partitioner from :meth:`export_state` output.

        Raises
        ------
        ShardingError
            When ``state`` is malformed (missing keys, non-numeric shard
            indices) — snapshot manifests are external input, so corruption
            must surface as a repro.errors type, not a bare builtin.
        ConfigurationError
            When the state describes an invalid configuration (bad shard
            count or partition mode), exactly as the constructor would.
        """
        try:
            partitioner = cls(int(state["num_shards"]),
                              partition_by=str(state["partition_by"]),
                              seed=int(state["seed"]))
            for vertex, shard in dict(state.get("overrides", {})).items():
                partitioner._overrides[vertex] = int(shard)
                partitioner._vertex_memo[vertex] = int(shard)
            for vertex, owners in dict(state.get("previous_owners", {})).items():
                partitioner._previous_owners[vertex] = tuple(
                    int(s) for s in owners)
        except ConfigurationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardingError(
                f"partitioner state is malformed and cannot be restored: "
                f"{exc!r}") from exc
        return partitioner

    # ------------------------------------------------------------------ #
    # bulk splitting
    # ------------------------------------------------------------------ #

    def split(self, edges: Iterable[StreamEdge]) -> List[List[StreamEdge]]:
        """Partition ``edges`` into one list per shard, preserving arrival
        order within every shard.

        Returns a list of ``num_shards`` lists (possibly empty).  Because
        each shard's sub-stream keeps the original relative order, replaying
        the sub-streams into per-shard summaries is equivalent to each shard
        observing its slice of the original stream.
        """
        parts: List[List[StreamEdge]] = [[] for _ in range(self.num_shards)]
        if self.partition_by == "source":
            memo = self._vertex_memo
            memo_get = memo.get
            num_shards = self.num_shards
            seed = self.seed
            for edge in edges:
                source = edge.source
                shard = memo_get(source)
                if shard is None:
                    shard = memo[source] = shard_of(source, num_shards, seed)
                parts[shard].append(edge)
        else:
            for edge in edges:
                parts[self.shard_of_edge(edge.source, edge.destination)].append(edge)
        return parts

    def group_pairs(self, pairs: Iterable[Tuple[Vertex, Vertex]]
                    ) -> Dict[int, List[Tuple[Vertex, Vertex]]]:
        """Group ``(source, destination)`` pairs by owning shard, for reads.

        Used by composite (path / subgraph) queries to turn one multi-edge
        query into at most one sub-query per shard.  A pair whose source was
        reassigned appears in *every* historical owner's group — its
        occurrences may be split across them, and summing the per-shard
        answers re-unifies the count exactly.  Write routing must use
        :meth:`shard_of_edge` (current owner only) instead.
        """
        grouped: Dict[int, List[Tuple[Vertex, Vertex]]] = {}
        if not self._previous_owners:
            for source, destination in pairs:
                shard = self.shard_of_edge(source, destination)
                grouped.setdefault(shard, []).append((source, destination))
            return grouped
        for source, destination in pairs:
            for shard in self.owners_of_edge(source, destination):
                grouped.setdefault(shard, []).append((source, destination))
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ShardPartitioner(num_shards={self.num_shards}, "
                f"partition_by={self.partition_by!r}, seed={self.seed})")
