"""Hash partitioning of graph streams across shards.

The sharded summary engine assigns every stream item to exactly one shard by
hashing a **partition key** derived from the item:

* ``"source"`` (default) — the shard of an edge is the shard of its source
  vertex.  All outgoing edges of a vertex land together, so edge queries and
  outgoing vertex queries route to a single shard; incoming vertex queries
  must scatter to every shard.
* ``"edge"`` — the shard is derived from the ``(source, destination)`` pair.
  This spreads a hot source vertex across shards (better balance under heavy
  source skew) at the cost of scattering *all* vertex queries.

Both modes build on :func:`repro.core.hashing.shard_of`, the process-stable
shard-assignment hash also used by the shard-skew stream generators, so a
stream biased toward particular shards and the engine partitioning it always
agree on what "shard k" means.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.config import SHARD_PARTITION_MODES
from ..core.hashing import hash64, shard_of
from ..errors import ConfigurationError
from ..streams.edge import StreamEdge, Vertex

#: Partition-key modes understood by :class:`ShardPartitioner` — the single
#: definition lives in :mod:`repro.core.config` so the engine configuration
#: and the partitioner can never drift apart.
PARTITION_MODES = SHARD_PARTITION_MODES


class ShardPartitioner:
    """Maps vertices and edges to shard indices, deterministically.

    Parameters
    ----------
    num_shards:
        Number of shards; must be >= 1.
    partition_by:
        ``"source"`` or ``"edge"`` (see the module docstring).
    seed:
        Seed of the shard-assignment hash; two partitioners with the same
        ``(num_shards, partition_by, seed)`` agree on every assignment, in
        every process.

    Raises
    ------
    ConfigurationError
        On a non-positive shard count or an unknown partition mode.

    Notes
    -----
    Vertex-to-shard assignments are memoized in an unbounded dictionary;
    graph streams are heavily skewed, so nearly every lookup after warm-up is
    a dictionary hit.  The memo grows with the number of *distinct* vertices,
    which is small relative to the stream itself.
    """

    def __init__(self, num_shards: int, *, partition_by: str = "source",
                 seed: int = 0) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if partition_by not in PARTITION_MODES:
            raise ConfigurationError(
                f"partition_by must be one of {PARTITION_MODES}, "
                f"got {partition_by!r}")
        self.num_shards = num_shards
        self.partition_by = partition_by
        self.seed = seed
        self._vertex_memo: Dict[Vertex, int] = {}

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #

    def shard_of_vertex(self, vertex: Vertex) -> int:
        """Shard index owning ``vertex`` (its outgoing edges in ``"source"``
        mode).  Deterministic and stable across processes."""
        shard = self._vertex_memo.get(vertex)
        if shard is None:
            shard = self._vertex_memo[vertex] = shard_of(vertex, self.num_shards,
                                                         self.seed)
        return shard

    def shard_of_edge(self, source: Vertex, destination: Vertex) -> int:
        """Shard index owning the edge ``source → destination``.

        In ``"source"`` mode this is the source vertex's shard; in ``"edge"``
        mode the pair is hashed as a unit (both endpoints' hashes are mixed,
        so reversed edges land independently).
        """
        if self.partition_by == "source":
            return self.shard_of_vertex(source)
        if self.num_shards == 1:
            return 0
        return (hash64(source, self.seed) * 0x9E3779B97F4A7C15
                + hash64(destination, self.seed)) % self.num_shards

    # ------------------------------------------------------------------ #
    # bulk splitting
    # ------------------------------------------------------------------ #

    def split(self, edges: Iterable[StreamEdge]) -> List[List[StreamEdge]]:
        """Partition ``edges`` into one list per shard, preserving arrival
        order within every shard.

        Returns a list of ``num_shards`` lists (possibly empty).  Because
        each shard's sub-stream keeps the original relative order, replaying
        the sub-streams into per-shard summaries is equivalent to each shard
        observing its slice of the original stream.
        """
        parts: List[List[StreamEdge]] = [[] for _ in range(self.num_shards)]
        if self.partition_by == "source":
            memo = self._vertex_memo
            memo_get = memo.get
            num_shards = self.num_shards
            seed = self.seed
            for edge in edges:
                source = edge.source
                shard = memo_get(source)
                if shard is None:
                    shard = memo[source] = shard_of(source, num_shards, seed)
                parts[shard].append(edge)
        else:
            for edge in edges:
                parts[self.shard_of_edge(edge.source, edge.destination)].append(edge)
        return parts

    def group_pairs(self, pairs: Iterable[Tuple[Vertex, Vertex]]
                    ) -> Dict[int, List[Tuple[Vertex, Vertex]]]:
        """Group ``(source, destination)`` pairs by owning shard.

        Used by composite (path / subgraph) queries to turn one multi-edge
        query into at most one sub-query per shard.
        """
        grouped: Dict[int, List[Tuple[Vertex, Vertex]]] = {}
        for source, destination in pairs:
            shard = self.shard_of_edge(source, destination)
            grouped.setdefault(shard, []).append((source, destination))
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ShardPartitioner(num_shards={self.num_shards}, "
                f"partition_by={self.partition_by!r}, seed={self.seed})")
