"""On-disk snapshot format for the sharded summary engine.

A snapshot is a directory:

.. code-block:: text

    <snapshot-dir>/
        manifest.json     # written LAST, atomically (tmp file + os.replace)
        partition.pkl     # pickled ShardPartitioner.export_state() dict
        factory.pkl       # pickled shard factory (absent if unpicklable)
        shard-0.pkl       # pickle.dumps(<shard 0's inner summary>)
        shard-1.pkl
        ...

The manifest carries a ``body`` (format version, engine configuration,
acknowledged item counts, and the file name + SHA-256 + size of every
payload) plus a checksum of the canonical JSON encoding of that body.
Because the manifest is written last and replaced atomically, a snapshot
interrupted at any point is detectable: either the manifest is missing /
torn (bad JSON, bad body checksum) or a payload it names fails its SHA-256
— both refuse to load with a typed :class:`~repro.errors.SnapshotError`
whose message names the offending file (for shard payloads, the shard).

All functions here are pure filesystem/format helpers; engine-level
orchestration (quiescing workers, serializing shard state, validating
configuration compatibility) lives in
:meth:`~repro.sharding.ShardedSummary.snapshot` and friends.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Callable, Dict, List, Optional

from ..core.config import ShardingConfig
from ..errors import SnapshotError

#: Name of the manifest file inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Name of the pickled partitioner-state file inside a snapshot directory.
PARTITION_NAME = "partition.pkl"

#: Name of the pickled shard-factory file inside a snapshot directory.
FACTORY_NAME = "factory.pkl"

#: Current snapshot format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1


def shard_payload_name(shard: int) -> str:
    """File name of shard ``shard``'s pickled summary payload."""
    return f"shard-{shard}.pkl"


def _sha256(data: bytes) -> str:
    """Hex SHA-256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def _body_checksum(body: Dict[str, Any]) -> str:
    """Checksum of the manifest body over its canonical JSON encoding."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return _sha256(canonical.encode("utf-8"))


def _write_payload(directory: str, name: str, data: bytes) -> Dict[str, Any]:
    """Write one payload file and return its manifest entry."""
    with open(os.path.join(directory, name), "wb") as handle:
        handle.write(data)
    return {"file": name, "sha256": _sha256(data), "bytes": len(data)}


def _read_payload(directory: str, entry: Dict[str, Any], *, what: str,
                  verify: bool = True) -> bytes:
    """Read one payload named by a manifest ``entry`` and verify its hash.

    Raises
    ------
    SnapshotError
        When the file is missing or, with ``verify``, its SHA-256 does not
        match the manifest; the message names ``what`` (e.g. ``"shard 2"``).
    """
    path = os.path.join(directory, str(entry["file"]))
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotError(
            f"snapshot payload for {what} is missing or unreadable: "
            f"{path} ({exc})") from exc
    if verify and _sha256(data) != entry["sha256"]:
        raise SnapshotError(
            f"snapshot payload for {what} is corrupt: checksum mismatch on "
            f"{path} (expected {entry['sha256'][:12]}…, "
            f"got {_sha256(data)[:12]}…)")
    return data


def write_snapshot(directory: str, *, config: ShardingConfig,
                   partitioner_state: Dict[str, Any],
                   payloads: List[bytes], shard_items: List[int],
                   factory: Optional[Callable[[], Any]] = None
                   ) -> Dict[str, Any]:
    """Write a complete snapshot into ``directory`` and return its body.

    Payload files are written first, the manifest last (via a temporary
    file renamed with :func:`os.replace`), so a crash mid-write never
    leaves a loadable-but-wrong snapshot: either the manifest is absent /
    torn or some checksum disagrees.  An existing snapshot in the same
    directory is overwritten only once the new manifest lands, so the
    previous snapshot stays loadable until the new one is complete —
    unless a stale payload file survives with a new manifest, which the
    checksums catch.

    The ``factory`` is pickled alongside the payloads when possible so
    :meth:`~repro.sharding.ShardedSummary.restore` can rebuild workers
    without the caller re-supplying it; an unpicklable factory (lambda,
    closure) is simply omitted and restore then requires an explicit
    ``factory=``.

    Raises
    ------
    SnapshotError
        When the directory cannot be created or a file cannot be written.
    """
    try:
        os.makedirs(directory, exist_ok=True)
        shards = []
        for shard, (payload, items) in enumerate(
                zip(payloads, shard_items, strict=True)):
            entry = _write_payload(directory, shard_payload_name(shard), payload)
            try:
                entry["items"] = int(items)
            except (TypeError, ValueError) as exc:
                raise SnapshotError(
                    f"shard {shard} items count {items!r} is not an "
                    f"integer") from exc
            shards.append(entry)
        partition_entry = _write_payload(
            directory, PARTITION_NAME,
            pickle.dumps(partitioner_state, pickle.HIGHEST_PROTOCOL))
        factory_entry = None
        if factory is not None:
            try:
                factory_blob = pickle.dumps(factory, pickle.HIGHEST_PROTOCOL)
            except (pickle.PicklingError, AttributeError, TypeError):
                factory_blob = None
            if factory_blob is not None:
                factory_entry = _write_payload(directory, FACTORY_NAME,
                                               factory_blob)
        body = {
            "format_version": FORMAT_VERSION,
            "num_shards": config.num_shards,
            "partition_by": config.partition_by,
            "hash_seed": config.hash_seed,
            "batch_size": config.batch_size,
            "executor": config.executor,
            "items_total": int(sum(shard_items)),
            "shards": shards,
            "partition": partition_entry,
            "factory": factory_entry,
        }
        manifest = {"format_version": FORMAT_VERSION, "body": body,
                    "checksum": _body_checksum(body)}
        tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))
    except OSError as exc:
        raise SnapshotError(
            f"cannot write snapshot to {directory!r}: {exc}") from exc
    return body


def read_manifest(directory: str, *, verify: bool = True) -> Dict[str, Any]:
    """Read, validate, and return the manifest body of a snapshot.

    Raises
    ------
    SnapshotError
        When the manifest is missing, torn (invalid JSON, missing keys),
        from an unknown format version, or — with ``verify`` — when the
        body's checksum does not match (a torn or tampered manifest).
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SnapshotError(
            f"no snapshot manifest at {path} ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot manifest at {path} is torn: invalid JSON "
            f"({exc})") from exc
    if not isinstance(manifest, dict) or "body" not in manifest \
            or "checksum" not in manifest:
        raise SnapshotError(
            f"snapshot manifest at {path} is torn: missing body/checksum")
    body = manifest["body"]
    if verify and _body_checksum(body) != manifest["checksum"]:
        raise SnapshotError(
            f"snapshot manifest at {path} is corrupt: body checksum mismatch")
    if body.get("format_version") != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot at {directory!r} has format version "
            f"{body.get('format_version')!r}; this build reads version "
            f"{FORMAT_VERSION}")
    shards = body.get("shards")
    if not isinstance(shards, list) or len(shards) != body.get("num_shards"):
        raise SnapshotError(
            f"snapshot manifest at {path} is torn: names "
            f"{len(shards) if isinstance(shards, list) else 0} shard "
            f"payloads for {body.get('num_shards')} shards")
    # Schema validation: the engine consumes these fields without further
    # coercion, so a checksummed-but-malformed manifest (hand-edited, or
    # written by a skewed version) must die here as SnapshotError instead
    # of surfacing as ValueError/TypeError from the engine (ERR002).
    for field in ("num_shards", "batch_size", "hash_seed"):
        if not isinstance(body.get(field), int) or \
                isinstance(body.get(field), bool):
            raise SnapshotError(
                f"snapshot manifest at {path} is torn: {field!r} is "
                f"{body.get(field)!r}, expected an integer")
    for shard, entry in enumerate(shards):
        items = entry.get("items") if isinstance(entry, dict) else None
        if not isinstance(items, int) or isinstance(items, bool):
            raise SnapshotError(
                f"snapshot manifest at {path} is torn: shard {shard} has "
                f"items count {items!r}, expected an integer")
    return body


def read_shard_payload(directory: str, body: Dict[str, Any], shard: int, *,
                       verify: bool = True) -> bytes:
    """Read and (optionally) checksum-verify one shard's pickled payload.

    Raises
    ------
    SnapshotError
        When the payload is missing or corrupt; the message names the shard.
    """
    return _read_payload(directory, body["shards"][shard],
                         what=f"shard {shard}", verify=verify)


def read_partitioner_state(directory: str, body: Dict[str, Any], *,
                           verify: bool = True) -> Dict[str, Any]:
    """Read the pickled partitioner-state dict of a snapshot.

    Raises
    ------
    SnapshotError
        When the file is missing, corrupt, or not a pickled dict.
    """
    blob = _read_payload(directory, body["partition"],
                         what="the partitioner", verify=verify)
    try:
        state = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - re-typed as SnapshotError
        raise SnapshotError(
            f"snapshot partitioner state in {directory!r} does not "
            f"unpickle: {exc}") from exc
    if not isinstance(state, dict):
        raise SnapshotError(
            f"snapshot partitioner state in {directory!r} is not a dict")
    return state


def read_factory(directory: str, body: Dict[str, Any], *,
                 verify: bool = True) -> Optional[Callable[[], Any]]:
    """Read the pickled shard factory, or ``None`` if none was stored.

    Raises
    ------
    SnapshotError
        When a stored factory file is missing, corrupt, or fails to
        unpickle (e.g. its class moved between writer and reader).
    """
    entry = body.get("factory")
    if entry is None:
        return None
    blob = _read_payload(directory, entry, what="the shard factory",
                         verify=verify)
    try:
        return pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - re-typed as SnapshotError
        raise SnapshotError(
            f"snapshot shard factory in {directory!r} does not unpickle: "
            f"{exc}") from exc
