"""Graph stream substrate: edge model, synthetic generators, dataset analogues,
file readers, and descriptive statistics."""

from .edge import GraphStream, StreamEdge
from .generators import (MixedWorkloadSpec, ServingOp, StreamSpec,
                         generate_mixed_workload, generate_stream,
                         generate_skewness_suite, generate_variance_suite,
                         reskew_to_shards)
from .datasets import (DATASETS, DATASET_ORDER, DatasetDescriptor,
                       dataset_names, load_dataset, table2_rows)
from .readers import read_stream, write_stream, iter_edges_from_text
from . import analysis

__all__ = [
    "GraphStream", "StreamEdge",
    "StreamSpec", "generate_stream", "generate_skewness_suite",
    "generate_variance_suite", "reskew_to_shards",
    "MixedWorkloadSpec", "ServingOp", "generate_mixed_workload",
    "DATASETS", "DATASET_ORDER", "DatasetDescriptor", "dataset_names",
    "load_dataset", "table2_rows",
    "read_stream", "write_stream", "iter_edges_from_text",
    "analysis",
]
