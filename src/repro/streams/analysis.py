"""Descriptive statistics over graph streams.

These helpers back the paper's motivation figures: vertex-degree skewness
(Fig. 2) and the irregularity of stream item arrivals (Fig. 3), plus a few
summary statistics the experiment harness reports alongside each dataset.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .edge import GraphStream


@dataclass(frozen=True, slots=True)
class DegreeStats:
    """Summary of a stream's out-degree distribution."""

    max_degree: int
    mean_degree: float
    median_degree: float
    gini: float
    top1_percent_share: float


def out_degree_distribution(stream: GraphStream) -> Counter:
    """Return a counter mapping each source vertex to its (multi-)out-degree."""
    degrees: Counter = Counter()
    for edge in stream:
        degrees[edge.source] += 1
    return degrees


def in_degree_distribution(stream: GraphStream) -> Counter:
    """Return a counter mapping each destination vertex to its in-degree."""
    degrees: Counter = Counter()
    for edge in stream:
        degrees[edge.destination] += 1
    return degrees


def degree_ccdf(stream: GraphStream, *, direction: str = "out"
                ) -> List[Tuple[int, float]]:
    """Return the complementary CDF of vertex degrees as ``(degree, P(D >= degree))``.

    This is the curve the paper plots in Fig. 2 (log-log) to show skewness.
    """
    dist = (out_degree_distribution(stream) if direction == "out"
            else in_degree_distribution(stream))
    degrees = np.array(sorted(dist.values()))
    if degrees.size == 0:
        return []
    unique = np.unique(degrees)
    n = degrees.size
    ccdf = [(int(d), float((degrees >= d).sum()) / n) for d in unique]
    return ccdf


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative value vector (0 = uniform, 1 = one holder)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    n = sorted_vals.size
    cum = np.cumsum(sorted_vals)
    if cum[-1] == 0:
        return 0.0
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def degree_stats(stream: GraphStream, *, direction: str = "out") -> DegreeStats:
    """Compute headline skewness statistics for a stream's degree distribution."""
    dist = (out_degree_distribution(stream) if direction == "out"
            else in_degree_distribution(stream))
    values = np.array(list(dist.values()), dtype=np.int64)
    if values.size == 0:
        return DegreeStats(0, 0.0, 0.0, 0.0, 0.0)
    sorted_desc = np.sort(values)[::-1]
    top_k = max(1, int(math.ceil(values.size * 0.01)))
    top_share = float(sorted_desc[:top_k].sum()) / float(values.sum())
    return DegreeStats(
        max_degree=int(values.max()),
        mean_degree=float(values.mean()),
        median_degree=float(np.median(values)),
        gini=_gini(values),
        top1_percent_share=top_share,
    )


def arrival_histogram(stream: GraphStream, *, num_bins: int = 50
                      ) -> List[Tuple[int, int]]:
    """Bucket item arrivals into ``num_bins`` equal time slices.

    Returns ``(bin_start_timestamp, edge_count)`` pairs — the data behind the
    paper's Fig. 3 hot-interval plots.
    """
    if len(stream) == 0:
        return []
    t_min, t_max = stream.time_span
    span = max(1, t_max - t_min + 1)
    width = max(1, span // num_bins)
    counts: Counter = Counter()
    for edge in stream:
        bin_index = (edge.timestamp - t_min) // width
        counts[bin_index] += 1
    return [(t_min + i * width, counts.get(i, 0))
            for i in range(0, (span + width - 1) // width)]


def arrival_variance(stream: GraphStream, *, num_bins: int = 50) -> float:
    """Variance of per-slice edge counts (the irregularity knob of Fig. 15)."""
    hist = arrival_histogram(stream, num_bins=num_bins)
    if not hist:
        return 0.0
    counts = np.array([c for _, c in hist], dtype=np.float64)
    return float(counts.var())


def summarize(stream: GraphStream) -> Dict[str, object]:
    """Return a one-row summary of the stream (used by Table II reporting)."""
    t_min, t_max = stream.time_span
    stats = degree_stats(stream)
    return {
        "name": stream.name,
        "edges": len(stream),
        "vertices": len(stream.vertices()),
        "distinct_edges": len(stream.distinct_edges()),
        "time_span": t_max - t_min + 1,
        "max_out_degree": stats.max_degree,
        "degree_gini": round(stats.gini, 4),
        "arrival_variance": round(arrival_variance(stream), 2),
    }
