"""Offline analogues of the paper's evaluation datasets (Table II).

The paper evaluates on three KONECT communication networks:

========================  ===========  ============  ==========
Dataset                   Nodes        Edges         Time span
========================  ===========  ============  ==========
Lkml                      63,399       1,096,440     2006-2013
Wikipedia talk (WT)       2,987,535    24,981,163    2001-2015
Stackoverflow (SO)        2,601,977    63,497,050    2009-2016
========================  ===========  ============  ==========

Those traces are not redistributable and are far too large for a pure-Python
stream replay, so this module generates *synthetic analogues* that preserve
the qualitative properties the paper's analysis depends on — power-law degree
skew and bursty arrivals — at a laptop-friendly scale, while keeping the
relative size ordering (SO > WT > Lkml).  The substitution is documented in
DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import DatasetError
from .edge import GraphStream
from .generators import StreamSpec, generate_stream


@dataclass(frozen=True, slots=True)
class DatasetDescriptor:
    """Static description of a benchmark dataset.

    ``paper_nodes`` / ``paper_edges`` record the original trace sizes from
    Table II; ``nodes`` / ``edges`` are the sizes of the synthetic analogue
    generated here.
    """

    key: str
    title: str
    paper_nodes: int
    paper_edges: int
    paper_time_span: str
    nodes: int
    edges: int
    time_span: int
    skewness: float
    arrival_variance: float
    seed: int


#: The three datasets from Table II, scaled for offline pure-Python replay.
DATASETS: Dict[str, DatasetDescriptor] = {
    "lkml": DatasetDescriptor(
        key="lkml", title="Lkml (synthetic analogue)",
        paper_nodes=63_399, paper_edges=1_096_440, paper_time_span="2006-2013",
        nodes=3_000, edges=30_000, time_span=30_000,
        skewness=2.2, arrival_variance=900.0, seed=101),
    "wiki_talk": DatasetDescriptor(
        key="wiki_talk", title="Wikipedia talk (synthetic analogue)",
        paper_nodes=2_987_535, paper_edges=24_981_163, paper_time_span="2001-2015",
        nodes=8_000, edges=60_000, time_span=60_000,
        skewness=2.5, arrival_variance=1100.0, seed=102),
    "stackoverflow": DatasetDescriptor(
        key="stackoverflow", title="Stackoverflow (synthetic analogue)",
        paper_nodes=2_601_977, paper_edges=63_497_050, paper_time_span="2009-2016",
        nodes=12_000, edges=90_000, time_span=90_000,
        skewness=2.3, arrival_variance=1300.0, seed=103),
}

#: Canonical ordering used throughout the benchmark harness.
DATASET_ORDER: List[str] = ["lkml", "wiki_talk", "stackoverflow"]


def dataset_names() -> List[str]:
    """Return the dataset keys in canonical (paper) order."""
    return list(DATASET_ORDER)


def load_dataset(key: str, *, scale: float = 1.0) -> GraphStream:
    """Generate the synthetic analogue of a paper dataset.

    Parameters
    ----------
    key:
        One of ``"lkml"``, ``"wiki_talk"``, ``"stackoverflow"``.
    scale:
        Multiplier on the analogue's edge and node counts; benchmarks use
        ``scale < 1`` for quick smoke runs.

    Returns
    -------
    GraphStream
        A deterministic synthetic stream.  Repeated calls with the same
        arguments return identical streams.
    """
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {key!r}; expected one of {DATASET_ORDER}")
    desc = DATASETS[key]
    num_edges = max(100, int(desc.edges * scale))
    num_vertices = max(50, int(desc.nodes * scale))
    time_span = max(100, int(desc.time_span * scale))
    spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                      skewness=desc.skewness, time_span=time_span,
                      arrival_variance=desc.arrival_variance,
                      seed=desc.seed, name=desc.key)
    return generate_stream(spec)


def table2_rows(*, scale: float = 1.0) -> List[Dict[str, object]]:
    """Return the rows of Table II for both the paper traces and the analogues."""
    rows = []
    for key in DATASET_ORDER:
        desc = DATASETS[key]
        stream = load_dataset(key, scale=scale)
        t_min, t_max = stream.time_span
        rows.append({
            "dataset": desc.title,
            "paper_nodes": desc.paper_nodes,
            "paper_edges": desc.paper_edges,
            "paper_time_span": desc.paper_time_span,
            "nodes": len(stream.vertices()),
            "edges": len(stream),
            "time_span": t_max - t_min + 1,
            "time_slice": "1 unit",
        })
    return rows
