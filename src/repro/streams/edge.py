"""Graph stream item model.

A graph stream (paper Definition 1) is a sequence of items
``(s, d, w, t)``: a directed edge from ``s`` to ``d`` with weight ``w``
arriving at timestamp ``t``.  The same ``(s, d)`` pair may appear many times
with different weights and timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

Vertex = str | int
EdgeTuple = Tuple[Vertex, Vertex, float, int]


@dataclass(frozen=True, slots=True)
class StreamEdge:
    """A single graph stream item ``(source, destination, weight, timestamp)``.

    Attributes
    ----------
    source:
        Source vertex identifier.  Any hashable string or integer.
    destination:
        Destination vertex identifier.
    weight:
        Edge weight carried by this stream item (``w_i`` in the paper).
    timestamp:
        Integer arrival timestamp (``t_i``); the unit is dataset specific
        (the paper uses 1-second slices).
    """

    source: Vertex
    destination: Vertex
    weight: float
    timestamp: int

    def as_tuple(self) -> EdgeTuple:
        """Return the item as a plain ``(s, d, w, t)`` tuple."""
        return (self.source, self.destination, self.weight, self.timestamp)

    def reversed(self) -> "StreamEdge":
        """Return the same item with source and destination swapped."""
        return StreamEdge(self.destination, self.source, self.weight, self.timestamp)


class GraphStream:
    """An in-memory, ordered sequence of :class:`StreamEdge` items.

    The class is a thin, validated container around a list of edges that all
    summaries and benchmarks consume.  Edges are kept in arrival order; the
    constructor optionally sorts them by timestamp, which matches how real
    stream logs (and the paper's datasets) are replayed.
    """

    def __init__(self, edges: Iterable[StreamEdge | EdgeTuple], *,
                 sort_by_time: bool = False, name: str = "stream") -> None:
        normalized: List[StreamEdge] = []
        for item in edges:
            if isinstance(item, StreamEdge):
                normalized.append(item)
            else:
                s, d, w, t = item
                normalized.append(StreamEdge(s, d, float(w), int(t)))
        if sort_by_time:
            normalized.sort(key=lambda e: e.timestamp)
        self._edges: List[StreamEdge] = normalized
        self.name = name

    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index: int) -> StreamEdge:
        return self._edges[index]

    @property
    def edges(self) -> Sequence[StreamEdge]:
        """The underlying edge sequence (read-only view by convention)."""
        return self._edges

    @property
    def time_span(self) -> Tuple[int, int]:
        """Return ``(min timestamp, max timestamp)`` over the stream.

        Raises
        ------
        ValueError
            If the stream is empty.
        """
        if not self._edges:
            # Documented public contract (tests and callers catch ValueError);
            # the stream layer stays importable without repro.errors.
            # repro-lint: ok ERR001 — see above
            raise ValueError("time_span is undefined for an empty stream")
        times = [e.timestamp for e in self._edges]
        return (min(times), max(times))

    def vertices(self) -> set:
        """Return the set of distinct vertex identifiers in the stream."""
        verts: set = set()
        for e in self._edges:
            verts.add(e.source)
            verts.add(e.destination)
        return verts

    def distinct_edges(self) -> set:
        """Return the set of distinct ``(source, destination)`` pairs."""
        return {(e.source, e.destination) for e in self._edges}

    def slice(self, t_start: int, t_end: int) -> "GraphStream":
        """Return a new stream restricted to items with ``t_start <= t <= t_end``."""
        subset = [e for e in self._edges if t_start <= e.timestamp <= t_end]
        return GraphStream(subset, name=f"{self.name}[{t_start},{t_end}]")

    def total_weight(self) -> float:
        """Return the sum of all item weights in the stream."""
        return sum(e.weight for e in self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"GraphStream(name={self.name!r}, edges={len(self._edges)}, "
                f"vertices={len(self.vertices())})")
