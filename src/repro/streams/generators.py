"""Synthetic graph stream generators.

The paper's evaluation uses real KONECT traces (Lkml, Wikipedia-talk,
Stackoverflow) plus synthetic streams with controlled skewness (power-law
exponent) and arrival variance (Section VI-D, Figs. 14-15).  This module
implements the synthetic side and is also used to build offline analogues of
the real traces (see :mod:`repro.streams.datasets`).

Two axes of irregularity are modelled, matching the paper:

* **Skewed vertex degrees** — vertices are drawn from a Zipf/power-law
  distribution so a few "head" vertices participate in a large fraction of
  edges (paper Fig. 2).
* **Bursty arrivals** — timestamps are drawn so that some time slices carry
  many more edges than others; the spread is controlled by a variance
  parameter (paper Fig. 3 and Fig. 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.hashing import shard_of
from ..errors import DatasetError
from .edge import GraphStream, StreamEdge


@dataclass(slots=True)
class StreamSpec:
    """Parameters controlling a synthetic graph stream.

    Attributes
    ----------
    num_vertices:
        Number of distinct vertex identifiers available.
    num_edges:
        Number of stream items to generate.
    skewness:
        Power-law exponent for vertex popularity (paper sweeps 1.5 - 3.0).
        Higher values concentrate edges on fewer head vertices.
    time_span:
        Length of the stream in time units; timestamps fall in
        ``[0, time_span)``.
    arrival_variance:
        Controls burstiness of arrivals.  ``0`` gives near-uniform arrivals;
        larger values concentrate edges into hot intervals (paper sweeps the
        per-slice count variance from 600 to 1600).
    max_weight:
        Item weights are drawn uniformly from ``{1, ..., max_weight}``.
    num_bursts:
        Number of hot intervals used when ``arrival_variance > 0``.
    seed:
        Seed for the underlying PRNG; generation is fully deterministic
        given the spec.
    name:
        Human-readable stream name propagated to the :class:`GraphStream`.
    """

    num_vertices: int
    num_edges: int
    skewness: float = 2.0
    time_span: int = 100_000
    arrival_variance: float = 0.0
    max_weight: int = 4
    num_bursts: int = 12
    seed: int = 7
    name: str = "synthetic"

    def validate(self) -> None:
        """Raise :class:`DatasetError` if the spec is not generatable."""
        if self.num_vertices < 2:
            raise DatasetError("a graph stream needs at least 2 vertices")
        if self.num_edges < 1:
            raise DatasetError("a graph stream needs at least 1 edge")
        if self.skewness <= 1.0:
            raise DatasetError("power-law skewness must be > 1.0")
        if self.time_span < 1:
            raise DatasetError("time_span must be positive")
        if self.max_weight < 1:
            raise DatasetError("max_weight must be at least 1")
        if self.arrival_variance < 0:
            raise DatasetError("arrival_variance must be non-negative")


def _powerlaw_probabilities(n: int, exponent: float) -> np.ndarray:
    """Return a normalized power-law probability vector over ``n`` ranks."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _burst_timestamps(rng: np.random.Generator, n: int, time_span: int,
                      variance: float, num_bursts: int) -> np.ndarray:
    """Draw ``n`` timestamps with controllable burstiness.

    A fraction of edges (growing with ``variance``) is concentrated into
    ``num_bursts`` narrow hot windows; the rest is spread uniformly.  This
    mirrors the hot-interval structure of the paper's Fig. 3.
    """
    if variance <= 0:
        return rng.integers(0, time_span, size=n)
    # Map the variance knob into a hot fraction in (0, 0.9].
    hot_fraction = min(0.9, variance / (variance + 800.0))
    n_hot = int(n * hot_fraction)
    n_cold = n - n_hot
    centers = rng.integers(0, time_span, size=num_bursts)
    widths = np.maximum(1, (time_span // (num_bursts * 20)))
    burst_choice = rng.integers(0, num_bursts, size=n_hot)
    hot = centers[burst_choice] + rng.integers(-widths, widths + 1, size=n_hot)
    hot = np.clip(hot, 0, time_span - 1)
    cold = rng.integers(0, time_span, size=n_cold)
    stamps = np.concatenate([hot, cold])
    rng.shuffle(stamps)
    return stamps


def generate_stream(spec: StreamSpec) -> GraphStream:
    """Generate a synthetic :class:`GraphStream` from a :class:`StreamSpec`.

    Sources are drawn from a power-law popularity distribution and
    destinations from a slightly flatter one (real communication graphs have
    more skew on the sending side); self-loops are rerolled.
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    src_probs = _powerlaw_probabilities(spec.num_vertices, spec.skewness)
    dst_probs = _powerlaw_probabilities(spec.num_vertices,
                                        max(1.05, spec.skewness * 0.75))

    sources = rng.choice(spec.num_vertices, size=spec.num_edges, p=src_probs)
    destinations = rng.choice(spec.num_vertices, size=spec.num_edges, p=dst_probs)
    # Reroll self loops once; any that survive get shifted by one (mod n).
    loops = sources == destinations
    if loops.any():
        destinations[loops] = rng.choice(spec.num_vertices, size=int(loops.sum()),
                                         p=dst_probs)
        still = sources == destinations
        destinations[still] = (destinations[still] + 1) % spec.num_vertices

    weights = rng.integers(1, spec.max_weight + 1, size=spec.num_edges)
    timestamps = _burst_timestamps(rng, spec.num_edges, spec.time_span,
                                   spec.arrival_variance, spec.num_bursts)
    order = np.argsort(timestamps, kind="stable")

    edges = [
        StreamEdge(f"v{sources[i]}", f"v{destinations[i]}",
                   float(weights[i]), int(timestamps[i]))
        for i in order
    ]
    return GraphStream(edges, name=spec.name)


def generate_skewness_suite(num_vertices: int = 2_000, num_edges: int = 20_000,
                            exponents: Sequence[float] = (1.5, 1.8, 2.1, 2.4, 2.7, 3.0),
                            seed: int = 11) -> List[GraphStream]:
    """Generate the skewness sweep used by the paper's Fig. 14.

    The paper uses 100 K nodes / 5 M edges per dataset; the defaults here are
    scaled down ~250x so the full sweep runs quickly in pure Python (see the
    substitution notes in DESIGN.md).
    """
    streams = []
    for i, exponent in enumerate(exponents):
        spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                          skewness=exponent, time_span=max(1000, num_edges // 2),
                          arrival_variance=0.0, seed=seed + i,
                          name=f"skew-{exponent:.1f}")
        streams.append(generate_stream(spec))
    return streams


def reskew_to_shards(stream: GraphStream, *, num_shards: int,
                     hot_shards: int = 1, hot_fraction: float = 0.8,
                     shard_seed: int = 0, seed: int = 23,
                     name: Optional[str] = None) -> GraphStream:
    """Bias a stream's partition keys toward a subset of shards.

    Rewrites a fraction of edges so their *source vertex* (the default
    partition key of :class:`~repro.sharding.ShardedSummary`) hashes into the
    first ``hot_shards`` shards of a ``num_shards``-way partition: with
    probability ``hot_fraction`` an edge's source is replaced by a source
    drawn (from the stream's own source population, so the degree skew
    shape is preserved) among vertices owned by the hot shards.  Weights,
    destinations, timestamps, and arrival order are untouched.

    The shard assignment uses :func:`repro.core.hashing.shard_of` with
    ``shard_seed`` — the same function and seed the engine's partitioner
    uses — so the generated imbalance is exactly what a
    ``ShardedSummary(shards=num_shards)`` will observe.  This is the
    ingest-side analogue of a skewed query workload: it exercises the
    engine's worst case, where hash partitioning cannot spread hot keys.

    Parameters
    ----------
    stream:
        The stream to bias; it is not modified.
    num_shards:
        Shard count of the partition the bias is defined against.
    hot_shards:
        How many shards (``[0, hot_shards)``) receive the biased edges.
        Must satisfy ``1 <= hot_shards <= num_shards``.
    hot_fraction:
        Fraction of edges rerouted to hot-shard sources, in ``[0, 1]``.
    shard_seed:
        Seed of the shard-assignment hash (must match the engine's
        ``ShardingConfig.hash_seed`` for the bias to align).
    seed:
        PRNG seed of the rewrite itself (which edges are rerouted, and to
        which hot source).
    name:
        Name of the returned stream; defaults to
        ``"<stream.name>-hot<hot_shards>/<num_shards>"``.

    Returns
    -------
    GraphStream
        A new stream with the same length and time profile.

    Raises
    ------
    DatasetError
        On invalid ``hot_shards`` / ``hot_fraction``, or when no source
        vertex of the stream hashes into the hot shards.
    """
    if not 1 <= hot_shards <= num_shards:
        raise DatasetError("hot_shards must be in [1, num_shards]")
    if not 0.0 <= hot_fraction <= 1.0:
        raise DatasetError("hot_fraction must be in [0, 1]")
    sources = [edge.source for edge in stream]
    hot_sources = [v for v in dict.fromkeys(sources)
                   if shard_of(v, num_shards, shard_seed) < hot_shards]
    if not hot_sources:
        raise DatasetError(
            f"no source vertex of {stream.name!r} hashes into the first "
            f"{hot_shards} of {num_shards} shards")
    rng = np.random.default_rng(seed)
    reroute = rng.random(len(stream)) < hot_fraction
    choices = rng.integers(0, len(hot_sources), size=len(stream))
    edges = [
        StreamEdge(hot_sources[choices[i]] if reroute[i] else edge.source,
                   edge.destination, edge.weight, edge.timestamp)
        for i, edge in enumerate(stream)
    ]
    return GraphStream(edges, name=name or
                       f"{stream.name}-hot{hot_shards}/{num_shards}")


@dataclass(slots=True)
class MixedWorkloadSpec:
    """Parameters of a mixed read/write serving workload.

    Attributes
    ----------
    num_requests:
        Total number of requests generated.
    read_ratio:
        Fraction of requests that are reads, in ``[0, 1]``.  The remaining
        requests are writes that replay the backing stream in order.
    write_batch:
        Stream items carried by each write request (client-side batching).
    arrival:
        ``"closed"`` — requests carry no arrival times; each client issues
        its next request when the previous one completes (the classic
        closed-loop benchmark).  ``"open"`` — requests carry Poisson arrival
        offsets (exponential inter-arrival gaps at :attr:`rate_rps`), the
        open-loop model where load does not slow down when the server does.
    rate_rps:
        Mean arrival rate in requests/second; required (positive) when
        ``arrival="open"``.
    edge_fraction:
        Fraction of reads that are edge queries; the rest are vertex
        queries (alternating out/in direction).
    range_fraction:
        Length of each read's temporal range relative to the stream's time
        span, in ``(0, 1]``.
    burst_factor:
        Open-loop burstiness: during the burst window of each period the
        arrival rate is ``burst_factor * rate_rps``; outside it the rate
        stays ``rate_rps``.  ``1.0`` (default) keeps arrivals homogeneous
        Poisson.  Requires ``burst_period_s > 0`` when > 1; the natural
        stress shape sets ``rate_rps`` below the server's capacity and lets
        bursts exceed it.
    burst_period_s:
        Length of one burst cycle in seconds (burst window + quiet window).
    burst_duty:
        Fraction of each period spent bursting, in ``(0, 1)``.
    seed:
        PRNG seed; generation is fully deterministic given the spec.
    """

    num_requests: int
    read_ratio: float = 0.5
    write_batch: int = 16
    arrival: str = "closed"
    rate_rps: float = 0.0
    edge_fraction: float = 0.7
    range_fraction: float = 0.25
    burst_factor: float = 1.0
    burst_period_s: float = 0.0
    burst_duty: float = 0.5
    seed: int = 17

    def validate(self) -> None:
        """Raise :class:`DatasetError` if the spec is not generatable."""
        if self.num_requests < 1:
            raise DatasetError("a workload needs at least 1 request")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise DatasetError("read_ratio must be in [0, 1]")
        if self.write_batch < 1:
            raise DatasetError("write_batch must be >= 1")
        if self.arrival not in ("closed", "open"):
            raise DatasetError("arrival must be 'closed' or 'open'")
        if self.arrival == "open" and self.rate_rps <= 0:
            raise DatasetError("open-loop arrival needs a positive rate_rps")
        if not 0.0 <= self.edge_fraction <= 1.0:
            raise DatasetError("edge_fraction must be in [0, 1]")
        if not 0.0 < self.range_fraction <= 1.0:
            raise DatasetError("range_fraction must be in (0, 1]")
        if self.burst_factor < 1.0:
            raise DatasetError("burst_factor must be >= 1")
        if self.burst_factor > 1.0:
            if self.arrival != "open":
                raise DatasetError("bursty arrivals need arrival='open'")
            if self.burst_period_s <= 0:
                raise DatasetError("bursty arrivals need a positive "
                                   "burst_period_s")
            if not 0.0 < self.burst_duty < 1.0:
                raise DatasetError("burst_duty must be in (0, 1)")


@dataclass(slots=True)
class ServingOp:
    """One request of a mixed serving workload.

    ``kind`` is ``"write"`` (then :attr:`edges` holds the stream items) or
    ``"read"`` (then :attr:`query` holds a query object implementing the
    ``evaluate`` protocol of :mod:`repro.queries.types`).  ``arrival_s`` is
    the request's offset from workload start in seconds for open-loop
    workloads, ``None`` for closed-loop ones.
    """

    kind: str
    edges: Optional[List[StreamEdge]] = None
    query: Optional[object] = None
    arrival_s: Optional[float] = None


def generate_mixed_workload(stream: GraphStream,
                            spec: MixedWorkloadSpec) -> List[ServingOp]:
    """Generate a mixed read/write request sequence over ``stream``.

    Writes replay the stream in arrival order, :attr:`write_batch` items per
    request, so the write side preserves the stream's temporal structure.
    Reads are interleaved by a deterministic coin with bias
    :attr:`read_ratio` and always target keys already written (edges and
    vertices sampled from the replayed prefix), so serving benchmarks
    measure warm-key traffic, not misses; the first request is always a
    write so reads have a prefix to hit.  Temporal ranges are
    ``range_fraction``-of-span windows at uniform offsets.

    Query objects are built lazily via :mod:`repro.queries.types` (imported
    here to keep the streams layer import-light).

    Raises
    ------
    DatasetError
        On an invalid spec or an empty stream.
    """
    spec.validate()
    if not len(stream):
        raise DatasetError("cannot build a workload over an empty stream")
    from ..queries.types import EdgeQuery, VertexQuery  # local: avoid cycle

    rng = np.random.default_rng(spec.seed)
    t_min, t_max = stream.time_span
    span = max(1, t_max - t_min)
    range_length = max(1, int(span * spec.range_fraction))
    edges = list(stream)
    reads_are_edges = rng.random(spec.num_requests) < spec.edge_fraction
    read_coin = rng.random(spec.num_requests) < spec.read_ratio
    # High bound is exclusive: allow start = t_max - range_length + 1 so a
    # window can end exactly at t_max (the newest data stays queryable).
    starts = rng.integers(t_min, max(t_min + 1, t_max - range_length + 2),
                          size=spec.num_requests)
    if spec.arrival == "open":
        if spec.burst_factor > 1.0:
            # Piecewise-constant-rate Poisson: each gap is a unit
            # exponential divided by the rate in force at the time the
            # previous request arrived (burst rate inside the duty window
            # of each period, base rate outside).
            unit_gaps = rng.exponential(1.0, size=spec.num_requests)
            burst_window = spec.burst_period_s * spec.burst_duty
            arrivals = np.empty(spec.num_requests)
            now = 0.0
            for i in range(spec.num_requests):
                in_burst = (now % spec.burst_period_s) < burst_window
                rate = spec.rate_rps * (spec.burst_factor if in_burst else 1.0)
                now += float(unit_gaps[i]) / rate
                arrivals[i] = now
        else:
            gaps = rng.exponential(1.0 / spec.rate_rps,
                                   size=spec.num_requests)
            arrivals = np.cumsum(gaps)
    ops: List[ServingOp] = []
    cursor = 0          # next stream item to replay
    directions = ("out", "in")
    for index in range(spec.num_requests):
        arrival = float(arrivals[index]) if spec.arrival == "open" else None
        want_read = bool(read_coin[index]) and cursor > 0
        if want_read or cursor >= len(edges):
            if cursor == 0:
                # Stream exhausted before the first write could happen is
                # impossible (len >= 1); this guards read-before-write.
                continue  # pragma: no cover - unreachable by construction
            pick = edges[int(rng.integers(0, cursor))]
            t_start = int(starts[index])
            t_end = min(t_max, t_start + range_length - 1)
            if reads_are_edges[index]:  # noqa: SIM108 - multiline branches read better
                query = EdgeQuery(pick.source, pick.destination, t_start, t_end)
            else:
                query = VertexQuery(pick.source, t_start, t_end,
                                    directions[index % 2])
            ops.append(ServingOp("read", query=query, arrival_s=arrival))
        else:
            chunk = edges[cursor:cursor + spec.write_batch]
            cursor += len(chunk)
            ops.append(ServingOp("write", edges=chunk, arrival_s=arrival))
    return ops


def generate_variance_suite(num_vertices: int = 2_000, num_edges: int = 20_000,
                            variances: Sequence[float] = (600, 800, 1000, 1200, 1400, 1600),
                            seed: int = 13) -> List[GraphStream]:
    """Generate the arrival-variance sweep used by the paper's Fig. 15."""
    streams = []
    for i, variance in enumerate(variances):
        spec = StreamSpec(num_vertices=num_vertices, num_edges=num_edges,
                          skewness=2.0, time_span=max(1000, num_edges // 2),
                          arrival_variance=float(variance), seed=seed + i,
                          name=f"var-{int(variance)}")
        streams.append(generate_stream(spec))
    return streams
