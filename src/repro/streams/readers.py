"""Readers for on-disk graph stream logs.

Real graph stream traces (e.g. the KONECT exports the paper uses) are plain
text files with one edge per line.  This module parses the two common layouts:

* ``src dst timestamp``            (weight defaults to 1)
* ``src dst weight timestamp``

Comment lines starting with ``%`` or ``#`` are skipped, matching the KONECT
file format.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from ..errors import DatasetError
from .edge import GraphStream, StreamEdge


def _parse_line(fields: List[str], line_no: int) -> StreamEdge:
    """Parse a single whitespace/CSV-split record into a :class:`StreamEdge`."""
    if len(fields) == 3:
        src, dst, ts = fields
        weight = 1.0
    elif len(fields) >= 4:
        src, dst, weight_str, ts = fields[0], fields[1], fields[2], fields[3]
        try:
            weight = float(weight_str)
        except ValueError as exc:
            raise DatasetError(f"line {line_no}: bad weight {weight_str!r}") from exc
    else:
        raise DatasetError(f"line {line_no}: expected 3 or 4 fields, got {len(fields)}")
    try:
        timestamp = int(float(ts))
    except ValueError as exc:
        raise DatasetError(f"line {line_no}: bad timestamp {ts!r}") from exc
    return StreamEdge(src, dst, weight, timestamp)


def iter_edges_from_text(lines: Iterable[str], *, delimiter: Optional[str] = None
                         ) -> Iterator[StreamEdge]:
    """Yield edges from an iterable of text lines.

    Parameters
    ----------
    lines:
        Any iterable of strings (an open file, a list in tests, ...).
    delimiter:
        Field separator.  ``None`` (the default) splits on arbitrary
        whitespace; pass ``","`` for CSV exports.
    """
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        fields = line.split(delimiter) if delimiter else line.split()
        yield _parse_line([f.strip() for f in fields if f.strip() != ""], line_no)


def read_stream(path: str | Path, *, delimiter: Optional[str] = None,
                sort_by_time: bool = True, name: Optional[str] = None) -> GraphStream:
    """Load a graph stream from a text/CSV file.

    Parameters
    ----------
    path:
        File to read.
    delimiter:
        Field separator; ``None`` means whitespace.
    sort_by_time:
        Sort items by timestamp after loading (stream replays assume
        non-decreasing time).
    name:
        Stream name; defaults to the file stem.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"stream file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        edges = list(iter_edges_from_text(handle, delimiter=delimiter))
    if not edges:
        raise DatasetError(f"stream file {path} contains no edges")
    return GraphStream(edges, sort_by_time=sort_by_time, name=name or path.stem)


def write_stream(stream: GraphStream, path: str | Path, *,
                 delimiter: str = " ") -> None:
    """Write a stream to disk in ``src dst weight timestamp`` format."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for edge in stream:
            writer.writerow([edge.source, edge.destination, edge.weight,
                             edge.timestamp])
