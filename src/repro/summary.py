"""Abstract interface shared by HIGGS and every baseline summary.

The experiment harness treats all summaries uniformly through this interface:
items are inserted with :meth:`insert` (or in bulk with :meth:`insert_batch`),
temporal range queries are answered with :meth:`edge_query` /
:meth:`vertex_query` (or in bulk with :meth:`query_batch`), and composite
path/subgraph queries have default implementations that decompose into edge
queries exactly as the paper describes (Section III).

Batch execution
---------------
:meth:`insert_batch` and :meth:`query_batch` are the bulk entry points used
by the throughput experiments.  Their default implementations fall back to
the per-item methods, so every summary supports them; structures with a
cheaper bulk path (pre-hashed inserts, memoized range decompositions)
override them with a native implementation that produces *bit-identical*
results.  :meth:`insert_stream` chunks a stream through :meth:`insert_batch`,
so any summary with a native batch path accelerates stream replay for free.

Because every structure honours this one contract, composition layers can
wrap summaries without knowing what is inside them: the sharded engine
(:class:`repro.sharding.ShardedSummary`) partitions a stream across many
inner summaries and is itself a :class:`TemporalGraphSummary`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Final, Iterable, List, Protocol, Sequence, Tuple

from .errors import QueryError
from .streams.edge import GraphStream, StreamEdge, Vertex

#: Default number of items per chunk when replaying a stream through the
#: batch insert path.  Large enough to amortize per-batch setup (hash memo
#: dictionaries), small enough to keep the memo working set in cache.
DEFAULT_BATCH_SIZE: Final = 1024


class SummaryQuery(Protocol):
    """Protocol of batchable query objects (see :mod:`repro.queries.types`).

    Anything with an ``evaluate(summary) -> float`` method qualifies; the
    concrete query dataclasses satisfy it structurally.
    """

    def evaluate(self, summary: "TemporalGraphSummary") -> float:
        """Evaluate this query against ``summary`` and return the estimate."""
        ...  # pragma: no cover - protocol stub


class TemporalGraphSummary(ABC):
    """A summary of a graph stream supporting temporal range queries."""

    #: Human-readable name used in benchmark tables.
    name: str = "summary"

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    @abstractmethod
    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Insert one stream item ``(source, destination, weight, timestamp)``.

        Parameters
        ----------
        source, destination:
            Endpoint identifiers (any hashable string or integer); the edge
            is directed from ``source`` to ``destination``.
        weight:
            Weight carried by this item; repeated arrivals of the same edge
            accumulate.
        timestamp:
            Integer arrival timestamp.  Implementations accept arbitrary
            timestamps; structures that optimize for the natural
            non-decreasing stream order must still store out-of-order items
            correctly.

        Raises
        ------
        InsertionError
            If the item cannot be placed — which indicates an invalid
            configuration, not a full structure (summaries grow or degrade
            gracefully under load).
        """

    def insert_batch(self, edges: Iterable[StreamEdge]) -> int:
        """Insert a batch of stream items; returns the number inserted.

        The default implementation loops over :meth:`insert`.  Summaries with
        a native bulk path (one-pass hashing, deferred aggregation) override
        this; overrides must produce a structure identical to per-item
        insertion in arrival order.
        """
        count = 0
        for edge in edges:
            self.insert(edge.source, edge.destination, edge.weight, edge.timestamp)
            count += 1
        return count

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Remove ``weight`` from a previously inserted item.

        The default implementation inserts a negative weight, which is the
        standard count-min-style deletion; structures with explicit entry
        lookup override this.
        """
        self.insert(source, destination, -weight, timestamp)

    def insert_stream(self, stream: GraphStream | Iterable[StreamEdge], *,
                      batch_size: int = DEFAULT_BATCH_SIZE) -> int:
        """Insert every item of a stream in order, in batches.

        Returns the number of items inserted.  The stream is chunked through
        :meth:`insert_batch` so summaries with a native bulk path benefit
        without the caller changing anything.
        """
        batch_size = max(1, batch_size)
        count = 0
        batch: List[StreamEdge] = []
        append = batch.append
        for edge in stream:
            append(edge)
            if len(batch) >= batch_size:
                count += self.insert_batch(batch)
                batch.clear()
        if batch:
            count += self.insert_batch(batch)
        return count

    # ------------------------------------------------------------------ #
    # temporal range query primitives
    # ------------------------------------------------------------------ #

    @abstractmethod
    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        """Estimated aggregated weight of edge ``source → destination`` in
        ``[t_start, t_end]`` (paper Definition 2).

        Parameters
        ----------
        source, destination:
            Endpoints of the queried directed edge.
        t_start, t_end:
            Inclusive temporal range bounds.

        Returns
        -------
        float
            The estimate.  Sketch-based summaries may overestimate (hash
            collisions) but never underestimate; an edge never seen in the
            range yields ``0.0`` absent collisions.

        Raises
        ------
        QueryError
            On an inverted range or negative timestamps (see
            :meth:`check_range`).
        """

    @abstractmethod
    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        """Estimated aggregated weight of all outgoing (``"out"``) or incoming
        (``"in"``) edges of ``vertex`` in ``[t_start, t_end]``.

        Parameters
        ----------
        vertex:
            The queried vertex identifier.
        t_start, t_end:
            Inclusive temporal range bounds.
        direction:
            ``"out"`` aggregates edges leaving ``vertex``; ``"in"``
            aggregates edges arriving at it.

        Returns
        -------
        float
            The estimate (overestimation only, as for :meth:`edge_query`).

        Raises
        ------
        QueryError
            On an inverted range or negative timestamps.
        ValueError
            On a ``direction`` other than ``"out"`` or ``"in"``.
        """

    def query_batch(self, queries: Sequence[SummaryQuery]) -> List[float]:
        """Answer a batch of query objects; returns one estimate per query.

        Each element must expose ``evaluate(summary)`` (the protocol of
        :mod:`repro.queries.types`).  The default implementation evaluates
        queries one at a time; summaries with shared per-batch state (plan
        caches, memoized hash lifts) override it.  Overrides must return
        estimates bit-identical to the per-item path.
        """
        return [query.evaluate(self) for query in queries]

    # ------------------------------------------------------------------ #
    # composite queries (defaults per Section III)
    # ------------------------------------------------------------------ #

    def path_query(self, path: Sequence[Vertex], t_start: int, t_end: int) -> float:
        """Aggregated weight along a vertex path: the sum of the edge queries
        of every consecutive pair.

        Raises :class:`~repro.errors.QueryError` when ``path`` has fewer
        than two vertices, or (from the underlying edge queries) when the
        range is malformed.
        """
        if len(path) < 2:
            raise QueryError("a path query needs at least two vertices")
        total = 0.0
        for src, dst in zip(path[:-1], path[1:], strict=True):
            total += self.edge_query(src, dst, t_start, t_end)
        return total

    def subgraph_query(self, edges: Sequence[Tuple[Vertex, Vertex]],
                       t_start: int, t_end: int) -> float:
        """Aggregated weight of a set of edges: the sum of their edge queries.

        Raises :class:`~repro.errors.QueryError` when ``edges`` is empty, or
        (from the underlying edge queries) when the range is malformed.
        """
        if not edges:
            raise QueryError("a subgraph query needs at least one edge")
        total = 0.0
        for src, dst in edges:
            total += self.edge_query(src, dst, t_start, t_end)
        return total

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @abstractmethod
    def memory_bytes(self) -> int:
        """Analytic memory footprint of the summary, in bytes.

        Returns
        -------
        int
            The size a space-efficient implementation of the structure
            would occupy, computed from entry counts and the configured
            field widths (DESIGN.md §3.4) — not the Python object graph's
            actual size, which would drown the comparison in interpreter
            overhead.  Deterministic for a given structure state; never
            raises.
        """

    @staticmethod
    def check_range(t_start: int, t_end: int) -> None:
        """Validate a temporal range.

        Raises :class:`QueryError` on an inverted range (``t_end < t_start``)
        or negative timestamps.  Every summary — HIGGS and all baselines —
        funnels its query ranges through this single check so malformed
        ranges fail identically everywhere instead of silently returning 0.
        """
        if t_end < t_start:
            raise QueryError(f"inverted temporal range [{t_start}, {t_end}]")
        if t_start < 0:
            raise QueryError(
                f"temporal range [{t_start}, {t_end}] has a negative timestamp")
