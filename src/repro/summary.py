"""Abstract interface shared by HIGGS and every baseline summary.

The experiment harness treats all summaries uniformly through this interface:
items are inserted with :meth:`insert`, temporal range queries are answered
with :meth:`edge_query` / :meth:`vertex_query`, and composite path/subgraph
queries have default implementations that decompose into edge queries exactly
as the paper describes (Section III).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence, Tuple

from .errors import QueryError
from .streams.edge import GraphStream, StreamEdge, Vertex


class TemporalGraphSummary(ABC):
    """A summary of a graph stream supporting temporal range queries."""

    #: Human-readable name used in benchmark tables.
    name: str = "summary"

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    @abstractmethod
    def insert(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Insert one stream item ``(source, destination, weight, timestamp)``."""

    def delete(self, source: Vertex, destination: Vertex, weight: float,
               timestamp: int) -> None:
        """Remove ``weight`` from a previously inserted item.

        The default implementation inserts a negative weight, which is the
        standard count-min-style deletion; structures with explicit entry
        lookup override this.
        """
        self.insert(source, destination, -weight, timestamp)

    def insert_stream(self, stream: GraphStream | Iterable[StreamEdge]) -> None:
        """Insert every item of a stream in order."""
        for edge in stream:
            self.insert(edge.source, edge.destination, edge.weight, edge.timestamp)

    # ------------------------------------------------------------------ #
    # temporal range query primitives
    # ------------------------------------------------------------------ #

    @abstractmethod
    def edge_query(self, source: Vertex, destination: Vertex,
                   t_start: int, t_end: int) -> float:
        """Estimated aggregated weight of edge ``source → destination`` in
        ``[t_start, t_end]`` (paper Definition 2)."""

    @abstractmethod
    def vertex_query(self, vertex: Vertex, t_start: int, t_end: int,
                     direction: str = "out") -> float:
        """Estimated aggregated weight of all outgoing (``"out"``) or incoming
        (``"in"``) edges of ``vertex`` in ``[t_start, t_end]``."""

    # ------------------------------------------------------------------ #
    # composite queries (defaults per Section III)
    # ------------------------------------------------------------------ #

    def path_query(self, path: Sequence[Vertex], t_start: int, t_end: int) -> float:
        """Aggregated weight along a vertex path: the sum of the edge queries
        of every consecutive pair."""
        if len(path) < 2:
            raise QueryError("a path query needs at least two vertices")
        total = 0.0
        for src, dst in zip(path[:-1], path[1:]):
            total += self.edge_query(src, dst, t_start, t_end)
        return total

    def subgraph_query(self, edges: Sequence[Tuple[Vertex, Vertex]],
                       t_start: int, t_end: int) -> float:
        """Aggregated weight of a set of edges: the sum of their edge queries."""
        if not edges:
            raise QueryError("a subgraph query needs at least one edge")
        total = 0.0
        for src, dst in edges:
            total += self.edge_query(src, dst, t_start, t_end)
        return total

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @abstractmethod
    def memory_bytes(self) -> int:
        """Analytic memory footprint of the summary, in bytes."""

    @staticmethod
    def check_range(t_start: int, t_end: int) -> None:
        """Validate a temporal range, raising :class:`QueryError` if inverted."""
        if t_end < t_start:
            raise QueryError(f"inverted temporal range [{t_start}, {t_end}]")
