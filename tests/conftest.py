"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.baselines.exact import ExactTemporalGraph
from repro.streams.edge import GraphStream, StreamEdge
from repro.streams.generators import StreamSpec, generate_stream


@pytest.fixture(scope="session")
def small_stream() -> GraphStream:
    """A deterministic ~2000-item synthetic stream shared across tests."""
    spec = StreamSpec(num_vertices=120, num_edges=2_000, time_span=2_000,
                      skewness=2.0, arrival_variance=500.0, seed=9,
                      name="test-small")
    return generate_stream(spec)


@pytest.fixture(scope="session")
def tiny_stream() -> GraphStream:
    """A hand-written 12-item stream with known aggregates (paper Fig. 5 style)."""
    edges = [
        ("v1", "v2", 1.0, 1),
        ("v4", "v5", 1.0, 2),
        ("v2", "v3", 2.0, 3),
        ("v3", "v7", 1.0, 3),
        ("v4", "v6", 3.0, 5),
        ("v2", "v3", 1.0, 6),
        ("v3", "v7", 2.0, 7),
        ("v4", "v7", 2.0, 8),
        ("v2", "v3", 2.0, 9),
        ("v1", "v2", 2.0, 10),
        ("v5", "v6", 1.0, 11),
        ("v2", "v4", 4.0, 11),
    ]
    return GraphStream([StreamEdge(*edge) for edge in edges], name="tiny")


@pytest.fixture(scope="session")
def small_truth(small_stream: GraphStream) -> ExactTemporalGraph:
    """Exact ground truth for :func:`small_stream`."""
    truth = ExactTemporalGraph()
    truth.insert_stream(small_stream)
    return truth


@pytest.fixture()
def rng() -> random.Random:
    """A per-test deterministic PRNG."""
    return random.Random(1234)
