"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Make the repo root importable so tests can use ``tools.analyze`` (the
# repro-lint analyzer and the runtime lock-order detector) without install.
REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.baselines.exact import ExactTemporalGraph
from repro.streams.edge import GraphStream, StreamEdge
from repro.streams.generators import StreamSpec, generate_stream


def pytest_configure(config) -> None:
    """Register the ``lockgraph`` and ``faultinject`` markers."""
    config.addinivalue_line(
        "markers",
        "lockgraph: runs under the runtime lock-order detector "
        "(tools.analyze.lockgraph); selected by the static-analysis CI job")
    config.addinivalue_line(
        "markers",
        "faultinject: chaos tests that kill/delay/corrupt shard workers "
        "(tests/faultinject.py); selected by the fault-injection CI job")


@pytest.fixture()
def lock_monitor():
    """Run the test under the runtime lock-order detector.

    Patches ``threading.Lock``/``RLock``/``Condition`` with instrumented
    factories for locks created inside the ``repro`` package, yields the
    :class:`~tools.analyze.lockgraph.LockGraph`, and asserts at teardown
    that the test produced no lock-order cycle and no blocking wait while
    holding another instrumented lock.
    """
    from tools.analyze import lockgraph

    graph = lockgraph.LockGraph()
    uninstall = lockgraph.install(graph)
    try:
        yield graph
    finally:
        uninstall()
    graph.assert_clean()


@pytest.fixture(scope="session")
def small_stream() -> GraphStream:
    """A deterministic ~2000-item synthetic stream shared across tests."""
    spec = StreamSpec(num_vertices=120, num_edges=2_000, time_span=2_000,
                      skewness=2.0, arrival_variance=500.0, seed=9,
                      name="test-small")
    return generate_stream(spec)


@pytest.fixture(scope="session")
def tiny_stream() -> GraphStream:
    """A hand-written 12-item stream with known aggregates (paper Fig. 5 style)."""
    edges = [
        ("v1", "v2", 1.0, 1),
        ("v4", "v5", 1.0, 2),
        ("v2", "v3", 2.0, 3),
        ("v3", "v7", 1.0, 3),
        ("v4", "v6", 3.0, 5),
        ("v2", "v3", 1.0, 6),
        ("v3", "v7", 2.0, 7),
        ("v4", "v7", 2.0, 8),
        ("v2", "v3", 2.0, 9),
        ("v1", "v2", 2.0, 10),
        ("v5", "v6", 1.0, 11),
        ("v2", "v4", 4.0, 11),
    ]
    return GraphStream([StreamEdge(*edge) for edge in edges], name="tiny")


@pytest.fixture(scope="session")
def small_truth(small_stream: GraphStream) -> ExactTemporalGraph:
    """Exact ground truth for :func:`small_stream`."""
    truth = ExactTemporalGraph()
    truth.insert_stream(small_stream)
    return truth


@pytest.fixture()
def rng() -> random.Random:
    """A per-test deterministic PRNG."""
    return random.Random(1234)
