"""Reusable fault-injection harness for the sharded engine's chaos tests.

Three kinds of fault, each aimed at a chosen shard and a chosen operation:

* **kill** — terminate the shard's worker process (process executor only),
  simulating a crash / OOM-kill at an exact point in the call sequence;
* **delay** — sleep before forwarding a call, widening race windows;
* **error** — synthesize a failed :class:`~repro.core.executor.ShardResult`
  without ever reaching the real worker, simulating a poisoned call.

The injection point is :class:`FaultyShardWorker`, a transparent wrapper
implementing the same submit/collect protocol as the workers it wraps, so
it can be swapped into ``ShardedSummary._workers[i]`` (``inject_fault``)
without the engine noticing.  Faults trigger when a submitted method name
matches :attr:`FaultSpec.method` (``"*"`` matches everything) and the
per-spec match counter reaches :attr:`FaultSpec.call_index`.

Also here: :func:`kill_worker` (immediate process kill, no wrapper) and
:func:`corrupt_byte` (flip one byte of a snapshot file on disk), shared by
``test_snapshot.py``, ``test_rebalance.py``, and the serving chaos tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.executor import ShardResult, ShardWorker
from repro.errors import ShardingError
from repro.sharding import ShardedSummary

#: Fault kinds understood by :class:`FaultSpec`.
KINDS = ("kill", "delay", "error")


@dataclass
class FaultSpec:
    """When and how to hurt a shard worker.

    Attributes
    ----------
    kind:
        ``"kill"`` (terminate the worker process), ``"delay"`` (sleep
        ``delay_s`` before forwarding), or ``"error"`` (fail the call with
        ``error`` without forwarding it).
    method:
        Method name that arms the fault; ``"*"`` arms on any call.
        Reserved ops (``__drain__`` etc.) match ``"*"`` too.
    call_index:
        Zero-based index among *matching* calls at which the fault fires
        (``0`` = the first matching call).
    delay_s:
        Sleep for ``"delay"`` faults, in seconds.
    error:
        Exception delivered by ``"error"`` faults; defaults to a
        :class:`~repro.errors.ShardingError` naming the injection.
    once:
        When ``True`` (default) the fault fires a single time; otherwise it
        fires on every matching call from ``call_index`` on.
    """

    kind: str
    method: str = "*"
    call_index: int = 0
    delay_s: float = 0.05
    error: Optional[BaseException] = None
    once: bool = True
    fired: int = field(default=0, init=False)
    _matched: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, "
                             f"got {self.kind!r}")

    def should_fire(self, method: str) -> bool:
        """Advance the match counter for ``method``; True when armed."""
        if self.method != "*" and method != self.method:
            return False
        matched = self._matched
        self._matched += 1
        if matched < self.call_index:
            return False
        if self.once and self.fired:
            return False
        self.fired += 1
        return True


class FaultyShardWorker(ShardWorker):
    """A shard worker wrapper injecting faults per a :class:`FaultSpec`.

    Forwards the submit/collect protocol to ``inner`` untouched except when
    the spec fires:

    * ``"kill"`` terminates the inner worker's child process *before*
      forwarding the submit, so the call lands on a dead worker exactly the
      way a mid-call crash would (requires a process-executor inner worker);
    * ``"delay"`` sleeps, then forwards;
    * ``"error"`` swallows the submit and queues a synthetic failed result,
      keeping the FIFO submit/collect pairing intact.
    """

    def __init__(self, inner: ShardWorker, spec: FaultSpec) -> None:
        self.inner = inner
        self.spec = spec
        self.name = inner.name
        #: FIFO of injection markers, one per uncollected submit: True when
        #: the matching collect must synthesize the spec's error, False when
        #: it must forward to the inner worker.
        self._synthetic: List[bool] = []

    def submit(self, method: str, args: Tuple = (),
               kwargs: Optional[dict] = None) -> None:
        """Forward one submit, applying the fault if the spec fires."""
        if self.spec.should_fire(method):
            if self.spec.kind == "kill":
                kill_inner_process(self.inner)
            elif self.spec.kind == "delay":
                time.sleep(self.spec.delay_s)
            else:  # error
                self._synthetic.append(True)
                return
        self._synthetic.append(False)
        self.inner.submit(method, args, kwargs)

    def collect(self, timeout: Optional[float] = None) -> ShardResult:
        """Return the synthetic failure or the inner worker's result."""
        synthetic = self._synthetic.pop(0) if self._synthetic else False
        if synthetic:
            error = self.spec.error or ShardingError(
                f"injected fault on shard worker {self.name!r}")
            return ShardResult(False, None, error)
        return self.inner.collect(timeout)

    @property
    def outstanding(self) -> int:
        """Uncollected submits, including swallowed (synthetic) ones."""
        return len(self._synthetic)

    @property
    def target(self):
        """The inner worker's target (None for process workers)."""
        return self.inner.target

    def alive(self) -> bool:
        """Liveness of the wrapped worker."""
        return self.inner.alive()

    def close(self) -> None:
        """Close the wrapped worker."""
        self.inner.close()


def inject_fault(engine: ShardedSummary, shard: int, spec: FaultSpec
                 ) -> FaultyShardWorker:
    """Wrap ``engine``'s shard ``shard`` in a :class:`FaultyShardWorker`."""
    wrapper = FaultyShardWorker(engine._workers[shard], spec)
    engine._workers[shard] = wrapper
    return wrapper


def kill_inner_process(worker: ShardWorker) -> None:
    """Terminate a (possibly wrapped) process worker's child, and wait."""
    while isinstance(worker, FaultyShardWorker):
        worker = worker.inner
    process = getattr(worker, "_process", None)
    if process is None:
        raise ShardingError(
            f"worker {worker.name!r} has no child process to kill; "
            f"kill faults need the 'process' executor")
    process.terminate()
    process.join(timeout=5)


def kill_worker(engine: ShardedSummary, shard: int) -> None:
    """Immediately SIGTERM shard ``shard``'s worker process and wait."""
    kill_inner_process(engine._workers[shard])


def corrupt_byte(path: str, offset: int = 0) -> None:
    """Flip one byte of the file at ``path`` in place."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    data[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))
