"""Tests for the bit-shift aggregation of child matrices (Algorithm 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (aggregate_internal, aggregate_leaves,
                                    build_parent_matrix, lift_coordinates)
from repro.core.config import HiggsConfig
from repro.core.hashing import VertexHasher
from repro.core.node import LeafNode


@pytest.fixture()
def config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=10, num_probes=2)


def _fill_leaf(index: int, config: HiggsConfig, hasher: VertexHasher,
               items) -> LeafNode:
    leaf = LeafNode(index, config)
    for source, destination, weight, timestamp in items:
        fs, hs = hasher.split(source)
        fd, hd = hasher.split(destination)
        assert leaf.matrix.insert(fs, fd, hs, hd, weight, timestamp)
    return leaf


class TestLiftCoordinates:
    def test_identity_at_same_level(self, config):
        assert lift_coordinates(5, 3, 1, 1, config) == (5, 3)

    def test_single_level_lift_matches_formula(self, config):
        fingerprint, address = 0b1011001100, 5
        lifted_fp, lifted_addr = lift_coordinates(fingerprint, address, 1, 2, config)
        # One bit (R=1) moves from the top of the fingerprint to the address.
        assert lifted_addr == (address << 1) | (fingerprint >> 9)
        assert lifted_fp == fingerprint & ((1 << 9) - 1)

    def test_multi_level_lift_is_composition(self, config):
        fingerprint, address = 0b1010101010, 7
        step1 = lift_coordinates(fingerprint, address, 1, 2, config)
        step2 = lift_coordinates(*step1, 2, 3, config)
        direct = lift_coordinates(fingerprint, address, 1, 3, config)
        assert step2 == direct

    def test_lift_clamps_when_fingerprint_exhausted(self):
        config = HiggsConfig(leaf_matrix_size=8, fingerprint_bits=2)
        # Lifting far beyond the available bits must not raise.
        fingerprint, address = 0b11, 3
        lifted = lift_coordinates(fingerprint, address, 1, 6, config)
        assert lifted[0] >= 0 and lifted[1] >= 0

    @given(st.integers(0, 2**10 - 1), st.integers(0, 7))
    @settings(max_examples=100)
    def test_lifted_address_in_parent_range(self, fingerprint, address):
        config = HiggsConfig(leaf_matrix_size=8, fingerprint_bits=10)
        _, lifted_addr = lift_coordinates(fingerprint, address, 1, 3, config)
        assert 0 <= lifted_addr < config.matrix_size_at(3)


class TestAggregateLeaves:
    def test_parent_preserves_per_edge_totals(self, config):
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        items_per_leaf = [
            [("a", "b", 1.0, 1), ("a", "c", 2.0, 2)],
            [("a", "b", 3.0, 5), ("d", "c", 1.0, 6)],
            [("e", "f", 4.0, 9)],
            [("a", "b", 1.0, 12), ("e", "f", 2.0, 13)],
        ]
        leaves = [_fill_leaf(i, config, hasher, items)
                  for i, items in enumerate(items_per_leaf)]
        node = aggregate_leaves(0, leaves, config)

        def parent_estimate(source, destination):
            fs, hs = hasher.split(source)
            fd, hd = hasher.split(destination)
            lifted_fs, lifted_hs = lift_coordinates(fs, hs, 1, 2, config)
            lifted_fd, lifted_hd = lift_coordinates(fd, hd, 1, 2, config)
            return node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd)

        assert parent_estimate("a", "b") >= 5.0
        assert parent_estimate("a", "c") >= 2.0
        assert parent_estimate("e", "f") >= 6.0
        assert parent_estimate("d", "c") >= 1.0

    def test_parent_time_range_and_keys(self, config):
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        leaves = [
            _fill_leaf(0, config, hasher, [("a", "b", 1.0, 1)]),
            _fill_leaf(1, config, hasher, [("a", "b", 1.0, 8)]),
            _fill_leaf(2, config, hasher, [("a", "b", 1.0, 15)]),
            _fill_leaf(3, config, hasher, [("a", "b", 1.0, 22)]),
        ]
        node = aggregate_leaves(0, leaves, config)
        assert node.t_min == 1
        assert node.t_max == 22
        assert node.keys == [8, 15, 22]
        assert node.level == 2

    def test_aggregation_includes_overflow_blocks(self, config):
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        leaf = _fill_leaf(0, config, hasher, [("a", "b", 1.0, 4)])
        from repro.core.matrix import CompressedMatrix
        block = CompressedMatrix(config.leaf_matrix_size, 1,
                                 num_probes=config.num_probes,
                                 store_timestamps=True)
        fs, hs = hasher.split("a")
        fd, hd = hasher.split("b")
        block.insert(fs, fd, hs, hd, 7.0, timestamp=4)
        leaf.overflow_blocks.append(block)
        node = aggregate_leaves(0, [leaf], config)
        lifted_fs, lifted_hs = lift_coordinates(fs, hs, 1, 2, config)
        lifted_fd, lifted_hd = lift_coordinates(fd, hd, 1, 2, config)
        assert node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd) >= 8.0


class TestAggregateInternal:
    def test_two_stage_aggregation_preserves_totals(self, config):
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        level2_nodes = []
        for group in range(4):
            leaves = [
                _fill_leaf(group * 4 + i, config, hasher,
                           [("a", "b", 1.0, group * 40 + i * 10 + 1)])
                for i in range(4)
            ]
            level2_nodes.append(aggregate_leaves(group, leaves, config))
        level3 = aggregate_internal(0, level2_nodes, config)
        assert level3.level == 3
        fs, hs = hasher.split("a")
        fd, hd = hasher.split("b")
        lifted_fs, lifted_hs = lift_coordinates(fs, hs, 1, 3, config)
        lifted_fd, lifted_hd = lift_coordinates(fd, hd, 1, 3, config)
        assert level3.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd) >= 16.0
        assert level3.t_min == 1
        assert level3.t_max == 151

    def test_build_parent_matrix_dimensions(self, config):
        assert build_parent_matrix(2, config).size == config.matrix_size_at(2)
        assert build_parent_matrix(3, config).size == config.matrix_size_at(3)
        assert not build_parent_matrix(2, config).store_timestamps
