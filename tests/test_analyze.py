"""Tests for ``tools.analyze``: the repro-lint rules, the driver's
suppression/baseline machinery, and the runtime lock-order detector.

Every rule gets one tripping fixture and a clean twin, so a rule that stops
firing (or starts over-firing) is caught by the suite, not by a broken CI
gate.  The source fixtures are parsed, never executed.
"""

from __future__ import annotations

import json
import textwrap
import threading

import pytest

from tools.analyze import REPO_ROOT, analyze_source, main
from tools.analyze.driver import (BaselineError, apply_baseline,
                                  emit_baseline, load_baseline)
from tools.analyze import lockgraph


def rules_of(source: str, path: str = "src/repro/mod.py"):
    """Rule ids found in ``source`` (dedented), in report order."""
    return [f.rule for f in analyze_source(textwrap.dedent(source), path)]


# --------------------------------------------------------------------- #
# CONC001 — blocking call under a lock
# --------------------------------------------------------------------- #

class TestBlockingUnderLock:
    def test_queue_get_under_lock_trips(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()
            """) == ["CONC001"]

    def test_clean_twin_get_outside_lock(self):
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._lock:
                        size = len(self._pending)
                    return self._queue.get()
            """) == []

    def test_dict_get_and_str_join_not_blocking(self):
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._lock:
                        value = self._cache.get("key")
                        label = ", ".join(self._names)
                        path = os.path.join(base, "x")
                    return value, label, path
            """) == []

    def test_wait_on_held_condition_allowed(self):
        # Condition.wait releases the lock it guards — the correct pattern.
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._state:
                        self._state.wait_for(lambda: self._ready)
            """) == []

    def test_sleep_and_foreign_wait_trip(self):
        found = rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        time.sleep(0.1)
                        self._other_event.wait()
            """)
        assert found == ["CONC001", "CONC001"]


# --------------------------------------------------------------------- #
# CONC002 — guarded-by discipline
# --------------------------------------------------------------------- #

class TestGuardedBy:
    def test_unlocked_access_trips(self):
        findings = analyze_source(textwrap.dedent("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def bad(self):
                    return len(self._items)
            """), "src/repro/mod.py")
        assert [f.rule for f in findings] == ["CONC002"]
        assert findings[0].symbol == "Engine.bad"

    def test_clean_twin_with_lock_held(self):
        assert rules_of("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def good(self):
                    with self._lock:
                        return len(self._items)
            """) == []

    def test_nested_def_loses_the_lock(self):
        # A closure body runs later, outside the lexical with-block.
        assert rules_of("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def bad(self):
                    with self._lock:
                        def later():
                            return self._items
                        return later
            """) == ["CONC002"]

    def test_owner_confinement_form(self):
        found = rules_of("""
            class Worker:
                def __init__(self):
                    self._count = 0  # guarded-by: owner=submit,collect
                def submit(self):
                    self._count += 1
                def collect(self):
                    self._count -= 1
                def peek(self):
                    return self._count
            """)
        assert found == ["CONC002"]  # only peek violates

    def test_init_is_always_exempt(self):
        assert rules_of("""
            class Worker:
                def __init__(self):
                    self._count = 0  # guarded-by: owner=submit
                def submit(self):
                    self._count += 1
            """) == []


# --------------------------------------------------------------------- #
# CONC003 — thread lifecycle
# --------------------------------------------------------------------- #

class TestThreadLifecycle:
    def test_untracked_thread_trips(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target)
                worker.start()
            """) == ["CONC003"]

    def test_daemon_thread_clean(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target, daemon=True)
                worker.start()
            """) == []

    def test_joined_thread_clean(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target)
                worker.start()
                worker.join()
            """) == []

    def test_self_attribute_alias_join_clean(self):
        assert rules_of("""
            class Engine:
                def start(self):
                    self._thread = threading.Thread(target=self._loop)
                    self._thread.start()
                def close(self):
                    runner = self._thread
                    runner.join()
            """) == []

    def test_inline_thread_without_daemon_trips(self):
        assert rules_of("""
            def fire(target):
                threading.Thread(target=target).start()
            """) == ["CONC003"]


# --------------------------------------------------------------------- #
# EXC001 — swallowed broad excepts
# --------------------------------------------------------------------- #

class TestSwallowedExcept:
    def test_broad_pass_trips(self):
        assert rules_of("""
            def risky(op):
                try:
                    op()
                except Exception:
                    pass
            """) == ["EXC001"]

    def test_narrow_pass_clean(self):
        assert rules_of("""
            def risky(op):
                try:
                    op()
                except ValueError:
                    pass
            """) == []

    def test_logged_or_recorded_clean(self):
        assert rules_of("""
            def risky(op, errors):
                try:
                    op()
                except Exception as exc:
                    errors.append(exc)
            """) == []

    def test_broad_contextlib_suppress_trips(self):
        assert rules_of("""
            import contextlib
            def risky(op):
                with contextlib.suppress(Exception):
                    op()
            """) == ["EXC001"]

    def test_narrow_suppress_clean(self):
        assert rules_of("""
            from contextlib import suppress
            def risky(op):
                with suppress(OSError, EOFError):
                    op()
            """) == []


# --------------------------------------------------------------------- #
# ERR001 — builtin raises in src/repro
# --------------------------------------------------------------------- #

class TestBuiltinRaises:
    def test_builtin_raise_trips_inside_repro(self):
        assert rules_of("""
            def check(value):
                if value < 0:
                    raise ValueError("negative")
            """) == ["ERR001"]

    def test_repro_error_clean(self):
        assert rules_of("""
            from repro.errors import QueryError
            def check(value):
                if value < 0:
                    raise QueryError("negative")
            """) == []

    def test_outside_repro_package_exempt(self):
        assert rules_of("""
            def check(value):
                raise ValueError("negative")
            """, path="tools/check_perf.py") == []

    def test_not_implemented_is_idiomatic(self):
        assert rules_of("""
            def stub():
                raise NotImplementedError
            """) == []


# --------------------------------------------------------------------- #
# HOT001 — loops in hot-path functions
# --------------------------------------------------------------------- #

class TestHotPathLoops:
    def test_marked_function_loop_trips(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                total = 0.0
                for value in values:
                    total += value
                return total
            """), "src/repro/core/mod.py")
        assert [f.rule for f in findings] == ["HOT001"]
        assert findings[0].symbol == "kernel"

    def test_unmarked_twin_clean(self):
        assert rules_of("""
            def kernel(values):
                total = 0.0
                for value in values:
                    total += value
                return total
            """) == []

    def test_marked_loop_free_function_clean(self):
        assert rules_of("""
            # hot-path
            def kernel(values):
                return sum(values)
            """) == []


# --------------------------------------------------------------------- #
# driver: suppressions and baseline
# --------------------------------------------------------------------- #

class TestDriver:
    def test_inline_suppression_covers_its_line(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()  # repro-lint: ok CONC001 — bounded
            """) == []

    def test_standalone_suppression_covers_next_line(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        # repro-lint: ok CONC001 — bounded by design
                        self._queue.get()
            """) == []

    def test_suppression_is_rule_specific(self):
        # Suppressing the wrong rule must not hide the finding.
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()  # repro-lint: ok EXC001
            """) == ["CONC001"]

    def test_syntax_error_reports_pseudo_finding(self):
        assert rules_of("def broken(:\n    pass\n") == ["SYNTAX"]

    def test_baseline_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"rule": "HOT001", "path": "x.py",
                                     "symbol": "f", "justification": "  "}]))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_baseline_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_apply_baseline_splits_new_and_stale(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                for value in values:
                    yield value
            """), "src/repro/core/mod.py")
        entries = [
            {"rule": "HOT001", "path": "src/repro/core/mod.py",
             "symbol": "kernel", "justification": "inventoried"},
            {"rule": "HOT001", "path": "src/repro/core/gone.py",
             "symbol": "removed", "justification": "stale"},
        ]
        new, stale = apply_baseline(findings, entries)
        assert new == []
        assert [e["symbol"] for e in stale] == ["removed"]

    def test_emit_baseline_skeleton_round_trips(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                for value in values:
                    yield value
            """), "src/repro/core/mod.py")
        skeleton = json.loads(emit_baseline(findings))
        assert skeleton == [{"rule": "HOT001",
                             "path": "src/repro/core/mod.py",
                             "symbol": "kernel", "justification": ""}]

    def test_repo_src_passes_with_committed_baseline(self):
        """The live acceptance gate: ``python -m tools.analyze src/`` is 0."""
        assert main([str(REPO_ROOT / "src")]) == 0

    def test_repo_src_baseline_only_hides_hot001(self):
        """The committed baseline must contain nothing but the HOT001
        vectorization inventory — concurrency/error findings get fixed."""
        entries = load_baseline(REPO_ROOT / "tools" / "analyze" / "baseline.json")
        assert entries, "committed baseline missing"
        assert {entry["rule"] for entry in entries} == {"HOT001"}


# --------------------------------------------------------------------- #
# runtime lock-order detector
# --------------------------------------------------------------------- #

class TestLockGraph:
    def test_opposite_orders_form_a_cycle(self):
        graph = lockgraph.LockGraph()
        lock_a = lockgraph.InstrumentedLock(graph, "Lock@a")
        lock_b = lockgraph.InstrumentedLock(graph, "Lock@b")

        def thread_one():
            with lock_a, lock_b:
                pass

        def thread_two():
            with lock_b, lock_a:
                pass

        thread_one()
        worker = threading.Thread(target=thread_two)
        worker.start()
        worker.join()

        cycles = graph.cycles()
        assert cycles and set(cycles[0]) == {"Lock@a", "Lock@b"}
        with pytest.raises(AssertionError, match="lock-order cycle"):
            graph.assert_clean()

    def test_consistent_order_is_clean(self):
        graph = lockgraph.LockGraph()
        lock_a = lockgraph.InstrumentedLock(graph, "Lock@a")
        lock_b = lockgraph.InstrumentedLock(graph, "Lock@b")
        for _ in range(3):
            with lock_a, lock_b:
                pass
        assert graph.cycles() == []
        graph.assert_clean()

    def test_wait_while_holding_another_lock_flagged(self):
        graph = lockgraph.LockGraph()
        outer = lockgraph.InstrumentedLock(graph, "Lock@outer")
        cond = lockgraph.InstrumentedCondition(graph, "Cond@inner")
        with outer, cond:
            cond.wait(timeout=0.01)
        assert graph.wait_violations
        assert graph.wait_violations[0]["holding"] == ["Lock@outer"]
        with pytest.raises(AssertionError, match="blocking wait"):
            graph.assert_clean()
        graph.assert_clean(allow_waits=True)  # cycles-only mode passes

    def test_wait_on_own_condition_alone_is_clean(self):
        graph = lockgraph.LockGraph()
        cond = lockgraph.InstrumentedCondition(graph, "Cond@only")
        with cond:
            cond.wait(timeout=0.01)
        assert graph.wait_violations == []
        graph.assert_clean()

    def test_reentrant_rlock_adds_no_self_edge(self):
        graph = lockgraph.LockGraph()
        rlock = lockgraph.InstrumentedRLock(graph, "RLock@r")
        with rlock, rlock:
            pass
        assert graph.edges == {}
        graph.assert_clean()

    def test_install_instruments_only_matching_modules(self):
        graph = lockgraph.LockGraph()
        uninstall = lockgraph.install(graph, modules=(__name__,))
        try:
            assert isinstance(threading.Lock(),
                              lockgraph.InstrumentedLock)
            assert isinstance(threading.Condition(),
                              lockgraph.InstrumentedCondition)
        finally:
            uninstall()
        assert threading.Lock is lockgraph._REAL_LOCK

    def test_default_install_leaves_foreign_modules_raw(self):
        graph = lockgraph.LockGraph()
        uninstall = lockgraph.install(graph)  # repro-only filter
        try:
            # This module is not part of the repro package.
            assert not isinstance(threading.Lock(),
                                  lockgraph.InstrumentedLock)
        finally:
            uninstall()

    def test_wait_for_predicate_wakes_across_threads(self):
        graph = lockgraph.LockGraph()
        cond = lockgraph.InstrumentedCondition(graph, "Cond@box")
        box = {"ready": False}

        def producer():
            with cond:
                box["ready"] = True
                cond.notify_all()

        worker = threading.Thread(target=producer)
        with cond:
            worker.start()
            assert cond.wait_for(lambda: box["ready"], timeout=5)
        worker.join()
        graph.assert_clean()
