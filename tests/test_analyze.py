"""Tests for ``tools.analyze``: the repro-lint rules, the driver's
suppression/baseline machinery, and the runtime lock-order detector.

Every rule gets one tripping fixture and a clean twin, so a rule that stops
firing (or starts over-firing) is caught by the suite, not by a broken CI
gate.  The source fixtures are parsed, never executed.
"""

from __future__ import annotations

import json
import textwrap
import threading
from pathlib import Path

import pytest

from tools.analyze import REPO_ROOT, analyze_source, main
from tools.analyze.callgraph import build_package_graph
from tools.analyze.driver import (BaselineError, apply_baseline,
                                  emit_baseline, load_baseline,
                                  load_or_build_graph, render_counts)
from tools.analyze.propagate import (EntrySpec, check_exception_contracts,
                                     check_pickle_safety,
                                     check_transitive_blocking,
                                     run_interprocedural)
from tools.analyze import lockgraph


def rules_of(source: str, path: str = "src/repro/mod.py"):
    """Rule ids found in ``source`` (dedented), in report order."""
    return [f.rule for f in analyze_source(textwrap.dedent(source), path)]


def make_package(root: Path, files: dict) -> Path:
    """Write a mini package named ``pkg`` under ``root`` for graph tests."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    if not (pkg / "__init__.py").exists():
        (pkg / "__init__.py").write_text("")
    return pkg


def graph_of(root: Path, files: dict):
    return build_package_graph(make_package(root, files))


def edges_of(graph):
    return {(site.caller, site.callee) for site in graph.calls}


@pytest.fixture(scope="module")
def repo_graph():
    """The call graph over the live ``src/repro`` package, built once."""
    graph, _ = load_or_build_graph()
    return graph


# --------------------------------------------------------------------- #
# CONC001 — blocking call under a lock
# --------------------------------------------------------------------- #

class TestBlockingUnderLock:
    def test_queue_get_under_lock_trips(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()
            """) == ["CONC001"]

    def test_clean_twin_get_outside_lock(self):
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._lock:
                        size = len(self._pending)
                    return self._queue.get()
            """) == []

    def test_dict_get_and_str_join_not_blocking(self):
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._lock:
                        value = self._cache.get("key")
                        label = ", ".join(self._names)
                        path = os.path.join(base, "x")
                    return value, label, path
            """) == []

    def test_wait_on_held_condition_allowed(self):
        # Condition.wait releases the lock it guards — the correct pattern.
        assert rules_of("""
            class Engine:
                def good(self):
                    with self._state:
                        self._state.wait_for(lambda: self._ready)
            """) == []

    def test_sleep_and_foreign_wait_trip(self):
        found = rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        time.sleep(0.1)
                        self._other_event.wait()
            """)
        assert found == ["CONC001", "CONC001"]


# --------------------------------------------------------------------- #
# CONC002 — guarded-by discipline
# --------------------------------------------------------------------- #

class TestGuardedBy:
    def test_unlocked_access_trips(self):
        findings = analyze_source(textwrap.dedent("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def bad(self):
                    return len(self._items)
            """), "src/repro/mod.py")
        assert [f.rule for f in findings] == ["CONC002"]
        assert findings[0].symbol == "Engine.bad"

    def test_clean_twin_with_lock_held(self):
        assert rules_of("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def good(self):
                    with self._lock:
                        return len(self._items)
            """) == []

    def test_nested_def_loses_the_lock(self):
        # A closure body runs later, outside the lexical with-block.
        assert rules_of("""
            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                def bad(self):
                    with self._lock:
                        def later():
                            return self._items
                        return later
            """) == ["CONC002"]

    def test_owner_confinement_form(self):
        found = rules_of("""
            class Worker:
                def __init__(self):
                    self._count = 0  # guarded-by: owner=submit,collect
                def submit(self):
                    self._count += 1
                def collect(self):
                    self._count -= 1
                def peek(self):
                    return self._count
            """)
        assert found == ["CONC002"]  # only peek violates

    def test_init_is_always_exempt(self):
        assert rules_of("""
            class Worker:
                def __init__(self):
                    self._count = 0  # guarded-by: owner=submit
                def submit(self):
                    self._count += 1
            """) == []


# --------------------------------------------------------------------- #
# CONC003 — thread lifecycle
# --------------------------------------------------------------------- #

class TestThreadLifecycle:
    def test_untracked_thread_trips(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target)
                worker.start()
            """) == ["CONC003"]

    def test_daemon_thread_clean(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target, daemon=True)
                worker.start()
            """) == []

    def test_joined_thread_clean(self):
        assert rules_of("""
            def run(target):
                worker = threading.Thread(target=target)
                worker.start()
                worker.join()
            """) == []

    def test_self_attribute_alias_join_clean(self):
        assert rules_of("""
            class Engine:
                def start(self):
                    self._thread = threading.Thread(target=self._loop)
                    self._thread.start()
                def close(self):
                    runner = self._thread
                    runner.join()
            """) == []

    def test_inline_thread_without_daemon_trips(self):
        assert rules_of("""
            def fire(target):
                threading.Thread(target=target).start()
            """) == ["CONC003"]


# --------------------------------------------------------------------- #
# EXC001 — swallowed broad excepts
# --------------------------------------------------------------------- #

class TestSwallowedExcept:
    def test_broad_pass_trips(self):
        assert rules_of("""
            def risky(op):
                try:
                    op()
                except Exception:
                    pass
            """) == ["EXC001"]

    def test_narrow_pass_clean(self):
        assert rules_of("""
            def risky(op):
                try:
                    op()
                except ValueError:
                    pass
            """) == []

    def test_logged_or_recorded_clean(self):
        assert rules_of("""
            def risky(op, errors):
                try:
                    op()
                except Exception as exc:
                    errors.append(exc)
            """) == []

    def test_broad_contextlib_suppress_trips(self):
        assert rules_of("""
            import contextlib
            def risky(op):
                with contextlib.suppress(Exception):
                    op()
            """) == ["EXC001"]

    def test_narrow_suppress_clean(self):
        assert rules_of("""
            from contextlib import suppress
            def risky(op):
                with suppress(OSError, EOFError):
                    op()
            """) == []


# --------------------------------------------------------------------- #
# ERR001 — builtin raises in src/repro
# --------------------------------------------------------------------- #

class TestBuiltinRaises:
    def test_builtin_raise_trips_inside_repro(self):
        assert rules_of("""
            def check(value):
                if value < 0:
                    raise ValueError("negative")
            """) == ["ERR001"]

    def test_repro_error_clean(self):
        assert rules_of("""
            from repro.errors import QueryError
            def check(value):
                if value < 0:
                    raise QueryError("negative")
            """) == []

    def test_outside_repro_package_exempt(self):
        assert rules_of("""
            def check(value):
                raise ValueError("negative")
            """, path="tools/check_perf.py") == []

    def test_not_implemented_is_idiomatic(self):
        assert rules_of("""
            def stub():
                raise NotImplementedError
            """) == []


# --------------------------------------------------------------------- #
# HOT001 — loops in hot-path functions
# --------------------------------------------------------------------- #

class TestHotPathLoops:
    def test_marked_function_loop_trips(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                total = 0.0
                for value in values:
                    total += value
                return total
            """), "src/repro/core/mod.py")
        assert [f.rule for f in findings] == ["HOT001"]
        assert findings[0].symbol == "kernel"

    def test_unmarked_twin_clean(self):
        assert rules_of("""
            def kernel(values):
                total = 0.0
                for value in values:
                    total += value
                return total
            """) == []

    def test_marked_loop_free_function_clean(self):
        assert rules_of("""
            # hot-path
            def kernel(values):
                return sum(values)
            """) == []

    def test_bulk_twin_annotation_suppresses_loops(self):
        # The scalar fallback of a vectorized kernel declares its bulk twin
        # and keeps its loop without a baseline entry.
        assert rules_of("""
            # hot-path: bulk=kernel_array
            def kernel(values):
                total = 0.0
                for value in values:
                    total += value
                return total

            def kernel_array(values):
                return values.sum()
            """) == []

    def test_dangling_bulk_twin_is_a_finding(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path: bulk=kernel_array
            def kernel(values):
                for value in values:
                    pass
            """), "src/repro/core/mod.py")
        assert [f.rule for f in findings] == ["HOT001"]
        assert "kernel_array" in findings[0].message
        assert "not defined" in findings[0].message

    def test_dotted_bulk_twin_accepted_without_resolution(self):
        # Cross-module twins (vectorized.lift_array) cannot be resolved by
        # the per-file pass; the dotted form is accepted as-is.
        assert rules_of("""
            # hot-path: bulk=vectorized.kernel_array
            def kernel(values):
                for value in values:
                    pass
            """) == []

    def test_bulk_call_suffix_makes_loops_compliant(self):
        # A hot-path function whose body drives *_array kernels may keep
        # orchestration loops: the per-item math already moved to numpy.
        assert rules_of("""
            # hot-path
            def kernel(matrix, items):
                rows = matrix.probe_rows_array(items)
                return [tuple(row) for row in rows.tolist()]
            """) == []

    def test_numpy_rooted_call_makes_loops_compliant(self):
        assert rules_of("""
            # hot-path
            def kernel(columns):
                stacked = np.concatenate(columns)
                return [c for c in stacked.tolist()]
            """) == []

    def test_non_bulk_calls_still_trip(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(matrix, items):
                out = []
                for item in items:
                    out.append(matrix.probe_rows(item))
                return out
            """), "src/repro/core/mod.py")
        assert [f.rule for f in findings] == ["HOT001"]


# --------------------------------------------------------------------- #
# driver: suppressions and baseline
# --------------------------------------------------------------------- #

class TestDriver:
    def test_inline_suppression_covers_its_line(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()  # repro-lint: ok CONC001 — bounded
            """) == []

    def test_standalone_suppression_covers_next_line(self):
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        # repro-lint: ok CONC001 — bounded by design
                        self._queue.get()
            """) == []

    def test_suppression_is_rule_specific(self):
        # Suppressing the wrong rule must not hide the finding.
        assert rules_of("""
            class Engine:
                def bad(self):
                    with self._lock:
                        self._queue.get()  # repro-lint: ok EXC001
            """) == ["CONC001"]

    def test_syntax_error_reports_pseudo_finding(self):
        assert rules_of("def broken(:\n    pass\n") == ["SYNTAX"]

    def test_baseline_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"rule": "HOT001", "path": "x.py",
                                     "symbol": "f", "justification": "  "}]))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_baseline_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_apply_baseline_splits_new_and_stale(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                for value in values:
                    yield value
            """), "src/repro/core/mod.py")
        entries = [
            {"rule": "HOT001", "path": "src/repro/core/mod.py",
             "symbol": "kernel", "justification": "inventoried"},
            {"rule": "HOT001", "path": "src/repro/core/gone.py",
             "symbol": "removed", "justification": "stale"},
        ]
        new, stale = apply_baseline(findings, entries)
        assert new == []
        assert [e["symbol"] for e in stale] == ["removed"]

    def test_emit_baseline_skeleton_round_trips(self):
        findings = analyze_source(textwrap.dedent("""
            # hot-path
            def kernel(values):
                for value in values:
                    yield value
            """), "src/repro/core/mod.py")
        skeleton = json.loads(emit_baseline(findings))
        assert skeleton == [{"rule": "HOT001",
                             "path": "src/repro/core/mod.py",
                             "symbol": "kernel", "justification": ""}]

    def test_repo_src_passes_with_committed_baseline(self):
        """The live acceptance gate: ``python -m tools.analyze src/`` is 0."""
        assert main([str(REPO_ROOT / "src")]) == 0

    def test_repo_src_baseline_is_inventoried_rules_only(self):
        """The committed baseline must contain nothing but the HOT001
        vectorization inventory and the two justified ERR002 entries for
        runtime-guarded internal metric paths — every other concurrency/
        error finding gets fixed, not baselined."""
        entries = load_baseline(REPO_ROOT / "tools" / "analyze" / "baseline.json")
        assert entries, "committed baseline missing"
        assert {entry["rule"] for entry in entries} == {"HOT001", "ERR002"}
        err002 = [e for e in entries if e["rule"] == "ERR002"]
        assert {e["symbol"] for e in err002} == {
            "ServingEngine.latency_percentiles", "ServingEngine.stats"}


# --------------------------------------------------------------------- #
# runtime lock-order detector
# --------------------------------------------------------------------- #

class TestLockGraph:
    def test_opposite_orders_form_a_cycle(self):
        graph = lockgraph.LockGraph()
        lock_a = lockgraph.InstrumentedLock(graph, "Lock@a")
        lock_b = lockgraph.InstrumentedLock(graph, "Lock@b")

        def thread_one():
            with lock_a, lock_b:
                pass

        def thread_two():
            with lock_b, lock_a:
                pass

        thread_one()
        worker = threading.Thread(target=thread_two)
        worker.start()
        worker.join()

        cycles = graph.cycles()
        assert cycles and set(cycles[0]) == {"Lock@a", "Lock@b"}
        with pytest.raises(AssertionError, match="lock-order cycle"):
            graph.assert_clean()

    def test_consistent_order_is_clean(self):
        graph = lockgraph.LockGraph()
        lock_a = lockgraph.InstrumentedLock(graph, "Lock@a")
        lock_b = lockgraph.InstrumentedLock(graph, "Lock@b")
        for _ in range(3):
            with lock_a, lock_b:
                pass
        assert graph.cycles() == []
        graph.assert_clean()

    def test_wait_while_holding_another_lock_flagged(self):
        graph = lockgraph.LockGraph()
        outer = lockgraph.InstrumentedLock(graph, "Lock@outer")
        cond = lockgraph.InstrumentedCondition(graph, "Cond@inner")
        with outer, cond:
            cond.wait(timeout=0.01)
        assert graph.wait_violations
        assert graph.wait_violations[0]["holding"] == ["Lock@outer"]
        with pytest.raises(AssertionError, match="blocking wait"):
            graph.assert_clean()
        graph.assert_clean(allow_waits=True)  # cycles-only mode passes

    def test_wait_on_own_condition_alone_is_clean(self):
        graph = lockgraph.LockGraph()
        cond = lockgraph.InstrumentedCondition(graph, "Cond@only")
        with cond:
            cond.wait(timeout=0.01)
        assert graph.wait_violations == []
        graph.assert_clean()

    def test_reentrant_rlock_adds_no_self_edge(self):
        graph = lockgraph.LockGraph()
        rlock = lockgraph.InstrumentedRLock(graph, "RLock@r")
        with rlock, rlock:
            pass
        assert graph.edges == {}
        graph.assert_clean()

    def test_install_instruments_only_matching_modules(self):
        graph = lockgraph.LockGraph()
        uninstall = lockgraph.install(graph, modules=(__name__,))
        try:
            assert isinstance(threading.Lock(),
                              lockgraph.InstrumentedLock)
            assert isinstance(threading.Condition(),
                              lockgraph.InstrumentedCondition)
        finally:
            uninstall()
        assert threading.Lock is lockgraph._REAL_LOCK

    def test_default_install_leaves_foreign_modules_raw(self):
        graph = lockgraph.LockGraph()
        uninstall = lockgraph.install(graph)  # repro-only filter
        try:
            # This module is not part of the repro package.
            assert not isinstance(threading.Lock(),
                                  lockgraph.InstrumentedLock)
        finally:
            uninstall()

    def test_wait_for_predicate_wakes_across_threads(self):
        graph = lockgraph.LockGraph()
        cond = lockgraph.InstrumentedCondition(graph, "Cond@box")
        box = {"ready": False}

        def producer():
            with cond:
                box["ready"] = True
                cond.notify_all()

        worker = threading.Thread(target=producer)
        with cond:
            worker.start()
            assert cond.wait_for(lambda: box["ready"], timeout=5)
        worker.join()
        graph.assert_clean()


# --------------------------------------------------------------------- #
# call graph — resolution edge cases
# --------------------------------------------------------------------- #

class TestCallGraphResolution:
    def test_decorated_function_keeps_its_edges(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            def deco(fn):
                return fn

            @deco
            def leaf():
                raise ValueError("x")

            def caller():
                return leaf()
        """})
        assert ("pkg.mod.caller", "pkg.mod.leaf") in edges_of(graph)

    def test_nested_def_resolves_to_its_enclosing_qname(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            def outer():
                def inner():
                    raise ValueError("y")
                return inner()
        """})
        assert ("pkg.mod.outer", "pkg.mod.outer.inner") in edges_of(graph)

    def test_functools_partial_resolves_both_spellings(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            import functools
            from functools import partial

            def psum(a, b):
                return a + b

            def attr_form():
                return functools.partial(psum, 1)

            class Engine:
                def _step(self, x):
                    return x

                def method_form(self):
                    return partial(self._step)
        """})
        edges = edges_of(graph)
        assert ("pkg.mod.attr_form", "pkg.mod.psum") in edges
        assert ("pkg.mod.Engine.method_form", "pkg.mod.Engine._step") in edges

    def test_self_dispatch_reaches_subclass_overrides(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            class Base:
                def insert(self, x):
                    return self._apply(x)

                def _apply(self, x):
                    raise NotImplementedError

            class Child(Base):
                def _apply(self, x):
                    return x + 1
        """})
        edges = edges_of(graph)
        assert ("pkg.mod.Base.insert", "pkg.mod.Base._apply") in edges
        assert ("pkg.mod.Base.insert", "pkg.mod.Child._apply") in edges

    def test_repo_dispatch_through_temporal_graph_summary(self, repo_graph):
        """``TemporalGraphSummary.insert_batch`` calling ``self.insert``
        must reach every summary implementation, across modules."""
        edges = edges_of(repo_graph)
        caller = "repro.summary.TemporalGraphSummary.insert_batch"
        for impl in ("repro.core.higgs.Higgs.insert",
                     "repro.baselines.exact.ExactTemporalGraph.insert",
                     "repro.sharding.engine.ShardedSummary.insert"):
            assert (caller, impl) in edges

    def test_graph_fingerprint_is_stable_and_source_sensitive(self, tmp_path):
        files = {"mod.py": "def f():\n    return 1\n"}
        # Anchor relpaths at each tree's root so only content matters.
        first = build_package_graph(make_package(tmp_path / "a", files),
                                    repo_root=tmp_path / "a")
        second = build_package_graph(make_package(tmp_path / "b", files),
                                     repo_root=tmp_path / "b")
        changed = build_package_graph(
            make_package(tmp_path / "c",
                         {"mod.py": "def f():\n    return 2\n"}),
            repo_root=tmp_path / "c")
        assert first.source_key == second.source_key
        assert first.source_key != changed.source_key


# --------------------------------------------------------------------- #
# CONC004 — transitive blocking through the call graph
# --------------------------------------------------------------------- #

class TestTransitiveBlocking:
    def test_lock_held_chain_to_blocking_primitive_trips(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            import queue
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def _drain(self):
                    return self._queue.get()

                def bad(self):
                    with self._lock:
                        return self._drain()
        """})
        findings = check_transitive_blocking(graph)
        assert [f.rule for f in findings] == ["CONC004"]
        assert findings[0].symbol == "Engine.bad"
        # The report names the full chain down to the primitive.
        assert "_drain" in findings[0].message
        assert "queue.Queue.get" in findings[0].message

    def test_clean_twin_calls_outside_the_lock(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            import queue
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def _drain(self):
                    return self._queue.get()

                def good(self):
                    with self._lock:
                        size = 1
                    return self._drain()
        """})
        assert check_transitive_blocking(graph) == []

    def test_depth_zero_left_to_conc001(self, tmp_path):
        """A lock-held call to an internal method *named* like a blocking
        primitive is CONC001's syntactic territory — not re-reported."""
        graph = graph_of(tmp_path, {"mod.py": """
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def collect(self):
                    time.sleep(0.1)

                def depth_zero(self):
                    with self._lock:
                        self.collect()
        """})
        assert check_transitive_blocking(graph) == []

    def test_recursive_chain_terminates_and_trips(self, tmp_path):
        """The fixpoint must terminate on self-recursion and still find
        the blocking primitive past the cycle."""
        graph = graph_of(tmp_path, {"mod.py": """
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def _spin(self, n):
                    if n:
                        self._spin(n - 1)
                    time.sleep(0.01)

                def bad(self):
                    with self._lock:
                        self._spin(3)
        """})
        findings = check_transitive_blocking(graph)
        assert [f.symbol for f in findings] == ["Engine.bad"]
        assert "time.sleep" in findings[0].message

    def test_repo_has_no_transitive_blocking_under_locks(self, repo_graph):
        assert check_transitive_blocking(repo_graph) == []


# --------------------------------------------------------------------- #
# ERR002 — exception contracts of public entry points
# --------------------------------------------------------------------- #

SPEC = EntrySpec(entry_classes=("Api",), entry_modules=())


class TestExceptionContracts:
    def test_builtin_escaping_entry_point_trips(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            def _helper(value):
                if value < 0:
                    raise ValueError("negative")
                return value

            class Api:
                def entry(self, value):
                    return _helper(value)
        """})
        findings = check_exception_contracts(graph, SPEC)
        assert [f.symbol for f in findings] == ["Api.entry"]
        assert "ValueError" in findings[0].message
        assert "_helper" in findings[0].message  # escape chain reported

    def test_clean_twin_handler_converts_to_package_error(self, tmp_path):
        graph = graph_of(tmp_path, {
            "errors.py": """
                class PkgError(Exception):
                    pass
            """,
            "mod.py": """
                from .errors import PkgError

                def _helper(value):
                    if value < 0:
                        raise ValueError("negative")
                    return value

                class Api:
                    def safe(self, value):
                        try:
                            return _helper(value)
                        except ValueError as exc:
                            raise PkgError(str(exc)) from exc

                    def typed(self):
                        raise PkgError("sanctioned contract")
            """})
        assert check_exception_contracts(graph, SPEC) == []

    def test_private_methods_are_not_entry_points(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            class Api:
                def _internal(self):
                    raise ValueError("mine")
        """})
        assert check_exception_contracts(graph, SPEC) == []

    def test_mutual_recursion_terminates_and_propagates(self, tmp_path):
        graph = graph_of(tmp_path, {"mod.py": """
            def ping(n):
                if n <= 0:
                    raise TypeError("done")
                return pong(n - 1)

            def pong(n):
                return ping(n - 1)

            class Api:
                def entry(self):
                    return ping(3)
        """})
        findings = check_exception_contracts(graph, SPEC)
        assert [f.symbol for f in findings] == ["Api.entry"]
        assert "TypeError" in findings[0].message

    def test_entry_modules_cover_public_functions(self, tmp_path):
        graph = graph_of(tmp_path, {
            "snap/__init__.py": "",
            "snap/disk.py": """
                def write(value):
                    return int(value)

                def _private(value):
                    return int(value)
            """})
        spec = EntrySpec(entry_classes=(), entry_modules=("snap.disk",))
        findings = check_exception_contracts(graph, spec)
        assert [f.symbol for f in findings] == ["write"]

    def test_repo_entry_points_leak_only_baselined_paths(self, repo_graph):
        """Live contract: the only builtin-exception escapes from
        ``ShardedSummary``/``ServingEngine``/snapshot entry points are the
        two justified (baselined) internal-metric chains."""
        symbols = {f.symbol for f in check_exception_contracts(repo_graph)}
        assert symbols == {"ServingEngine.latency_percentiles",
                           "ServingEngine.stats"}


# --------------------------------------------------------------------- #
# PICK001 — pickle safety across worker/snapshot boundaries
# --------------------------------------------------------------------- #

class TestPickleSafety:
    FIXTURE = {"work.py": """
        import threading

        class Payload:
            def __init__(self):
                self.values = []

        class Holder:
            def __init__(self):
                self._cond = threading.Condition()

        class GoodFactory:
            def __init__(self, size):
                self.size = size

            def __call__(self):
                return Payload()

        class BadFactory:
            def __init__(self):
                self._lock = threading.Lock()
                self.holder = Holder()
                self.hook = lambda x: x

            def __call__(self):
                return Payload()

        def boot(make_shard_worker):
            worker = make_shard_worker("thread", BadFactory())
            clean = make_shard_worker("thread", GoodFactory(4))
            return worker, clean
    """}

    def test_unpicklable_state_behind_boundary_trips(self, tmp_path):
        graph = graph_of(tmp_path, self.FIXTURE)
        assert graph.boundary_factories == {"pkg.work.BadFactory",
                                            "pkg.work.GoodFactory"}
        findings = check_pickle_safety(graph)
        symbols = {f.symbol for f in findings}
        assert "BadFactory._lock" in symbols      # direct lock attribute
        assert "BadFactory.hook" in symbols       # lambda attribute
        assert "Holder._cond" in symbols          # transitive reachability
        assert all(not s.startswith("GoodFactory") for s in symbols)
        holder = next(f for f in findings if f.symbol == "Holder._cond")
        assert "BadFactory -> holder:Holder -> _cond" in holder.message

    def test_clean_twin_factory_with_plain_state(self, tmp_path):
        graph = graph_of(tmp_path, {"work.py": """
            class Payload:
                def __init__(self):
                    self.values = []

            class GoodFactory:
                def __init__(self, size):
                    self.size = size

                def __call__(self):
                    return Payload()

            def boot(make_shard_worker):
                return make_shard_worker("thread", GoodFactory(4))
        """})
        assert check_pickle_safety(graph) == []

    def test_lambda_through_submit_boundary_trips(self, tmp_path):
        graph = graph_of(tmp_path, {"work.py": """
            def send(worker):
                worker.submit(lambda item: item)
        """})
        findings = check_pickle_safety(graph)
        assert [f.symbol for f in findings] == ["send"]
        assert "lambda" in findings[0].message

    def test_repo_boundary_classes_are_pickle_safe(self, repo_graph):
        assert check_pickle_safety(repo_graph) == []
        # The live boundary discovery found the real shard factory.
        assert "repro.sharding.engine.HiggsShardFactory" in \
            repo_graph.boundary_factories


# --------------------------------------------------------------------- #
# driver integration: interprocedural rules, cache, --ci, counts
# --------------------------------------------------------------------- #

CONC004_SEED = {"mod.py": """
    import queue
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()
            self._queue = queue.Queue()

        def _drain(self):
            return self._queue.get()

        def bad(self):
            with self._lock:
                return self._drain()
"""}

ERR002_SEED = {"mod.py": """
    class ServingEngine:
        def submit_write(self, value):
            return self._coerce(value)

        def _coerce(self, value):
            return int(value)
"""}

PICK001_SEED = {"work.py": """
    import threading

    class Factory:
        def __init__(self):
            self._lock = threading.Lock()

        def __call__(self):
            return 1

    def boot(make_shard_worker):
        return make_shard_worker("process", Factory())
"""}


class TestDriverInterprocedural:
    def _run_on(self, monkeypatch, tmp_path, files, extra_args=()):
        """Run the full driver CLI over a seeded mini package, with the
        interprocedural package root pointed at it (as CI does for
        ``src/repro``); no baseline so seeds surface directly."""
        import tools.analyze.driver as driver
        pkg = make_package(tmp_path, files)
        monkeypatch.setattr(driver, "PACKAGE_ROOT", pkg)
        return main([str(pkg), "--no-baseline", *extra_args])

    def test_seeded_conc004_fails_the_build(self, monkeypatch, tmp_path,
                                            capsys):
        assert self._run_on(monkeypatch, tmp_path, CONC004_SEED) == 1
        assert "CONC004" in capsys.readouterr().out

    def test_seeded_err002_fails_the_build(self, monkeypatch, tmp_path,
                                           capsys):
        assert self._run_on(monkeypatch, tmp_path, ERR002_SEED) == 1
        assert "ERR002" in capsys.readouterr().out

    def test_seeded_pick001_fails_the_build(self, monkeypatch, tmp_path,
                                            capsys):
        assert self._run_on(monkeypatch, tmp_path, PICK001_SEED) == 1
        assert "PICK001" in capsys.readouterr().out

    def test_clean_package_passes(self, monkeypatch, tmp_path):
        assert self._run_on(monkeypatch, tmp_path, {"mod.py": """
            def fine():
                return 1
        """}) == 0

    def test_no_interprocedural_flag_skips_the_rules(self, monkeypatch,
                                                     tmp_path):
        assert self._run_on(monkeypatch, tmp_path, CONC004_SEED,
                            ("--no-interprocedural",)) == 0

    def test_inline_suppression_covers_interprocedural_finding(
            self, monkeypatch, tmp_path):
        files = {"mod.py": CONC004_SEED["mod.py"].replace(
            "return self._drain()",
            "return self._drain()  # repro-lint: ok CONC004 - bounded")}
        assert self._run_on(monkeypatch, tmp_path, files) == 0

    def test_ci_promotes_stale_baseline_to_exit_2(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def fine():\n    return 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([
            {"rule": "HOT001", "path": "src/repro/gone.py",
             "symbol": "removed", "justification": "stale on purpose"}]))
        argv = [str(clean), "--baseline", str(baseline)]
        assert main(argv) == 0                       # warning only
        assert main([*argv, "--ci"]) == 2            # hard error under CI
        assert "stale baseline" in capsys.readouterr().err

    def test_cache_roundtrip_and_source_invalidation(self, tmp_path):
        pkg = make_package(tmp_path, {"mod.py": "def f():\n    return 1\n"})
        cache = tmp_path / "cache" / "graph.pkl"
        first, hit_first = load_or_build_graph(pkg, cache_path=cache)
        second, hit_second = load_or_build_graph(pkg, cache_path=cache)
        assert (hit_first, hit_second) == (False, True)
        assert second.source_key == first.source_key
        (pkg / "mod.py").write_text("def f():\n    return 2\n")
        third, hit_third = load_or_build_graph(pkg, cache_path=cache)
        assert not hit_third                      # fingerprint mismatch
        assert third.source_key != first.source_key

    def test_corrupt_cache_is_a_miss_not_an_error(self, tmp_path):
        pkg = make_package(tmp_path, {"mod.py": "def f():\n    return 1\n"})
        cache = tmp_path / "graph.pkl"
        cache.write_bytes(b"not a pickle")
        graph, hit = load_or_build_graph(pkg, cache_path=cache)
        assert not hit and "pkg.mod.f" in graph.functions

    def test_render_counts_table_covers_every_rule(self, tmp_path):
        table = render_counts([], [], [])
        for rule in ("CONC001", "CONC004", "ERR002", "PICK001", "HOT001"):
            assert rule in table

    def test_run_interprocedural_sorts_like_the_driver(self, tmp_path):
        graph = graph_of(tmp_path, {**CONC004_SEED, **PICK001_SEED})
        findings = run_interprocedural(graph, SPEC)
        keys = [(f.path, f.line, f.rule) for f in findings]
        assert keys == sorted(keys) and len(findings) >= 2
