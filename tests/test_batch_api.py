"""Tests for the batch execution layer: ``insert_batch`` / ``query_batch``.

The batch-API contract is *bit-identical* results: a summary built through
``insert_batch`` must equal one built through per-item ``insert`` calls, and
``query_batch`` must return exactly the estimates the per-item query path
returns — on the same fig10-13-style workloads the paper evaluates.
"""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.baselines import (AuxoTime, AuxoTimeCompact, Horae, HoraeCompact,
                             PGSS)
from repro.baselines.auxo import Auxo
from repro.baselines.countmin import CountMinSketch
from repro.baselines.exact import ExactTemporalGraph
from repro.baselines.tcm import TCM
from repro.bench.methods import make_methods
from repro.queries.workload import QueryWorkloadGenerator, WorkloadConfig
from repro.streams.edge import StreamEdge
from repro.summary import TemporalGraphSummary


def _pairwise_summaries(small_stream):
    """Two freshly built instances of every TRQ method plus Exact."""
    first = dict(make_methods(small_stream))
    second = dict(make_methods(small_stream))
    first["Exact"] = ExactTemporalGraph()
    second["Exact"] = ExactTemporalGraph()
    return first, second


class TestInsertBatchEquivalence:
    def test_all_methods_build_identical_summaries(self, small_stream):
        per_item, batched = _pairwise_summaries(small_stream)
        for summary in per_item.values():
            for edge in small_stream:
                summary.insert(edge.source, edge.destination,
                               edge.weight, edge.timestamp)
        for summary in batched.values():
            inserted = summary.insert_stream(small_stream, batch_size=257)
            assert inserted == len(small_stream)

        t_min, t_max = small_stream.time_span
        edges = sorted(small_stream.distinct_edges())[:60]
        vertices = sorted(small_stream.vertices())[:30]
        ranges = [(t_min, t_max), (t_min, (t_min + t_max) // 2),
                  ((t_min + t_max) // 2, t_max)]
        for name in per_item:
            a, b = per_item[name], batched[name]
            assert a.memory_bytes() == b.memory_bytes(), name
            for source, destination in edges:
                for t0, t1 in ranges:
                    assert a.edge_query(source, destination, t0, t1) == \
                        b.edge_query(source, destination, t0, t1), name
            for vertex in vertices:
                for direction in ("out", "in"):
                    assert a.vertex_query(vertex, t_min, t_max,
                                          direction=direction) == \
                        b.vertex_query(vertex, t_min, t_max,
                                       direction=direction), name

    def test_default_insert_batch_returns_count(self, tiny_stream):
        summary = ExactTemporalGraph()
        assert summary.insert_batch(list(tiny_stream)) == len(tiny_stream)

    def test_insert_stream_chunks_through_batches(self, tiny_stream):
        one_chunk = ExactTemporalGraph()
        many_chunks = ExactTemporalGraph()
        assert one_chunk.insert_stream(tiny_stream) == len(tiny_stream)
        assert many_chunks.insert_stream(tiny_stream, batch_size=3) == \
            len(tiny_stream)
        t_min, t_max = tiny_stream.time_span
        for edge in tiny_stream:
            assert one_chunk.edge_query(edge.source, edge.destination,
                                        t_min, t_max) == \
                many_chunks.edge_query(edge.source, edge.destination,
                                       t_min, t_max)

    def test_non_temporal_batch_helpers(self):
        items = [(f"s{i % 7}", f"d{i % 5}", float(i % 3 + 1))
                 for i in range(200)]
        for factory in (lambda: TCM(width=16, depth=2),
                        lambda: Auxo(matrix_size=8, fingerprint_bits=10)):
            a, b = factory(), factory()
            for source, destination, weight in items:
                a.insert(source, destination, weight)
            assert b.insert_batch(items) == len(items)
            for source, destination, _w in items[:50]:
                assert a.edge_query(source, destination) == \
                    b.edge_query(source, destination)

    def test_countmin_update_batch(self):
        items = [(f"k{i % 11}", float(i % 4 + 1)) for i in range(100)]
        a, b = CountMinSketch(64, depth=3), CountMinSketch(64, depth=3)
        for item, weight in items:
            a.update(item, weight)
        assert b.update_batch(items) == len(items)
        for item, _w in items[:20]:
            assert a.estimate(item) == b.estimate(item)


class TestQueryBatchEquivalence:
    @pytest.fixture(scope="class")
    def loaded_methods(self, small_stream):
        methods = dict(make_methods(small_stream))
        methods["Exact"] = ExactTemporalGraph()
        for summary in methods.values():
            summary.insert_stream(small_stream)
        return methods

    @pytest.fixture(scope="class")
    def fig_workloads(self, small_stream):
        """Edge/vertex/path/subgraph workloads in the shape of Figs. 10-13."""
        generator = QueryWorkloadGenerator(small_stream, WorkloadConfig(seed=5))
        t_min, t_max = small_stream.time_span
        span = t_max - t_min + 1
        return {
            "fig10_edge": generator.edge_queries(60, max(1, span // 10)),
            "fig11_vertex": generator.vertex_queries(30, max(1, span // 10)),
            "fig12_path": generator.path_queries(15, 4, max(1, span // 3)),
            "fig13_subgraph": generator.subgraph_queries(6, 10,
                                                         max(1, span // 3)),
        }

    def test_query_batch_bit_identical(self, loaded_methods, fig_workloads):
        for name, summary in loaded_methods.items():
            for workload_name, queries in fig_workloads.items():
                batch = summary.query_batch(queries)
                per_item = [query.evaluate(summary) for query in queries]
                assert batch == per_item, (name, workload_name)

    def test_query_batch_mixed_workload(self, loaded_methods, fig_workloads):
        mixed = [query for queries in fig_workloads.values()
                 for query in queries]
        for name, summary in loaded_methods.items():
            assert summary.query_batch(mixed) == \
                [query.evaluate(summary) for query in mixed], name


class TestBatchExceptionSafety:
    """A mid-batch exception must leave the tree consistent and accounted."""

    _CONFIG = dict(leaf_matrix_size=4, bucket_entries=1, fingerprint_bits=12,
                   num_probes=1, enable_overflow_blocks=False)

    def test_generator_exception_keeps_tree_usable(self):
        summary = Higgs(HiggsConfig(**self._CONFIG))

        def poisoned(limit: int):
            for i in range(10_000):
                if i == limit:
                    raise RuntimeError("stream died")
                yield StreamEdge(f"s{i}", f"d{i}", 1.0, i)

        with pytest.raises(RuntimeError, match="stream died"):
            summary.insert_batch(poisoned(150))
        # Every applied item is accounted and the plan cache invalidates.
        assert summary.tree.items_inserted == 150
        assert summary.tree.version > 0
        # Groups completed before the failure were aggregated, so continued
        # per-item insertion cascades cleanly (no out-of-order materialize).
        for i in range(150, 700):
            summary.insert(f"s{i}", f"d{i}", 1.0, i)
        assert summary.height >= 3
        assert summary.edge_query("s10", "d10", 0, 1_000) >= 1.0

    def test_fresh_probe_tuples_per_item_are_safe(self):
        """insert_hashed_batch must not mis-accumulate when the caller builds
        new probe-row tuples for every item (ids must not be recycled)."""
        per_item = Higgs(HiggsConfig(**self._CONFIG))
        batched = Higgs(HiggsConfig(**self._CONFIG))
        edges = [(f"v{i % 9}", f"w{(i * 5) % 7}", 1.0, i % 40)
                 for i in range(800)]
        for source, destination, weight, ts in edges:
            per_item.insert(source, destination, weight, ts)

        hasher = batched._hasher
        size = batched.config.leaf_matrix_size

        def fresh_items():
            for source, destination, weight, ts in edges:
                fs, hs = hasher.split(source)
                fd, hd = hasher.split(destination)
                yield (fs, fd,
                       tuple([(hs + i * (2 * fs + 1)) % size
                              for i in range(batched.config.num_probes)]),
                       tuple([(hd + i * (2 * fd + 1)) % size
                              for i in range(batched.config.num_probes)]),
                       weight, ts)

        assert batched.tree.insert_hashed_batch(fresh_items()) == len(edges)
        assert per_item.stats() == batched.stats()
        for source, destination, _w, _t in edges[:100]:
            assert per_item.edge_query(source, destination, 0, 50) == \
                batched.edge_query(source, destination, 0, 50)


class TestBatchedWorkloads:
    def test_batched_chunks_preserve_order(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.edge_queries(25, 100)
        batches = generator.batched(queries, 10)
        assert [len(batch) for batch in batches] == [10, 10, 5]
        assert [q for batch in batches for q in batch] == queries

    def test_edge_query_batches(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        batches = generator.edge_query_batches(30, 100, batch_size=8)
        assert sum(len(batch) for batch in batches) == 30

    def test_repeated_range_edge_queries(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.repeated_range_edge_queries(40, 100,
                                                        distinct_ranges=4)
        assert len(queries) == 40
        distinct = {(q.t_start, q.t_end) for q in queries}
        assert len(distinct) <= 4
