"""Tests for the benchmark harness: method factory, context cache, reporting,
and smoke runs of every per-figure experiment at miniature scale."""

from __future__ import annotations

import json

import pytest

from repro.errors import BenchmarkError
from repro.bench import (METHOD_ORDER, clear_context_cache, format_table,
                         get_context, make_methods, pivot, save_rows,
                         scaled_higgs_config)
from repro.bench import experiments
from repro.streams.datasets import load_dataset

TINY_SCALE = 0.02
TINY_DATASETS = ("lkml",)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


class TestMethodFactory:
    def test_all_methods_constructed_in_order(self):
        stream = load_dataset("lkml", scale=TINY_SCALE)
        methods = make_methods(stream)
        assert list(methods) == METHOD_ORDER
        for name, summary in methods.items():
            assert summary.name == name

    def test_include_subset_and_unknown_rejected(self):
        stream = load_dataset("lkml", scale=TINY_SCALE)
        methods = make_methods(stream, include=["HIGGS", "PGSS"])
        assert list(methods) == ["HIGGS", "PGSS"]
        with pytest.raises(BenchmarkError):
            make_methods(stream, include=["HIGGS", "NotAMethod"])

    def test_scaled_config_tracks_stream_size(self):
        small = scaled_higgs_config(1_000)
        large = scaled_higgs_config(1_000_000)
        assert large.fingerprint_bits > small.fingerprint_bits
        assert small.leaf_matrix_size == 16


class TestContext:
    def test_context_is_cached_and_fully_inserted(self):
        first = get_context("lkml", scale=TINY_SCALE, include=["HIGGS"])
        second = get_context("lkml", scale=TINY_SCALE, include=["HIGGS"])
        assert first is second
        assert first.methods["HIGGS"].tree.items_inserted == len(first.stream)
        assert first.insert_seconds["HIGGS"] > 0
        assert first.span_length >= 1

    def test_different_scales_get_different_contexts(self):
        a = get_context("lkml", scale=TINY_SCALE, include=["HIGGS"])
        b = get_context("lkml", scale=TINY_SCALE * 2, include=["HIGGS"])
        assert a is not b
        assert len(b.stream) > len(a.stream)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"method": "HIGGS", "aae": 0.0}, {"method": "PGSS", "aae": 12.5}]
        table = format_table(rows, title="fig-x")
        lines = table.splitlines()
        assert lines[0] == "fig-x"
        assert "method" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_save_rows_writes_text_and_json(self, tmp_path):
        rows = [{"method": "HIGGS", "value": 1}]
        path = save_rows(rows, tmp_path / "out" / "fig.txt", title="t")
        assert path.exists()
        data = json.loads(path.with_suffix(".json").read_text())
        assert data[0]["method"] == "HIGGS"

    def test_pivot_reshapes_long_rows(self):
        rows = [
            {"Lq": 10, "method": "HIGGS", "aae": 0.0},
            {"Lq": 10, "method": "PGSS", "aae": 2.0},
            {"Lq": 100, "method": "HIGGS", "aae": 0.1},
        ]
        wide = pivot(rows, index="Lq", column="method", value="aae")
        assert wide[0] == {"Lq": 10, "HIGGS": 0.0, "PGSS": 2.0}
        assert wide[1]["HIGGS"] == 0.1


class TestExperimentSmokeRuns:
    """Each per-figure runner produces non-empty, well-formed rows at tiny scale."""

    METHODS = ("HIGGS", "PGSS")

    def test_motivation_experiments(self):
        assert len(experiments.run_table2(scale=TINY_SCALE)) == 3
        skew = experiments.run_fig2_skewness(scale=TINY_SCALE,
                                             datasets=TINY_DATASETS)
        irregularity = experiments.run_fig3_irregularity(scale=TINY_SCALE,
                                                         datasets=TINY_DATASETS)
        assert skew[0]["max_out_degree"] >= 1
        assert irregularity[0]["peak_edges_per_bin"] >= 1

    def test_edge_and_vertex_query_experiments(self):
        rows = experiments.run_fig10_edge_queries(
            datasets=TINY_DATASETS, scale=TINY_SCALE, range_lengths=(10,),
            queries_per_length=10, methods=self.METHODS)
        assert {row["method"] for row in rows} == set(self.METHODS)
        assert all(row["underestimates"] == 0 for row in rows
                   if row["method"] == "HIGGS")
        rows = experiments.run_fig11_vertex_queries(
            datasets=TINY_DATASETS, scale=TINY_SCALE, range_lengths=(10,),
            queries_per_length=8, methods=self.METHODS)
        assert all(row["queries"] > 0 for row in rows)

    def test_path_and_subgraph_experiments(self):
        rows = experiments.run_fig12_path_queries(
            datasets=TINY_DATASETS, scale=TINY_SCALE, hops=(1, 2),
            queries_per_setting=4, methods=self.METHODS)
        assert {row["hops"] for row in rows} == {1, 2}
        rows = experiments.run_fig13_subgraph_queries(
            datasets=TINY_DATASETS, scale=TINY_SCALE, sizes=(3,),
            queries_per_setting=2, methods=self.METHODS)
        assert all(row["subgraph_size"] == 3 for row in rows)

    def test_irregularity_experiments(self):
        rows = experiments.run_fig14_skewness(
            skewness_values=(1.5, 2.5), num_vertices=120, num_edges=600,
            vertex_queries=5, methods=self.METHODS)
        assert {row["skewness"] for row in rows} == {1.5, 2.5}
        rows = experiments.run_fig15_variance(
            variance_values=(600,), num_vertices=120, num_edges=600,
            vertex_queries=5, methods=self.METHODS)
        assert all(row["variance"] == 600 for row in rows)

    def test_update_and_space_experiments(self):
        rows = experiments.run_fig16_17_update_cost(
            datasets=TINY_DATASETS, scale=TINY_SCALE, methods=self.METHODS)
        assert all(row["throughput_eps"] > 0 for row in rows)
        rows = experiments.run_fig18_delete_throughput(
            datasets=TINY_DATASETS, scale=TINY_SCALE, methods=self.METHODS)
        assert all(row["throughput_dps"] > 0 for row in rows)
        rows = experiments.run_fig19_space_cost(
            datasets=TINY_DATASETS, scale=TINY_SCALE, methods=self.METHODS)
        assert all(row["memory_mb"] > 0 for row in rows)

    def test_ablation_and_parameter_experiments(self):
        rows = experiments.run_fig20a_parallelization(
            datasets=TINY_DATASETS, scale=TINY_SCALE)
        assert {row["variant"] for row in rows} == {
            "HIGGS-serial", "HIGGS-batched", "HIGGS-threaded"}
        rows = experiments.run_fig20b_mmb_and_ob(
            datasets=TINY_DATASETS, scale=TINY_SCALE, edge_queries=10)
        assert {row["variant"] for row in rows} == {
            "HIGGS", "HIGGS-noMMB", "HIGGS-noOB", "HIGGS-noMMB-noOB"}
        rows = experiments.run_fig21_parameters(
            datasets=TINY_DATASETS, scale=TINY_SCALE, leaf_sizes=(8, 16),
            edge_queries=10)
        assert {row["d1"] for row in rows} == {8, 16}


class TestServeDrivers:
    """Regression tests for the serving-benchmark client drivers: client
    errors surface as ``BenchmarkError`` (never silently absorbed into the
    throughput numbers) and joins are bounded, so a wedged client aborts the
    run with attribution instead of hanging the bench."""

    @staticmethod
    def _ops(n=8):
        from repro.streams.edge import StreamEdge
        from repro.streams.generators import ServingOp
        return [ServingOp("write", edges=[StreamEdge("a", "b", 1.0, i)])
                for i in range(n)]

    @staticmethod
    def _engine(backend=None):
        from repro.baselines.exact import ExactTemporalGraph
        from repro.serving import ServingEngine
        return ServingEngine(backend or ExactTemporalGraph())

    def test_closed_loop_happy_path(self):
        from repro.bench.experiments.serve import _drive_closed_loop
        with self._engine() as engine:
            timing = _drive_closed_loop(engine, self._ops(), clients=3)
        assert timing["wall_s"] >= 0.0

    def test_closed_loop_client_error_raises_benchmark_error(self):
        from repro.baselines.exact import ExactTemporalGraph
        from repro.bench.experiments.serve import _drive_closed_loop

        class Exploding(ExactTemporalGraph):
            def insert_batch(self, edges):
                raise RuntimeError("disk on fire")

        with self._engine(Exploding()) as engine:
            with pytest.raises(BenchmarkError, match="clients failed") as info:
                _drive_closed_loop(engine, self._ops(), clients=2)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_closed_loop_stuck_client_reported(self, monkeypatch):
        import time as time_mod

        from repro.bench.experiments import serve

        class _HangingFuture:
            def result(self, timeout=None):
                time_mod.sleep(2.0)

        class _HangingEngine:
            def submit_write(self, edges):
                return _HangingFuture()

            def submit_query(self, query):
                return _HangingFuture()

        monkeypatch.setattr(serve, "_CLIENT_JOIN_TIMEOUT_S", 0.05)
        with pytest.raises(BenchmarkError, match="still running"):
            serve._drive_closed_loop(_HangingEngine(), self._ops(2), clients=2)

    def test_open_loop_counts_rejections_but_raises_on_failures(self):
        from repro.bench.experiments.serve import _drive_open_loop
        from repro.errors import ServingError

        class _Future:
            def __init__(self, exc=None):
                self._exc = exc

            def result(self, timeout=None):
                if self._exc is not None:
                    raise self._exc
                return 1

        class _StubEngine:
            """Rejects every third submit, fails every fourth future."""

            def __init__(self):
                self.count = 0

            def submit_write(self, edges):
                self.count += 1
                if self.count % 3 == 0:
                    raise ServingError("queue full")
                if self.count % 4 == 0:
                    return _Future(RuntimeError("shard died"))
                return _Future()

            def submit_query(self, query):
                return self.submit_write(None)

        stub = _StubEngine()
        with pytest.raises(BenchmarkError, match="accepted open-loop") as info:
            _drive_open_loop(stub, self._ops(12))
        assert isinstance(info.value.__cause__, RuntimeError)

        class _CleanRejecting(_StubEngine):
            def submit_write(self, edges):
                self.count += 1
                if self.count % 3 == 0:
                    raise ServingError("queue full")
                return _Future()

        timing = _drive_open_loop(_CleanRejecting(), self._ops(12))
        assert timing["rejected"] == 4
        assert timing["accepted"] == 8
