"""Tests for the boundary-search range decomposition (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.boundary import boundary_search, decompose_range
from repro.core.config import HiggsConfig
from repro.core.hashing import VertexHasher
from repro.core.tree import HiggsTree


@pytest.fixture()
def loaded_tree():
    config = HiggsConfig(leaf_matrix_size=4, bucket_entries=1, fingerprint_bits=12,
                         num_probes=1, enable_overflow_blocks=False)
    hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
    tree = HiggsTree(config)
    for i in range(600):
        fs, hs = hasher.split(f"s{i}")
        fd, hd = hasher.split(f"d{i}")
        tree.insert_hashed(fs, fd, hs, hd, 1.0, i)
    return tree


class TestBoundarySearch:
    def test_empty_tree_yields_empty_decomposition(self):
        config = HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                             fingerprint_bits=12, num_probes=1)
        tree = HiggsTree(config)
        result = boundary_search(tree, 0, 100)
        assert result.aggregated_nodes == []
        assert result.boundary_leaves == []
        assert result.matrices_accessed == 0

    def test_full_range_uses_aggregated_nodes(self, loaded_tree):
        result = boundary_search(loaded_tree, 0, 599)
        assert result.aggregated_nodes, "a full-span query should use aggregates"
        # Aggregated nodes plus boundary leaves must cover far fewer matrices
        # than the total number of leaves.
        assert result.matrices_accessed < loaded_tree.leaf_count

    def test_aggregated_nodes_fully_inside_range(self, loaded_tree):
        t_start, t_end = 100, 450
        result = boundary_search(loaded_tree, t_start, t_end)
        for node in result.aggregated_nodes:
            assert node.t_min >= t_start
            assert node.t_max <= t_end

    def test_boundary_leaves_overlap_range(self, loaded_tree):
        t_start, t_end = 123, 321
        result = boundary_search(loaded_tree, t_start, t_end)
        for leaf in result.boundary_leaves:
            assert leaf.overlaps(t_start, t_end)

    def test_no_leaf_is_covered_twice(self, loaded_tree):
        """No leaf may be both under a used aggregate and in the boundary list."""
        t_start, t_end = 50, 500
        result = boundary_search(loaded_tree, t_start, t_end)
        fanout = loaded_tree.config.fanout
        covered = set()
        for node in result.aggregated_nodes:
            width = fanout ** (node.level - 1)
            covered.update(range(node.index * width, (node.index + 1) * width))
        boundary = {leaf.index for leaf in result.boundary_leaves}
        assert not covered & boundary

    def test_out_of_range_query_touches_nothing(self, loaded_tree):
        result = boundary_search(loaded_tree, 10_000, 20_000)
        assert result.aggregated_nodes == []
        assert result.boundary_leaves == []

    def test_single_timestamp_query_touches_few_leaves(self, loaded_tree):
        result = boundary_search(loaded_tree, 300, 300)
        assert result.aggregated_nodes == []
        assert 1 <= len(result.boundary_leaves) <= 3

    def test_nodes_visited_counted(self, loaded_tree):
        result = boundary_search(loaded_tree, 0, 599)
        assert result.nodes_visited > 0

    def test_nodes_visited_excludes_phantom_children(self):
        """Regression: positions past the last leaf are not real nodes.

        With 5 leaves (fanout 4) the implicit tree spans 16 leaf slots; the
        old counter charged the phantom subtrees under slots 5-15 as
        "visited", inflating the efficiency metric.  A full-range search
        inspects exactly 4 real nodes: the root position, the complete
        level-2 group, the partial level-2 position, and leaf 4.
        """
        config = HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                             fingerprint_bits=12, num_probes=1,
                             enable_overflow_blocks=False)
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        tree = HiggsTree(config)
        i = 0
        while tree.leaf_count < 5:
            fs, hs = hasher.split(f"s{i}")
            fd, hd = hasher.split(f"d{i}")
            tree.insert_hashed(fs, fd, hs, hd, 1.0, i)
            i += 1
        assert tree.leaf_count == 5
        t_max = max(leaf.t_max for leaf in tree.leaves)
        result = boundary_search(tree, 0, t_max)
        # root (3,0) + (2,0) complete + (2,1) partial + leaf 4 = 4 real nodes;
        # phantom positions (2,2), (2,3) and leaves 5-7 must not count.
        assert result.nodes_visited == 4

    def test_nodes_visited_counts_real_nodes_on_full_tree(self, loaded_tree):
        """Every visited position of a full-range search is a real node, so
        the count is bounded by the number of nodes that exist."""
        result = boundary_search(loaded_tree, 0, 599)
        real_nodes = loaded_tree.leaf_count + sum(
            len(nodes) for nodes in loaded_tree.internal_levels()) + 1
        assert result.nodes_visited <= real_nodes

    def test_decompose_range_wrapper(self, loaded_tree):
        nodes, leaves = decompose_range(loaded_tree, 0, 599)
        result = boundary_search(loaded_tree, 0, 599)
        assert len(nodes) == len(result.aggregated_nodes)
        assert len(leaves) == len(result.boundary_leaves)

    def test_larger_ranges_do_not_explode_matrix_accesses(self, loaded_tree):
        small = boundary_search(loaded_tree, 290, 310)
        large = boundary_search(loaded_tree, 0, 599)
        # Thanks to aggregation the full-span query touches a number of
        # matrices logarithmic in the leaf count, not linear.
        assert large.matrices_accessed <= small.matrices_accessed + \
            4 * loaded_tree.height + 4
