"""Tests for the experiment-harness command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main, run_experiment
from repro.errors import BenchmarkError


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig10"])
        assert args.experiment == "fig10"
        assert args.scale == 0.1
        assert args.results_dir == "results"
        assert not args.no_save

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_every_paper_experiment_is_registered(self):
        expected = {"table2", "fig2", "fig3", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig18", "fig19", "fig20a",
                    "fig20b", "fig21", "batch", "sharded", "serve", "rebalance"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(BenchmarkError):
            run_experiment("fig99", scale=0.01, results_dir=str(tmp_path))

    def test_help_epilogue_is_generated_from_registry(self):
        """Every registered experiment must appear in ``--help`` with its
        title — the listing is generated, so nothing can be forgotten."""
        help_text = build_parser().format_help()
        for experiment_id, entry in EXPERIMENTS.items():
            assert experiment_id in help_text
            # argparse may wrap long lines; the title's first words suffice
            # to prove the entry was rendered.
            assert " ".join(entry.title.split()[:3]) in help_text

    def test_registry_entries_are_well_formed(self):
        filenames = [entry.filename for entry in EXPERIMENTS.values()]
        assert len(set(filenames)) == len(filenames), "duplicate result files"
        for entry in EXPERIMENTS.values():
            assert callable(entry.runner)
            assert entry.filename.endswith(".txt")
            assert entry.title


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_single_experiment_saves_results(self, tmp_path, capsys):
        code = main(["run", "table2", "--scale", "0.02",
                     "--results-dir", str(tmp_path)])
        assert code == 0
        assert "Table II" in capsys.readouterr().out
        saved = json.loads((tmp_path / "table2_datasets.json").read_text())
        assert len(saved) == 3

    def test_run_with_no_save_writes_nothing(self, tmp_path, capsys):
        code = main(["run", "fig2", "--scale", "0.02",
                     "--results-dir", str(tmp_path), "--no-save"])
        assert code == 0
        assert list(tmp_path.iterdir()) == []
        assert "Figure 2" in capsys.readouterr().out

    def test_unknown_experiment_returns_error_code(self, tmp_path, capsys):
        code = main(["run", "fig99", "--results-dir", str(tmp_path)])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
