"""Tests for :class:`repro.core.config.HiggsConfig`."""

from __future__ import annotations

import pytest

from repro.core.config import HiggsConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_match_paper_setup(self):
        config = HiggsConfig()
        assert config.leaf_matrix_size == 16
        assert config.bucket_entries == 3
        assert config.fingerprint_bits == 19
        assert config.fanout == 4
        assert config.num_probes == 4

    @pytest.mark.parametrize("size", [3, 5, 6, 7, 9, 15])
    def test_non_power_of_two_leaf_size_rejected(self, size):
        with pytest.raises(ConfigurationError):
            HiggsConfig(leaf_matrix_size=size)

    @pytest.mark.parametrize("fanout", [2, 3, 5, 8, 12])
    def test_non_power_of_four_fanout_rejected(self, fanout):
        with pytest.raises(ConfigurationError):
            HiggsConfig(fanout=fanout)

    @pytest.mark.parametrize("fanout", [4, 16, 64])
    def test_power_of_four_fanout_accepted(self, fanout):
        assert HiggsConfig(fanout=fanout).fanout == fanout

    def test_bucket_entries_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HiggsConfig(bucket_entries=0)

    def test_fingerprint_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            HiggsConfig(fingerprint_bits=0)
        with pytest.raises(ConfigurationError):
            HiggsConfig(fingerprint_bits=60)

    def test_num_probes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HiggsConfig(num_probes=0)

    def test_overflow_block_entries_validated(self):
        with pytest.raises(ConfigurationError):
            HiggsConfig(overflow_block_entries=0)


class TestDerivedParameters:
    def test_shift_bits_from_fanout(self):
        assert HiggsConfig(fanout=4).shift_bits == 1
        assert HiggsConfig(fanout=16).shift_bits == 2
        assert HiggsConfig(fanout=64).shift_bits == 3

    def test_fingerprint_bits_decrease_per_level(self):
        config = HiggsConfig(fingerprint_bits=10, fanout=4)
        assert config.fingerprint_bits_at(1) == 10
        assert config.fingerprint_bits_at(2) == 9
        assert config.fingerprint_bits_at(5) == 6

    def test_fingerprint_bits_clamped_at_zero(self):
        config = HiggsConfig(fingerprint_bits=2, fanout=4)
        assert config.fingerprint_bits_at(10) == 0

    def test_matrix_size_grows_by_sqrt_fanout(self):
        config = HiggsConfig(leaf_matrix_size=16, fanout=4, fingerprint_bits=19)
        assert config.matrix_size_at(1) == 16
        assert config.matrix_size_at(2) == 32
        assert config.matrix_size_at(3) == 64

    def test_matrix_size_with_fanout_16(self):
        config = HiggsConfig(leaf_matrix_size=8, fanout=16, fingerprint_bits=12)
        assert config.matrix_size_at(2) == 32
        assert config.matrix_size_at(3) == 128

    def test_level_must_be_positive(self):
        config = HiggsConfig()
        with pytest.raises(ConfigurationError):
            config.fingerprint_bits_at(0)
        with pytest.raises(ConfigurationError):
            config.matrix_size_at(0)

    def test_entry_bytes_positive_and_leaf_larger_than_internal(self):
        config = HiggsConfig()
        assert config.leaf_entry_bytes() > 0
        assert config.internal_entry_bytes(2) > 0
        # Leaf entries additionally store a timestamp.
        assert config.leaf_entry_bytes() >= config.internal_entry_bytes(2)

    def test_internal_entry_bytes_shrink_with_level(self):
        config = HiggsConfig(fingerprint_bits=19)
        assert config.internal_entry_bytes(2) >= config.internal_entry_bytes(8)
