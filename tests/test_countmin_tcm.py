"""Tests for the Count-Min sketch and the TCM graph sketch substrates."""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.countmin import CountMinSketch
from repro.baselines.tcm import TCM
from repro.errors import ConfigurationError


class TestCountMin:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=8, depth=0)

    def test_estimate_at_least_true_count(self):
        sketch = CountMinSketch(width=64, depth=3)
        truth = defaultdict(float)
        for i in range(300):
            item = f"item-{i % 40}"
            sketch.update(item, 2.0)
            truth[item] += 2.0
        for item, expected in truth.items():
            assert sketch.estimate(item) >= expected

    def test_exact_when_wide_enough(self):
        sketch = CountMinSketch(width=4096, depth=4)
        for i in range(50):
            sketch.update(f"item-{i}", float(i + 1))
        for i in range(50):
            assert sketch.estimate(f"item-{i}") == pytest.approx(float(i + 1))

    def test_remove_reverses_update(self):
        sketch = CountMinSketch(width=128, depth=3)
        sketch.update("x", 5.0)
        sketch.remove("x", 3.0)
        assert sketch.estimate("x") >= 2.0

    def test_memory_and_total_weight(self):
        sketch = CountMinSketch(width=100, depth=2, counter_bytes=4)
        assert sketch.memory_bytes() == 100 * 2 * 4
        sketch.update("a", 3.0)
        sketch.update("b", 2.0)
        assert sketch.total_weight == pytest.approx(5.0)
        assert sketch.row_values(0).sum() == pytest.approx(5.0)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 5)),
                    min_size=1, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_property_one_sided(self, updates):
        sketch = CountMinSketch(width=32, depth=3)
        truth = defaultdict(float)
        for key, weight in updates:
            sketch.update(key, float(weight))
            truth[key] += weight
        for key, expected in truth.items():
            assert sketch.estimate(key) >= expected - 1e-9


class TestTCM:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            TCM(width=0)
        with pytest.raises(ConfigurationError):
            TCM(width=8, depth=0)

    def test_edge_query_one_sided_and_exact_when_wide(self):
        tcm = TCM(width=256, depth=3)
        truth = defaultdict(float)
        for i in range(200):
            source, destination = f"s{i % 20}", f"d{i % 13}"
            tcm.insert(source, destination, 1.0)
            truth[(source, destination)] += 1.0
        for (source, destination), expected in truth.items():
            assert tcm.edge_query(source, destination) >= expected

    def test_vertex_query_aggregates_row(self):
        tcm = TCM(width=128, depth=2)
        tcm.insert("a", "b", 1.0)
        tcm.insert("a", "c", 2.0)
        tcm.insert("d", "a", 4.0)
        assert tcm.vertex_query("a") >= 3.0
        assert tcm.vertex_query("a", direction="in") >= 4.0

    def test_delete_subtracts(self):
        tcm = TCM(width=128, depth=2)
        tcm.insert("a", "b", 5.0)
        tcm.delete("a", "b", 2.0)
        assert tcm.edge_query("a", "b") >= 3.0 - 1e-9

    def test_memory_formula(self):
        tcm = TCM(width=64, depth=3, counter_bytes=4)
        assert tcm.memory_bytes() == 3 * 64 * 64 * 4

    def test_absent_edge_small_estimate(self):
        tcm = TCM(width=512, depth=3)
        for i in range(100):
            tcm.insert(f"s{i}", f"d{i}", 1.0)
        assert tcm.edge_query("never", "seen") <= 2.0
