"""Tier-1 wrapper around the documentation checks in ``tools/check_docs.py``.

Keeps the docs honest from inside the normal test suite: the public API of
``summary.py`` and the sharding package must stay fully docstring'd, and the
README's quickstart snippets must execute as written.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


class TestDocstrings:
    def test_public_api_is_fully_documented(self):
        problems = check_docs.find_missing_docstrings()
        assert problems == []


class TestReadmeSnippets:
    def test_readme_exists_with_python_snippets(self):
        assert (REPO_ROOT / "README.md").is_file()
        assert check_docs.extract_python_snippets()

    def test_architecture_doc_exists(self):
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()

    def test_readme_snippets_execute(self):
        assert check_docs.run_readme_snippets() == []
