"""Tests for the dyadic temporal range decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dyadic import (compact_levels, dyadic_intervals,
                                    interval_bounds, levels_for_span)
from repro.errors import QueryError


def _covered(intervals):
    points = set()
    for level, prefix in intervals:
        start, end = interval_bounds(level, prefix)
        points.update(range(start, end + 1))
    return points


class TestDyadicIntervals:
    def test_single_point(self):
        assert dyadic_intervals(5, 5) == [(0, 5)]

    def test_aligned_power_of_two_range(self):
        assert dyadic_intervals(8, 15) == [(3, 1)]

    def test_generic_range_is_exactly_covered(self):
        intervals = dyadic_intervals(3, 21)
        assert _covered(intervals) == set(range(3, 22))

    def test_intervals_are_disjoint(self):
        intervals = dyadic_intervals(7, 200)
        total = sum((1 << level) for level, _prefix in intervals)
        assert total == 200 - 7 + 1

    def test_interval_count_is_logarithmic(self):
        intervals = dyadic_intervals(1, 10**6)
        assert len(intervals) <= 2 * (10**6).bit_length()

    def test_allowed_levels_restriction(self):
        full = dyadic_intervals(0, 255)
        restricted = dyadic_intervals(0, 255, allowed_levels=[0, 2, 4, 6])
        assert _covered(full) == _covered(restricted)
        assert all(level in (0, 2, 4, 6) for level, _ in restricted)
        assert len(restricted) >= len(full)

    def test_max_level_cap(self):
        intervals = dyadic_intervals(0, 1023, max_level=4)
        assert all(level <= 4 for level, _ in intervals)
        assert _covered(intervals) == set(range(0, 1024))

    def test_invalid_ranges_rejected(self):
        with pytest.raises(QueryError):
            dyadic_intervals(10, 5)
        with pytest.raises(QueryError):
            dyadic_intervals(-1, 5)

    @given(st.integers(0, 5000), st.integers(0, 5000))
    @settings(max_examples=150, deadline=None)
    def test_property_exact_cover(self, a, b):
        t_start, t_end = min(a, b), max(a, b)
        intervals = dyadic_intervals(t_start, t_end)
        assert sum(1 << level for level, _ in intervals) == t_end - t_start + 1
        starts = [prefix << level for level, prefix in intervals]
        assert starts == sorted(starts)
        assert starts[0] == t_start

    @given(st.integers(0, 2000), st.integers(0, 2000), st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_property_compact_levels_cover(self, a, b, stride):
        t_start, t_end = min(a, b), max(a, b)
        allowed = compact_levels(16, stride=stride)
        intervals = dyadic_intervals(t_start, t_end, allowed_levels=allowed)
        assert sum(1 << level for level, _ in intervals) == t_end - t_start + 1


class TestHelpers:
    def test_interval_bounds(self):
        assert interval_bounds(0, 7) == (7, 7)
        assert interval_bounds(3, 2) == (16, 23)

    def test_levels_for_span(self):
        assert levels_for_span(1) == 1
        assert levels_for_span(2) == 1
        assert levels_for_span(1024) == 10
        assert levels_for_span(1025) == 11

    def test_compact_levels(self):
        assert compact_levels(6, stride=2) == [0, 2, 4, 6]
        assert compact_levels(5, stride=3) == [0, 3]
        with pytest.raises(QueryError):
            compact_levels(5, stride=0)
