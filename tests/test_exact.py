"""Tests for the exact temporal graph store (the evaluation ground truth)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.exact import ExactTemporalGraph
from repro.errors import QueryError


class TestExactTemporalGraph:
    def test_edge_query_matches_manual_sum(self):
        store = ExactTemporalGraph()
        store.insert("a", "b", 1.0, 5)
        store.insert("a", "b", 2.0, 10)
        store.insert("a", "b", 4.0, 15)
        assert store.edge_query("a", "b", 0, 20) == 7.0
        assert store.edge_query("a", "b", 6, 14) == 2.0
        assert store.edge_query("a", "b", 16, 20) == 0.0
        assert store.edge_query("b", "a", 0, 20) == 0.0

    def test_vertex_query_both_directions(self):
        store = ExactTemporalGraph()
        store.insert("a", "b", 1.0, 1)
        store.insert("a", "c", 2.0, 2)
        store.insert("d", "a", 5.0, 3)
        assert store.vertex_query("a", 0, 10) == 3.0
        assert store.vertex_query("a", 0, 10, direction="in") == 5.0
        assert store.vertex_query("a", 2, 10) == 2.0

    def test_unsorted_insert_order_supported(self):
        store = ExactTemporalGraph()
        for timestamp in (30, 10, 20, 5):
            store.insert("x", "y", 1.0, timestamp)
        assert store.edge_query("x", "y", 0, 15) == 2.0
        assert store.edge_query("x", "y", 0, 40) == 4.0

    def test_delete_subtracts(self):
        store = ExactTemporalGraph()
        store.insert("a", "b", 3.0, 1)
        store.delete("a", "b", 1.0, 1)
        assert store.edge_query("a", "b", 0, 5) == 2.0

    def test_inverted_range_rejected(self):
        store = ExactTemporalGraph()
        with pytest.raises(QueryError):
            store.edge_query("a", "b", 5, 1)

    def test_memory_and_item_count_grow(self):
        store = ExactTemporalGraph()
        assert store.memory_bytes() >= 0
        for i in range(50):
            store.insert(f"s{i}", f"d{i}", 1.0, i)
        assert store.item_count == 50
        assert store.memory_bytes() > 0

    def test_against_brute_force_on_random_items(self, rng):
        store = ExactTemporalGraph()
        items = []
        for _ in range(400):
            item = (f"s{rng.randint(0, 15)}", f"d{rng.randint(0, 15)}",
                    float(rng.randint(1, 5)), rng.randint(0, 200))
            items.append(item)
            store.insert(*item)
        for _ in range(30):
            t_start = rng.randint(0, 200)
            t_end = rng.randint(t_start, 200)
            source = f"s{rng.randint(0, 15)}"
            destination = f"d{rng.randint(0, 15)}"
            expected_edge = sum(w for s, d, w, t in items
                                if s == source and d == destination
                                and t_start <= t <= t_end)
            expected_out = sum(w for s, _d, w, t in items
                               if s == source and t_start <= t <= t_end)
            assert store.edge_query(source, destination, t_start, t_end) == \
                pytest.approx(expected_edge)
            assert store.vertex_query(source, t_start, t_end) == \
                pytest.approx(expected_out)
