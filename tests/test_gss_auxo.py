"""Tests for the GSS and Auxo non-temporal graph summaries."""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.auxo import Auxo
from repro.baselines.gss import GSS
from repro.errors import ConfigurationError


class TestGSS:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GSS(width=0)
        with pytest.raises(ConfigurationError):
            GSS(width=8, fingerprint_bits=0)

    def test_insert_then_query(self):
        gss = GSS(width=64, fingerprint_bits=12)
        gss.insert("a", "b", 2.0)
        gss.insert("a", "b", 3.0)
        assert gss.edge_query("a", "b") == pytest.approx(5.0)
        assert gss.edge_query("b", "a") == 0.0

    def test_one_sided_error_over_many_edges(self):
        gss = GSS(width=32, fingerprint_bits=10, num_probes=2)
        truth = defaultdict(float)
        for i in range(500):
            source, destination = f"s{i % 60}", f"d{i % 37}"
            gss.insert(source, destination, 1.0)
            truth[(source, destination)] += 1.0
        for (source, destination), expected in truth.items():
            assert gss.edge_query(source, destination) >= expected - 1e-9

    def test_buffer_absorbs_overflow(self):
        gss = GSS(width=2, fingerprint_bits=8, num_probes=1)
        for i in range(100):
            gss.insert(f"s{i}", f"d{i}", 1.0)
        assert gss.buffer_size > 0
        # Buffered edges are still answerable.
        assert gss.edge_query("s50", "d50") >= 1.0

    def test_vertex_query_directions(self):
        gss = GSS(width=64, fingerprint_bits=12)
        gss.insert("a", "b", 1.0)
        gss.insert("a", "c", 2.0)
        gss.insert("d", "a", 4.0)
        assert gss.vertex_query("a") >= 3.0
        assert gss.vertex_query("a", direction="in") >= 4.0

    def test_delete_subtracts(self):
        gss = GSS(width=64, fingerprint_bits=12)
        gss.insert("a", "b", 5.0)
        gss.delete("a", "b", 2.0)
        assert gss.edge_query("a", "b") == pytest.approx(3.0)

    def test_memory_counts_matrix_and_buffer(self):
        gss = GSS(width=16, fingerprint_bits=8)
        empty = gss.memory_bytes()
        for i in range(300):
            gss.insert(f"s{i}", f"d{i}", 1.0)
        assert gss.memory_bytes() >= empty


class TestAuxo:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Auxo(matrix_size=1)
        with pytest.raises(ConfigurationError):
            Auxo(fingerprint_bits=1)

    def test_insert_then_query_exact_for_small_load(self):
        auxo = Auxo(matrix_size=32, fingerprint_bits=16)
        auxo.insert("a", "b", 2.0)
        auxo.insert("a", "b", 1.0)
        auxo.insert("c", "d", 4.0)
        assert auxo.edge_query("a", "b") == pytest.approx(3.0)
        assert auxo.edge_query("c", "d") == pytest.approx(4.0)
        assert auxo.edge_query("x", "y") == 0.0

    def test_pet_grows_with_load_and_stays_one_sided(self):
        auxo = Auxo(matrix_size=8, fingerprint_bits=12, bucket_entries=1,
                    num_probes=1)
        truth = defaultdict(float)
        for i in range(2_000):
            source, destination = f"s{i % 300}", f"d{i % 211}"
            auxo.insert(source, destination, 1.0)
            truth[(source, destination)] += 1.0
        assert auxo.depth > 1
        assert auxo.node_count > 1
        for (source, destination), expected in list(truth.items())[:200]:
            assert auxo.edge_query(source, destination) >= expected - 1e-9

    def test_vertex_query_directions(self):
        auxo = Auxo(matrix_size=32, fingerprint_bits=14)
        auxo.insert("a", "b", 1.0)
        auxo.insert("a", "c", 2.0)
        auxo.insert("d", "a", 4.0)
        assert auxo.vertex_query("a") >= 3.0
        assert auxo.vertex_query("a", direction="in") >= 4.0

    def test_delete_subtracts(self):
        auxo = Auxo(matrix_size=32, fingerprint_bits=14)
        auxo.insert("a", "b", 5.0)
        auxo.delete("a", "b", 2.0)
        assert auxo.edge_query("a", "b") == pytest.approx(3.0)

    def test_memory_grows_with_levels(self):
        auxo = Auxo(matrix_size=8, fingerprint_bits=12, bucket_entries=1,
                    num_probes=1)
        initial = auxo.memory_bytes()
        for i in range(1_000):
            auxo.insert(f"s{i}", f"d{i}", 1.0)
        assert auxo.memory_bytes() > initial


@given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25),
                          st.integers(1, 4)), min_size=1, max_size=120))
@settings(max_examples=30, deadline=None)
def test_property_gss_and_auxo_never_underestimate(items):
    gss = GSS(width=16, fingerprint_bits=8, num_probes=2)
    auxo = Auxo(matrix_size=8, fingerprint_bits=10, bucket_entries=2, num_probes=1)
    truth = defaultdict(float)
    for source, destination, weight in items:
        gss.insert(source, destination, float(weight))
        auxo.insert(source, destination, float(weight))
        truth[(source, destination)] += weight
    for (source, destination), expected in truth.items():
        assert gss.edge_query(source, destination) >= expected - 1e-9
        assert auxo.edge_query(source, destination) >= expected - 1e-9
