"""Tests for vertex hashing, fingerprint/address splitting, and probing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (VertexHasher, hash64, hash_pair, lift_address,
                                probe_address, probe_step, recover_base)
from repro.errors import ConfigurationError


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64("vertex-1") == hash64("vertex-1")

    def test_different_keys_differ(self):
        assert hash64("vertex-1") != hash64("vertex-2")

    def test_seed_changes_hash(self):
        assert hash64("vertex-1", seed=1) != hash64("vertex-1", seed=2)

    def test_supports_ints_bytes_and_other_objects(self):
        assert isinstance(hash64(42), int)
        assert isinstance(hash64(b"abc"), int)
        assert isinstance(hash64(("a", 3)), int)

    def test_result_fits_64_bits(self):
        for key in ["a", "b", 17, ("x", 2)]:
            assert 0 <= hash64(key) < (1 << 64)

    def test_negative_integers_supported(self):
        assert hash64(-5) != hash64(5)

    @given(st.text(min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_stable_for_arbitrary_text(self, key):
        assert hash64(key) == hash64(key)


class TestHashPair:
    def test_salt_changes_value(self):
        assert hash_pair("v", 1) != hash_pair("v", 2)

    def test_same_inputs_same_value(self):
        assert hash_pair("v", 7, seed=3) == hash_pair("v", 7, seed=3)


class TestProbeSequence:
    def test_probe_zero_is_base(self):
        assert probe_address(5, 0, 13, 16) == 5

    def test_probe_step_is_odd(self):
        for fingerprint in range(20):
            assert probe_step(fingerprint) % 2 == 1

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=1023),
           st.sampled_from([4, 8, 16, 32, 64]))
    @settings(max_examples=200)
    def test_recover_base_inverts_probe(self, base, index, fingerprint, size):
        base %= size
        probed = probe_address(base, index, fingerprint, size)
        assert recover_base(probed, index, fingerprint, size) == base


class TestLiftAddress:
    def test_paper_figure8_example(self):
        # Fingerprint 0b101, address 0, shift one bit -> address 0b01, fp 0b01.
        fingerprint, address = lift_address(0b101, 0, 3, 1)
        assert address == 0b01
        assert fingerprint == 0b01

    def test_zero_shift_is_identity(self):
        assert lift_address(0b1011, 3, 4, 0) == (0b1011, 3)

    def test_shift_larger_than_fingerprint_rejected(self):
        with pytest.raises(ConfigurationError):
            lift_address(0b1, 0, 1, 2)

    @given(st.integers(min_value=0, max_value=2**12 - 1),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=200)
    def test_lift_preserves_information(self, fingerprint, address, shift):
        fingerprint_bits = 12
        new_fp, new_addr = lift_address(fingerprint, address, fingerprint_bits, shift)
        # The original pair is recoverable: high bits of the old fingerprint
        # are the low bits of the new address.
        recovered_fp = ((new_addr & ((1 << shift) - 1)) << (fingerprint_bits - shift)) | new_fp
        recovered_addr = new_addr >> shift
        assert recovered_fp == fingerprint
        assert recovered_addr == address


class TestVertexHasher:
    def test_split_matches_formula(self):
        hasher = VertexHasher(fingerprint_bits=10, matrix_size=16)
        raw = hasher.raw("alice")
        fingerprint, address = hasher.split("alice")
        assert fingerprint == raw & ((1 << 10) - 1)
        assert address == (raw >> 10) % 16
        assert hasher.fingerprint("alice") == fingerprint
        assert hasher.address("alice") == address

    def test_probe_sequence_length_and_range(self):
        hasher = VertexHasher(fingerprint_bits=8, matrix_size=32)
        probes = hasher.probe_sequence("bob", 4)
        assert len(probes) == 4
        assert all(0 <= p < 32 for p in probes)
        assert probes[0] == hasher.address("bob")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            VertexHasher(fingerprint_bits=0, matrix_size=16)
        with pytest.raises(ConfigurationError):
            VertexHasher(fingerprint_bits=60, matrix_size=16)
        with pytest.raises(ConfigurationError):
            VertexHasher(fingerprint_bits=8, matrix_size=0)

    def test_different_seeds_give_independent_functions(self):
        h1 = VertexHasher(fingerprint_bits=12, matrix_size=64, seed=1)
        h2 = VertexHasher(fingerprint_bits=12, matrix_size=64, seed=2)
        differing = sum(h1.split(f"v{i}") != h2.split(f"v{i}") for i in range(50))
        assert differing > 25
