"""End-to-end tests for the public :class:`repro.Higgs` summary."""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import QueryError


@pytest.fixture()
def higgs() -> Higgs:
    # Generous fingerprints: at test scale the estimates should be exact.
    return Higgs(HiggsConfig(leaf_matrix_size=8, fingerprint_bits=18))


class TestBasicOperations:
    def test_single_edge_round_trip(self, higgs):
        higgs.insert("alice", "bob", 2.0, 100)
        assert higgs.edge_query("alice", "bob", 0, 200) == 2.0
        assert higgs.edge_query("alice", "bob", 0, 99) == 0.0
        assert higgs.edge_query("bob", "alice", 0, 200) == 0.0

    def test_repeated_edge_aggregates_over_time(self, higgs):
        for timestamp in (10, 20, 30):
            higgs.insert("a", "b", 1.5, timestamp)
        assert higgs.edge_query("a", "b", 0, 100) == pytest.approx(4.5)
        assert higgs.edge_query("a", "b", 15, 25) == pytest.approx(1.5)

    def test_vertex_query_directions(self, higgs):
        higgs.insert("a", "b", 1.0, 1)
        higgs.insert("a", "c", 2.0, 2)
        higgs.insert("d", "a", 4.0, 3)
        assert higgs.vertex_query("a", 0, 10) == 3.0
        assert higgs.vertex_query("a", 0, 10, direction="in") == 4.0
        assert higgs.vertex_query("b", 0, 10, direction="in") == 1.0

    def test_paper_example1_aggregates(self, higgs, tiny_stream):
        """Reproduce the aggregates of the paper's Example 1 (Fig. 5)."""
        higgs.insert_stream(tiny_stream)
        # Edge v2->v3 from t5 to t10 has weight 3 (items at t6 and t9).
        assert higgs.edge_query("v2", "v3", 5, 10) == 3.0
        # Vertex v4's outgoing weight from t1 to t11 is 6.
        assert higgs.vertex_query("v4", 1, 11) == 6.0
        # Subgraph {(v2,v3),(v3,v7),(v2,v4)} between t4 and t8 weighs 3.
        assert higgs.subgraph_query((("v2", "v3"), ("v3", "v7"), ("v2", "v4")),
                                    4, 8) == 3.0

    def test_path_query_sums_edges(self, higgs):
        higgs.insert("a", "b", 1.0, 1)
        higgs.insert("b", "c", 2.0, 2)
        higgs.insert("c", "d", 3.0, 3)
        assert higgs.path_query(["a", "b", "c", "d"], 0, 10) == 6.0

    def test_invalid_arguments_raise(self, higgs):
        with pytest.raises(QueryError):
            higgs.edge_query("a", "b", 10, 5)
        with pytest.raises(QueryError):
            higgs.vertex_query("a", 10, 5)
        with pytest.raises(QueryError):
            higgs.vertex_query("a", 0, 5, direction="sideways")
        with pytest.raises(QueryError):
            higgs.path_query(["a"], 0, 5)
        with pytest.raises(QueryError):
            higgs.subgraph_query([], 0, 5)


class TestAgainstExactStore:
    def test_exact_on_small_stream(self, small_stream, small_truth):
        summary = Higgs(HiggsConfig(fingerprint_bits=20))
        summary.insert_stream(small_stream)
        t_min, t_max = small_stream.time_span
        edges = sorted(small_stream.distinct_edges())[:150]
        for source, destination in edges:
            for t_start, t_end in ((t_min, t_max), (t_min + 100, t_min + 600)):
                estimate = summary.edge_query(source, destination, t_start, t_end)
                truth = small_truth.edge_query(source, destination, t_start, t_end)
                assert estimate == pytest.approx(truth)

    def test_vertex_queries_never_underestimate(self, small_stream, small_truth):
        summary = Higgs(HiggsConfig(fingerprint_bits=14))
        summary.insert_stream(small_stream)
        t_min, t_max = small_stream.time_span
        vertices = sorted(small_stream.vertices())[:80]
        for vertex in vertices:
            estimate = summary.vertex_query(vertex, t_min, t_max)
            truth = small_truth.vertex_query(vertex, t_min, t_max)
            assert estimate >= truth - 1e-9

    def test_deep_tree_remains_exact(self, small_stream, small_truth):
        # Tiny leaves force a tall tree with several aggregation levels.
        summary = Higgs(HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                                    fingerprint_bits=20, num_probes=2))
        summary.insert_stream(small_stream)
        assert summary.height >= 4
        t_min, t_max = small_stream.time_span
        for source, destination in sorted(small_stream.distinct_edges())[:60]:
            estimate = summary.edge_query(source, destination, t_min, t_max)
            truth = small_truth.edge_query(source, destination, t_min, t_max)
            assert estimate == pytest.approx(truth)


class TestDeletion:
    def test_delete_removes_weight_everywhere(self, small_stream):
        summary = Higgs(HiggsConfig(fingerprint_bits=20))
        summary.insert_stream(small_stream)
        edge = small_stream[0]
        t_min, t_max = small_stream.time_span
        before = summary.edge_query(edge.source, edge.destination, t_min, t_max)
        summary.delete(edge.source, edge.destination, edge.weight, edge.timestamp)
        after = summary.edge_query(edge.source, edge.destination, t_min, t_max)
        assert after == pytest.approx(before - edge.weight)

    def test_delete_unknown_item_is_noop(self, higgs):
        higgs.insert("a", "b", 1.0, 1)
        higgs.delete("ghost", "phantom", 1.0, 1)
        assert higgs.edge_query("a", "b", 0, 10) == 1.0


class TestIntrospection:
    def test_stats_and_memory(self, small_stream):
        summary = Higgs()
        summary.insert_stream(small_stream)
        stats = summary.stats()
        assert stats["items_inserted"] == len(small_stream)
        assert summary.memory_bytes() == stats["memory_bytes"]
        assert summary.leaf_count == stats["leaf_count"]
        assert summary.height >= 1
        assert "Higgs" in repr(summary)

    def test_decompose_exposed(self, small_stream):
        summary = Higgs()
        summary.insert_stream(small_stream)
        t_min, t_max = small_stream.time_span
        decomposition = summary.decompose(t_min, t_max)
        assert decomposition.matrices_accessed > 0

    def test_timestamps_are_coerced_to_int(self, higgs):
        higgs.insert("a", "b", 1.0, 3.0)
        assert higgs.edge_query("a", "b", 0, 10) == 1.0
