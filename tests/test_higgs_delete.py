"""Edge-case tests for ``Higgs.delete`` (explicit entry deletion).

Two behaviours the interface promises but were previously untested:

* deleting an item that was never inserted leaves the summary untouched
  (byte-identical structure, not merely equal query answers), and
* deleting after upward aggregation decrements every materialized ancestor
  aggregate, not only the leaf entry.
"""

from __future__ import annotations

import pickle

import pytest

from repro import Higgs, HiggsConfig
from repro.core.aggregation import lift_coordinates


def _small_config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                       fingerprint_bits=12, num_probes=1,
                       enable_overflow_blocks=False)


def _loaded(items: int = 600) -> Higgs:
    summary = Higgs(_small_config())
    for i in range(items):
        summary.insert(f"s{i}", f"d{i}", 1.0 + (i % 3), i)
    return summary


class TestDeleteNeverInserted:
    def test_structure_byte_identical(self):
        summary = _loaded()
        before = pickle.dumps(summary.tree)
        summary.delete("ghost-src", "ghost-dst", 1.0, 50)
        assert pickle.dumps(summary.tree) == before

    def test_version_unchanged_on_miss(self):
        summary = _loaded()
        version = summary.tree.version
        summary.delete("ghost-src", "ghost-dst", 1.0, 50)
        assert summary.tree.version == version

    def test_wrong_timestamp_is_a_miss(self):
        summary = _loaded()
        before = pickle.dumps(summary.tree)
        # Existing edge, but no entry at this timestamp.
        summary.delete("s1", "d1", 1.0, 5_000)
        assert pickle.dumps(summary.tree) == before


class TestDeleteAfterAggregation:
    def test_every_materialized_ancestor_decrements(self):
        summary = _loaded(600)
        tree = summary.tree
        assert tree.height >= 3, "test needs materialized internal levels"

        # Item i=0 lives in leaf 0; its ancestors are index 0 at every level.
        source, destination, weight, timestamp = "s0", "d0", 1.0, 0
        src_fp, src_addr = summary._hasher.split(source)
        dst_fp, dst_addr = summary._hasher.split(destination)

        ancestors = []
        level = 2
        while tree.internal_node(level, 0) is not None:
            node = tree.internal_node(level, 0)
            lifted_src = lift_coordinates(src_fp, src_addr, 1, level,
                                          summary.config)
            lifted_dst = lift_coordinates(dst_fp, dst_addr, 1, level,
                                          summary.config)
            ancestors.append((node, lifted_src, lifted_dst))
            level += 1
        assert len(ancestors) >= 2

        before = [node.query_edge(src[0], dst[0], src[1], dst[1])
                  for node, src, dst in ancestors]
        summary.delete(source, destination, weight, timestamp)
        after = [node.query_edge(src[0], dst[0], src[1], dst[1])
                 for node, src, dst in ancestors]
        for value_before, value_after in zip(before, after, strict=True):
            assert value_after == pytest.approx(value_before - weight)

    def test_full_range_query_reflects_deletion(self):
        summary = _loaded(600)
        before = summary.edge_query("s0", "d0", 0, 1_000)
        summary.delete("s0", "d0", 1.0, 0)
        assert summary.edge_query("s0", "d0", 0, 1_000) == \
            pytest.approx(before - 1.0)

    def test_batch_built_summary_deletes_identically(self, small_stream):
        per_item = Higgs(_small_config())
        for edge in small_stream:
            per_item.insert(edge.source, edge.destination,
                            edge.weight, edge.timestamp)
        batched = Higgs(_small_config())
        batched.insert_stream(small_stream)

        victim = small_stream[0]
        per_item.delete(victim.source, victim.destination,
                        victim.weight, victim.timestamp)
        batched.delete(victim.source, victim.destination,
                       victim.weight, victim.timestamp)
        t_min, t_max = small_stream.time_span
        assert per_item.edge_query(victim.source, victim.destination,
                                   t_min, t_max) == \
            batched.edge_query(victim.source, victim.destination,
                               t_min, t_max)
