"""Property-based tests for HIGGS invariants (hypothesis).

The key paper-backed invariants:

* one-sided error — HIGGS never underestimates (Section V-D);
* with a fingerprint space much larger than the number of items the estimate
  is exact;
* deleting every inserted item returns every estimate to zero.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Higgs, HiggsConfig

# Small vertex universe to force edge repetition and hash pressure.
_vertices = st.integers(min_value=0, max_value=12).map(lambda i: f"v{i}")
_items = st.lists(
    st.tuples(_vertices, _vertices, st.integers(1, 9), st.integers(0, 300)),
    min_size=1, max_size=120)
_ranges = st.tuples(st.integers(0, 300), st.integers(0, 300)).map(
    lambda pair: (min(pair), max(pair)))


def _sorted_stream(items):
    return sorted(items, key=lambda item: item[3])


@given(items=_items, time_range=_ranges)
@settings(max_examples=60, deadline=None)
def test_edge_queries_never_underestimate(items, time_range):
    summary = Higgs(HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                                fingerprint_bits=10, num_probes=2))
    truth = defaultdict(float)
    t_start, t_end = time_range
    for source, destination, weight, timestamp in _sorted_stream(items):
        summary.insert(source, destination, float(weight), timestamp)
        if t_start <= timestamp <= t_end:
            truth[(source, destination)] += weight
    for (source, destination), expected in truth.items():
        estimate = summary.edge_query(source, destination, t_start, t_end)
        assert estimate >= expected - 1e-9


@given(items=_items, time_range=_ranges)
@settings(max_examples=60, deadline=None)
def test_vertex_queries_never_underestimate(items, time_range):
    summary = Higgs(HiggsConfig(leaf_matrix_size=4, bucket_entries=2,
                                fingerprint_bits=8, num_probes=1))
    out_truth = defaultdict(float)
    in_truth = defaultdict(float)
    t_start, t_end = time_range
    for source, destination, weight, timestamp in _sorted_stream(items):
        summary.insert(source, destination, float(weight), timestamp)
        if t_start <= timestamp <= t_end:
            out_truth[source] += weight
            in_truth[destination] += weight
    for vertex, expected in out_truth.items():
        assert summary.vertex_query(vertex, t_start, t_end) >= expected - 1e-9
    for vertex, expected in in_truth.items():
        assert summary.vertex_query(vertex, t_start, t_end,
                                    direction="in") >= expected - 1e-9


@given(items=_items, time_range=_ranges)
@settings(max_examples=40, deadline=None)
def test_generous_fingerprints_give_exact_estimates(items, time_range):
    summary = Higgs(HiggsConfig(leaf_matrix_size=8, fingerprint_bits=26,
                                num_probes=4))
    truth = defaultdict(float)
    t_start, t_end = time_range
    for source, destination, weight, timestamp in _sorted_stream(items):
        summary.insert(source, destination, float(weight), timestamp)
        if t_start <= timestamp <= t_end:
            truth[(source, destination)] += weight
    for (source, destination), expected in truth.items():
        estimate = summary.edge_query(source, destination, t_start, t_end)
        assert abs(estimate - expected) < 1e-9


@given(items=_items)
@settings(max_examples=30, deadline=None)
def test_insert_then_delete_everything_returns_to_zero(items):
    summary = Higgs(HiggsConfig(leaf_matrix_size=8, fingerprint_bits=26,
                                num_probes=4))
    ordered = _sorted_stream(items)
    for source, destination, weight, timestamp in ordered:
        summary.insert(source, destination, float(weight), timestamp)
    for source, destination, weight, timestamp in ordered:
        summary.delete(source, destination, float(weight), timestamp)
    for source, destination, _weight, _timestamp in ordered:
        assert summary.edge_query(source, destination, 0, 300) <= 1e-9


@given(items=_items)
@settings(max_examples=30, deadline=None)
def test_full_range_equals_sum_of_disjoint_subranges(items):
    """With exact fingerprints, query weight is additive over a time partition."""
    summary = Higgs(HiggsConfig(leaf_matrix_size=8, fingerprint_bits=26,
                                num_probes=4))
    for source, destination, weight, timestamp in _sorted_stream(items):
        summary.insert(source, destination, float(weight), timestamp)
    source, destination = items[0][0], items[0][1]
    full = summary.edge_query(source, destination, 0, 300)
    split = (summary.edge_query(source, destination, 0, 150)
             + summary.edge_query(source, destination, 151, 300))
    assert abs(full - split) < 1e-9
