"""Cross-module integration tests: datasets → summaries → workloads → metrics.

These tests exercise the same pipeline as the benchmark harness, end to end,
at a miniature scale, and assert the paper's qualitative claims that are
stable even at that scale (one-sided error, aggregation exactness, structural
scaling, ordering of space costs).
"""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.baselines import ExactTemporalGraph, Horae, PGSS
from repro.bench.methods import make_methods, scaled_higgs_config
from repro.queries import QueryWorkloadGenerator, evaluate_queries
from repro.streams import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lkml", scale=0.03)


@pytest.fixture(scope="module")
def dataset_truth(dataset):
    truth = ExactTemporalGraph()
    truth.insert_stream(dataset)
    return truth


class TestHiggsOnDatasetAnalogue:
    def test_higgs_answers_all_primitives_one_sided(self, dataset, dataset_truth):
        summary = Higgs(scaled_higgs_config(len(dataset)))
        summary.insert_stream(dataset)
        workload = QueryWorkloadGenerator(dataset)
        queries = (workload.edge_queries(60, 200)
                   + workload.vertex_queries(15, 200)
                   + workload.path_queries(10, 3, 200)
                   + workload.subgraph_queries(5, 8, 200))
        result = evaluate_queries(summary, queries, dataset_truth)
        assert result.accuracy.underestimates == 0
        assert result.total_queries == 90

    def test_structure_scales_with_stream_length(self, dataset):
        config = HiggsConfig(leaf_matrix_size=8, fingerprint_bits=14)
        half = Higgs(config)
        full = Higgs(config)
        midpoint = len(dataset) // 2
        for edge in list(dataset.edges)[:midpoint]:
            half.insert(edge.source, edge.destination, edge.weight, edge.timestamp)
        full.insert_stream(dataset)
        assert full.leaf_count > half.leaf_count
        assert full.memory_bytes() > half.memory_bytes()
        assert full.height >= half.height

    def test_aggregated_and_leaf_paths_agree_on_full_range(self, dataset,
                                                           dataset_truth):
        """A full-span query (answered mostly from aggregates) must equal the
        sum of two half-span queries (answered mostly from leaves)."""
        summary = Higgs(HiggsConfig(fingerprint_bits=22))
        summary.insert_stream(dataset)
        t_min, t_max = dataset.time_span
        middle = (t_min + t_max) // 2
        for source, destination in sorted(dataset.distinct_edges())[:40]:
            full = summary.edge_query(source, destination, t_min, t_max)
            split = (summary.edge_query(source, destination, t_min, middle)
                     + summary.edge_query(source, destination, middle + 1, t_max))
            assert full == pytest.approx(split)
            assert full == pytest.approx(
                dataset_truth.edge_query(source, destination, t_min, t_max))


class TestMethodComparisonPipeline:
    def test_all_methods_are_one_sided_on_the_same_workload(self, dataset,
                                                            dataset_truth):
        workload = QueryWorkloadGenerator(dataset)
        queries = workload.edge_queries(50, 300)
        for name, summary in make_methods(dataset).items():
            summary.insert_stream(dataset)
            result = evaluate_queries(summary, queries, dataset_truth)
            assert result.accuracy.underestimates == 0, name

    def test_higgs_memory_below_full_multilayer_baselines(self, dataset):
        methods = make_methods(dataset, include=["HIGGS", "Horae", "AuxoTime"])
        for summary in methods.values():
            summary.insert_stream(dataset)
        assert methods["HIGGS"].memory_bytes() < methods["Horae"].memory_bytes()
        assert methods["HIGGS"].memory_bytes() < methods["AuxoTime"].memory_bytes()

    def test_pgss_less_accurate_than_higgs_on_wide_ranges(self, dataset,
                                                          dataset_truth):
        higgs = Higgs(scaled_higgs_config(len(dataset)))
        t_min, t_max = dataset.time_span
        pgss = PGSS(expected_items=len(dataset), time_span=t_max - t_min + 1)
        higgs.insert_stream(dataset)
        pgss.insert_stream(dataset)
        workload = QueryWorkloadGenerator(dataset)
        queries = workload.edge_queries(80, t_max - t_min + 1)
        higgs_result = evaluate_queries(higgs, queries, dataset_truth)
        pgss_result = evaluate_queries(pgss, queries, dataset_truth)
        assert higgs_result.aae <= pgss_result.aae + 1e-9


class TestHoraeDecompositionConsistency:
    def test_horae_full_range_equals_subrange_sum(self, dataset, dataset_truth):
        t_min, t_max = dataset.time_span
        horae = Horae(expected_items=len(dataset), time_span=t_max - t_min + 1,
                      fingerprint_bits=16)
        horae.insert_stream(dataset)
        middle = (t_min + t_max) // 2
        for source, destination in sorted(dataset.distinct_edges())[:30]:
            full = horae.edge_query(source, destination, t_min, t_max)
            split = (horae.edge_query(source, destination, t_min, middle)
                     + horae.edge_query(source, destination, middle + 1, t_max))
            assert full == pytest.approx(split)
