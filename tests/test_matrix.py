"""Tests for the compressed matrix storage primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import VertexHasher
from repro.core.matrix import CompressedMatrix, MatrixEntry
from repro.errors import ConfigurationError


def _coords(vertex: str, hasher: VertexHasher):
    return hasher.split(vertex)


@pytest.fixture()
def hasher() -> VertexHasher:
    return VertexHasher(fingerprint_bits=12, matrix_size=8)


@pytest.fixture()
def matrix() -> CompressedMatrix:
    return CompressedMatrix(size=8, bucket_entries=2, num_probes=2,
                            store_timestamps=True, entry_bytes=14)


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressedMatrix(size=0, bucket_entries=2)
        with pytest.raises(ConfigurationError):
            CompressedMatrix(size=4, bucket_entries=0)
        with pytest.raises(ConfigurationError):
            CompressedMatrix(size=4, bucket_entries=1, num_probes=0)

    def test_capacity_and_memory(self):
        matrix = CompressedMatrix(size=4, bucket_entries=3, entry_bytes=10)
        assert matrix.capacity == 4 * 4 * 3
        assert matrix.memory_bytes() == matrix.capacity * 10
        assert matrix.entry_count == 0
        assert matrix.utilization == 0.0


class TestInsertAndEdgeQuery:
    def test_insert_then_query_returns_weight(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        assert matrix.insert(fs, fd, hs, hd, 2.5, timestamp=7)
        assert matrix.query_edge(fs, fd, hs, hd) == 2.5
        assert len(matrix) == 1

    def test_same_item_accumulates_in_one_entry(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=7)
        matrix.insert(fs, fd, hs, hd, 3.0, timestamp=7)
        assert matrix.entry_count == 1
        assert matrix.query_edge(fs, fd, hs, hd) == 4.0

    def test_same_edge_different_timestamps_use_separate_entries(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=7)
        matrix.insert(fs, fd, hs, hd, 3.0, timestamp=8)
        assert matrix.entry_count == 2
        assert matrix.query_edge(fs, fd, hs, hd) == 4.0

    def test_timestamp_range_filter(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=5)
        matrix.insert(fs, fd, hs, hd, 2.0, timestamp=15)
        assert matrix.query_edge(fs, fd, hs, hd, 0, 9) == 1.0
        assert matrix.query_edge(fs, fd, hs, hd, 10, 20) == 2.0
        assert matrix.query_edge(fs, fd, hs, hd, 0, 20) == 3.0
        assert matrix.query_edge(fs, fd, hs, hd, 16, 20) == 0.0

    def test_absent_edge_returns_zero(self, matrix, hasher):
        fs, hs = _coords("nope", hasher)
        fd, hd = _coords("never", hasher)
        assert matrix.query_edge(fs, fd, hs, hd) == 0.0

    def test_non_timestamped_matrix_ignores_timestamp(self, hasher):
        matrix = CompressedMatrix(size=8, bucket_entries=2,
                                  store_timestamps=False)
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=5)
        matrix.insert(fs, fd, hs, hd, 2.0, timestamp=99)
        assert matrix.entry_count == 1
        assert matrix.query_edge(fs, fd, hs, hd) == 3.0

    def test_start_and_end_time_tracking(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=50)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=10)
        matrix.insert(fs, fd, hs, hd, 1.0, timestamp=80)
        assert matrix.start_time == 10
        assert matrix.end_time == 80


class TestInsertionFailure:
    def test_insert_fails_when_all_candidate_buckets_full(self):
        # A 1x1 matrix with one entry per bucket and a single probe can hold
        # exactly one distinct item.
        matrix = CompressedMatrix(size=1, bucket_entries=1, num_probes=1)
        assert matrix.insert(1, 1, 0, 0, 1.0, timestamp=1)
        assert not matrix.insert(2, 2, 0, 0, 1.0, timestamp=1)
        # The matching item still accumulates.
        assert matrix.insert(1, 1, 0, 0, 1.0, timestamp=1)

    def test_multiple_probes_reduce_failures(self):
        single = CompressedMatrix(size=8, bucket_entries=1, num_probes=1)
        multi = CompressedMatrix(size=8, bucket_entries=1, num_probes=4)
        hasher = VertexHasher(fingerprint_bits=10, matrix_size=8, seed=5)
        single_failures = multi_failures = 0
        for i in range(120):
            fs, hs = hasher.split(f"s{i}")
            fd, hd = hasher.split(f"d{i}")
            if not single.insert(fs, fd, hs, hd, 1.0, timestamp=i):
                single_failures += 1
            if not multi.insert(fs, fd, hs, hd, 1.0, timestamp=i):
                multi_failures += 1
        assert multi_failures < single_failures


class TestDecrement:
    def test_decrement_existing_entry(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        matrix.insert(fs, fd, hs, hd, 5.0, timestamp=3)
        assert matrix.decrement(fs, fd, hs, hd, 2.0, timestamp=3)
        assert matrix.query_edge(fs, fd, hs, hd) == 3.0

    def test_decrement_missing_entry_returns_false(self, matrix, hasher):
        fs, hs = _coords("a", hasher)
        fd, hd = _coords("b", hasher)
        assert not matrix.decrement(fs, fd, hs, hd, 2.0, timestamp=3)


class TestVertexQuery:
    def test_out_and_in_direction(self, matrix, hasher):
        fa, ha = _coords("a", hasher)
        fb, hb = _coords("b", hasher)
        fc, hc = _coords("c", hasher)
        matrix.insert(fa, fb, ha, hb, 1.0, timestamp=1)
        matrix.insert(fa, fc, ha, hc, 2.0, timestamp=2)
        matrix.insert(fb, fc, hb, hc, 4.0, timestamp=3)
        assert matrix.query_vertex(fa, ha, direction="out") == 3.0
        assert matrix.query_vertex(fc, hc, direction="in") == 6.0
        assert matrix.query_vertex(fa, ha, direction="in") == 0.0

    def test_vertex_query_respects_time_filter(self, matrix, hasher):
        fa, ha = _coords("a", hasher)
        fb, hb = _coords("b", hasher)
        matrix.insert(fa, fb, ha, hb, 1.0, timestamp=1)
        matrix.insert(fa, fb, ha, hb, 2.0, timestamp=10)
        assert matrix.query_vertex(fa, ha, direction="out",
                                   t_start=0, t_end=5) == 1.0


class TestCanonicalIteration:
    def test_round_trip_preserves_totals(self, hasher):
        matrix = CompressedMatrix(size=8, bucket_entries=3, num_probes=3)
        inserted = {}
        for i in range(60):
            fs, hs = hasher.split(f"s{i % 10}")
            fd, hd = hasher.split(f"d{i % 7}")
            if matrix.insert(fs, fd, hs, hd, 1.0, timestamp=i):
                key = (fs, fd, hs, hd)
                inserted[key] = inserted.get(key, 0.0) + 1.0
        recovered = {}
        for fs, fd, hs, hd, weight, _ts in matrix.iter_canonical_entries():
            key = (fs, fd, hs, hd)
            recovered[key] = recovered.get(key, 0.0) + weight
        assert recovered == inserted


class TestMatrixEntry:
    def test_matches_semantics(self):
        entry = MatrixEntry(1, 2, 0, 0, 1.0, timestamp=5)
        assert entry.matches(1, 2)
        assert entry.matches(1, 2, 5)
        assert not entry.matches(1, 2, 6)
        assert not entry.matches(2, 2, 5)
        assert not entry.matches(1, 3)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20),
                          st.integers(1, 5), st.integers(0, 50)),
                min_size=1, max_size=80))
@settings(max_examples=40, deadline=None)
def test_property_estimates_never_underestimate(items):
    """Whatever fits in the matrix, an edge query never returns less than the
    exact weight of the queried (source, destination, time-range) triple."""
    hasher = VertexHasher(fingerprint_bits=10, matrix_size=8, seed=3)
    matrix = CompressedMatrix(size=8, bucket_entries=4, num_probes=2)
    truth = {}
    for src, dst, weight, ts in items:
        fs, hs = hasher.split(src)
        fd, hd = hasher.split(dst)
        if matrix.insert(fs, fd, hs, hd, float(weight), timestamp=ts):
            truth[(src, dst)] = truth.get((src, dst), 0.0) + weight
    for (src, dst), total in truth.items():
        fs, hs = hasher.split(src)
        fd, hd = hasher.split(dst)
        assert matrix.query_edge(fs, fd, hs, hd, 0, 50) >= total - 1e-9
