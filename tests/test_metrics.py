"""Tests for the accuracy and timing metrics."""

from __future__ import annotations

import math
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BenchmarkError
from repro.metrics import (ThroughputResult, Timer, accuracy_report,
                           average_absolute_error, average_latency_micros,
                           average_relative_error, measure_latencies,
                           measure_throughput)


class TestAccuracyMetrics:
    def test_aae_matches_paper_formula(self):
        truths = [10.0, 20.0, 0.0]
        estimates = [12.0, 20.0, 3.0]
        assert average_absolute_error(truths, estimates) == pytest.approx(5.0 / 3)

    def test_are_skips_zero_truth_terms(self):
        truths = [10.0, 0.0, 5.0]
        estimates = [11.0, 7.0, 5.0]
        assert average_relative_error(truths, estimates) == pytest.approx(0.05)

    def test_are_all_zero_truth(self):
        assert average_relative_error([0.0, 0.0], [0.0, 0.0]) == 0.0
        assert math.isinf(average_relative_error([0.0], [1.0]))

    def test_empty_batches(self):
        assert average_absolute_error([], []) == 0.0
        assert average_relative_error([], []) == 0.0
        report = accuracy_report([], [])
        assert report.count == 0
        assert report.exact_fraction == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(BenchmarkError):
            average_absolute_error([1.0], [1.0, 2.0])
        with pytest.raises(BenchmarkError):
            accuracy_report([1.0, 2.0], [1.0])

    def test_accuracy_report_fields(self):
        truths = [5.0, 10.0, 2.0, 8.0]
        estimates = [5.0, 12.0, 2.0, 7.0]
        report = accuracy_report(truths, estimates)
        assert report.count == 4
        assert report.aae == pytest.approx(0.75)
        assert report.max_absolute_error == pytest.approx(2.0)
        assert report.exact_fraction == pytest.approx(0.5)
        assert report.underestimates == 1
        assert not report.is_one_sided()

    def test_one_sided_report(self):
        report = accuracy_report([1.0, 2.0], [1.0, 2.5])
        assert report.underestimates == 0
        assert report.is_one_sided()

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_property_identical_vectors_have_zero_error(self, values):
        assert average_absolute_error(values, values) == 0.0
        report = accuracy_report(values, values)
        assert report.aae == 0.0
        assert report.exact_fraction == 1.0


class TestTimingMetrics:
    def test_throughput_result_properties(self):
        result = ThroughputResult(operations=100, elapsed_seconds=2.0)
        assert result.throughput == pytest.approx(50.0)
        assert result.latency_seconds == pytest.approx(0.02)
        assert result.latency_micros == pytest.approx(20_000.0)

    def test_zero_operations_and_zero_elapsed(self):
        assert ThroughputResult(0, 0.0).throughput == 0.0
        assert ThroughputResult(0, 1.0).latency_seconds == 0.0
        assert ThroughputResult(5, 0.0).throughput == 5.0

    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_measure_throughput_counts_operations(self):
        result = measure_throughput(lambda: time.sleep(0.01), operations=10)
        assert result.operations == 10
        assert result.elapsed_seconds > 0
        assert result.throughput > 0

    def test_measure_latencies_and_average(self):
        calls = [lambda: None] * 5
        latencies = measure_latencies(calls)
        assert len(latencies) == 5
        assert all(latency >= 0 for latency in latencies)
        assert average_latency_micros(calls) >= 0.0
        assert average_latency_micros([]) == 0.0
