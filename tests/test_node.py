"""Tests for HIGGS tree nodes (leaves and internal nodes)."""

from __future__ import annotations

import pytest

from repro.core.config import HiggsConfig
from repro.core.hashing import VertexHasher
from repro.core.matrix import CompressedMatrix
from repro.core.node import InternalNode, LeafNode


@pytest.fixture()
def config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=10)


@pytest.fixture()
def hasher(config) -> VertexHasher:
    return VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)


class TestLeafNode:
    def test_empty_leaf_has_no_time_range(self, config):
        leaf = LeafNode(0, config)
        assert leaf.t_min is None
        assert leaf.t_max is None
        assert not leaf.overlaps(0, 100)
        assert leaf.entry_count() == 0

    def test_time_range_tracks_inserts(self, config, hasher):
        leaf = LeafNode(0, config)
        fs, hs = hasher.split("a")
        fd, hd = hasher.split("b")
        leaf.matrix.insert(fs, fd, hs, hd, 1.0, timestamp=20)
        leaf.matrix.insert(fs, fd, hs, hd, 1.0, timestamp=5)
        assert leaf.t_min == 5
        assert leaf.t_max == 20
        assert leaf.overlaps(0, 10)
        assert leaf.overlaps(20, 30)
        assert not leaf.overlaps(21, 30)

    def test_overflow_blocks_extend_time_range_and_counts(self, config, hasher):
        leaf = LeafNode(0, config)
        fs, hs = hasher.split("a")
        fd, hd = hasher.split("b")
        leaf.matrix.insert(fs, fd, hs, hd, 1.0, timestamp=10)
        block = CompressedMatrix(config.leaf_matrix_size, 1,
                                 num_probes=config.num_probes,
                                 store_timestamps=True)
        block.insert(fs, fd, hs, hd, 1.0, timestamp=42)
        leaf.overflow_blocks.append(block)
        assert leaf.t_max == 42
        assert leaf.entry_count() == 2
        assert len(leaf.matrices()) == 2

    def test_memory_includes_overflow_blocks(self, config):
        leaf = LeafNode(0, config)
        base = leaf.memory_bytes(config)
        leaf.overflow_blocks.append(
            CompressedMatrix(config.leaf_matrix_size, 1,
                             entry_bytes=config.leaf_entry_bytes()))
        assert leaf.memory_bytes(config) > base


class TestInternalNode:
    def _node(self, config) -> InternalNode:
        matrix = CompressedMatrix(16, config.bucket_entries,
                                  num_probes=config.num_probes,
                                  store_timestamps=False)
        return InternalNode(level=2, index=0, matrix=matrix, keys=[10, 20],
                            t_min=0, t_max=30)

    def test_covered_and_overlap_semantics(self, config):
        node = self._node(config)
        assert node.covered_by(0, 30)
        assert node.covered_by(-5, 100)
        assert not node.covered_by(1, 30)
        assert node.overlaps(25, 60)
        assert not node.overlaps(31, 60)

    def test_edge_query_combines_matrix_and_overflow(self, config):
        node = self._node(config)
        node.matrix.insert(3, 4, 1, 2, 5.0)
        node.add_overflow(3, 4, 1, 2, 2.0)
        assert node.query_edge(3, 4, 1, 2) == 7.0
        assert node.query_edge(3, 5, 1, 2) == 0.0

    def test_vertex_query_combines_matrix_and_overflow(self, config):
        node = self._node(config)
        node.matrix.insert(3, 4, 1, 2, 5.0)
        node.add_overflow(3, 9, 1, 7, 2.0)
        node.add_overflow(8, 4, 6, 2, 1.0)
        assert node.query_vertex(3, 1, direction="out") == 7.0
        assert node.query_vertex(4, 2, direction="in") == 6.0

    def test_overflow_accumulates_same_key(self, config):
        node = self._node(config)
        node.add_overflow(1, 2, 3, 4, 1.0)
        node.add_overflow(1, 2, 3, 4, 2.5)
        assert node.overflow[(1, 2, 3, 4)] == 3.5

    def test_decrement_prefers_matrix_then_overflow(self, config):
        node = self._node(config)
        node.matrix.insert(3, 4, 1, 2, 5.0)
        node.add_overflow(6, 7, 0, 0, 4.0)
        assert node.decrement(3, 4, 1, 2, 2.0)
        assert node.query_edge(3, 4, 1, 2) == 3.0
        assert node.decrement(6, 7, 0, 0, 1.0)
        assert node.overflow[(6, 7, 0, 0)] == 3.0
        assert not node.decrement(9, 9, 9, 9, 1.0)

    def test_memory_counts_keys_and_overflow(self, config):
        node = self._node(config)
        base = node.memory_bytes(config)
        node.add_overflow(1, 2, 3, 4, 1.0)
        assert node.memory_bytes(config) > base
