"""Tests for the observability layer: metric registry, Prometheus/JSON
rendering, the snapshot emitter, and the adaptive epoch controller."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.observability import (AdaptiveEpochController, Counter, Gauge,
                                 MetricsRegistry, SnapshotEmitter,
                                 WindowedHistogram, nearest_rank)


class TestCounter:
    def test_increments_and_value(self):
        counter = Counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5.0

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("requests_total", labelnames=("kind",))
        counter.inc(kind="read")
        counter.inc(2, kind="write")
        assert counter.value(kind="read") == 1.0
        assert counter.value(kind="write") == 2.0
        assert counter.value(kind="unseen") == 0.0

    def test_wrong_label_set_rejected(self):
        counter = Counter("requests_total", labelnames=("kind",))
        with pytest.raises(ConfigurationError):
            counter.inc(shard="0")
        with pytest.raises(ConfigurationError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12.0

    def test_set_max_is_a_watermark(self):
        gauge = Gauge("peak")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.value() == 4.0
        gauge.set_max(9)
        assert gauge.value() == 9.0

    def test_callback_child_evaluated_at_collection(self):
        backing = {"value": 1.0}
        gauge = Gauge("depth")
        gauge.set_function(lambda: backing["value"])
        assert gauge.value() == 1.0
        backing["value"] = 7.0
        assert gauge.value() == 7.0

    def test_set_replaces_callback_and_vice_versa(self):
        gauge = Gauge("depth")
        gauge.set_function(lambda: 3.0)
        gauge.set(5.0)
        assert gauge.value() == 5.0
        gauge.set_function(lambda: 9.0)
        assert gauge.value() == 9.0


class TestWindowedHistogram:
    def test_report_over_window_only(self):
        histogram = WindowedHistogram("latency", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            histogram.observe(value)
        report = histogram.report()
        assert report["p50"] == 3.0  # window is [2, 3, 4, 100]
        assert histogram.count() == 5  # lifetime count survives the window

    def test_cold_series_reports_empty(self):
        histogram = WindowedHistogram("latency", labelnames=("kind",))
        assert histogram.report(kind="read") == {}
        assert histogram.count(kind="read") == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedHistogram("latency", window=0)

    def test_nearest_rank_contract(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert nearest_rank(samples, 50.0) == 50.0
        assert nearest_rank(samples, 99.0) == 99.0
        with pytest.raises(ValueError):
            nearest_rank([], 50.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101.0)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("requests_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("requests_total")

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("2bad")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_name", labelnames=("bad-label",))
        with pytest.raises(ConfigurationError):
            registry.counter("dup_labels", labelnames=("a", "a"))

    def test_get_and_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("b_total")
        registry.gauge("a_depth")
        assert registry.get("b_total") is counter
        assert registry.get("missing") is None
        assert registry.names() == ["a_depth", "b_total"]


class TestPrometheusRendering:
    def test_counter_and_gauge_text_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests served.",
                                   labelnames=("kind",))
        counter.inc(3, kind="read")
        gauge = registry.gauge("queue_depth", "Queue depth.")
        gauge.set(7)
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests served.\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{kind="read"} 3\n' in text
        assert "# TYPE queue_depth gauge\n" in text
        assert "queue_depth 7\n" in text

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       labelnames=("kind",))
        for value in (0.5, 1.5):
            histogram.observe(value, kind="read")
        text = registry.render_prometheus()
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{kind="read",quantile="0.5"} 0.5' in text
        assert 'latency_seconds{kind="read",quantile="0.99"} 1.5' in text
        assert 'latency_seconds_count{kind="read"} 2' in text
        assert 'latency_seconds_sum{kind="read"} 2' in text

    def test_help_and_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "weird_total", 'help with \\ backslash\nand newline',
            labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert "# HELP weird_total help with \\\\ backslash\\nand newline" \
            in text
        assert 'weird_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_output_stable_across_registration_and_observation_order(self):
        def build(order):
            registry = MetricsRegistry()
            if order:
                counter = registry.counter("z_total", labelnames=("kind",))
                gauge = registry.gauge("a_depth")
            else:
                gauge = registry.gauge("a_depth")
                counter = registry.counter("z_total", labelnames=("kind",))
            kinds = ("read", "write") if order else ("write", "read")
            for kind in kinds:
                counter.inc(kind=kind)
            gauge.set(3)
            return registry.render_prometheus()

        assert build(True) == build(False)

    def test_sample_lines_sorted_by_label_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("shard_items", labelnames=("shard",))
        for shard in ("2", "0", "1"):
            gauge.set(1.0, shard=shard)
        text = registry.render_prometheus()
        lines = [line for line in text.splitlines()
                 if line.startswith("shard_items{")]
        assert lines == sorted(lines)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestSnapshot:
    def test_snapshot_is_json_able_and_keyed_by_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", labelnames=("kind",))
        counter.inc(2, kind="read")
        histogram = registry.histogram("latency_seconds")
        histogram.observe(0.25)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["requests_total"]["values"]["kind=read"] == 2.0
        entry = round_tripped["latency_seconds"]["values"][""]
        assert entry["count"] == 1.0
        assert entry["p50"] == 0.25


class TestSnapshotEmitter:
    def test_emit_once_structure(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        lines = []
        emitter = SnapshotEmitter(registry, lines.append, source="test",
                                  clock=lambda: 1234.5)
        line = emitter.emit_once()
        assert lines == [line]
        parsed = json.loads(line)
        assert parsed["event"] == "metrics"
        assert parsed["source"] == "test"
        assert parsed["ts"] == 1234.5
        assert parsed["metrics"]["requests_total"]["values"][""] == 3.0
        # Sorted keys: identical state serializes identically.
        assert line == emitter.emit_once()

    def test_sink_errors_counted_not_raised(self):
        def broken_sink(line):
            raise RuntimeError("pipe closed")

        emitter = SnapshotEmitter(MetricsRegistry(), broken_sink)
        emitter.emit_once()
        assert emitter.sink_errors == 1
        assert emitter.emitted == 1

    def test_periodic_emission_and_stop(self):
        lines = []
        emitter = SnapshotEmitter(MetricsRegistry(), lines.append,
                                  interval_s=0.02)
        with emitter:
            deadline = time.time() + 5.0
            while len(lines) < 3 and time.time() < deadline:
                time.sleep(0.01)
        assert len(lines) >= 3
        emitter.stop()  # idempotent
        settled = len(lines)
        time.sleep(0.06)
        assert len(lines) == settled

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotEmitter(MetricsRegistry(), interval_s=0.0)


class TestAdaptiveEpochController:
    def test_starts_at_min_and_clamps_initial(self):
        controller = AdaptiveEpochController(min_size=100, max_size=1000)
        assert controller.size == 100
        low = AdaptiveEpochController(min_size=100, max_size=1000, initial=5)
        assert low.size == 100
        high = AdaptiveEpochController(min_size=100, max_size=1000,
                                       initial=5000)
        assert high.size == 1000

    def test_deep_queue_grows_immediately_and_clamps_at_max(self):
        controller = AdaptiveEpochController(min_size=100, max_size=350,
                                             grow_factor=2.0)
        assert controller.observe(60, 100) == 200
        assert controller.observe(60, 100) == 350  # clamped, not 400
        assert controller.observe(100, 100) == 350  # saturated: no change
        assert controller.adjustments == 2

    def test_shrink_needs_sustained_quiet(self):
        controller = AdaptiveEpochController(min_size=100, max_size=1000,
                                             initial=800, cooldown_rounds=3,
                                             shrink_factor=0.5)
        assert controller.observe(0, 100) == 800
        assert controller.observe(0, 100) == 800
        assert controller.observe(0, 100) == 400  # third quiet round shrinks
        assert controller.adjustments == 1

    def test_interrupted_quiet_streak_resets_damping(self):
        controller = AdaptiveEpochController(min_size=100, max_size=1000,
                                             initial=800, cooldown_rounds=3,
                                             high_fraction=0.5,
                                             low_fraction=0.1)
        controller.observe(0, 100)
        controller.observe(0, 100)
        controller.observe(30, 100)  # mid-band: streak resets, size holds
        assert controller.size == 800
        controller.observe(0, 100)
        controller.observe(0, 100)
        assert controller.size == 800  # streak restarted, not yet 3
        controller.observe(0, 100)
        assert controller.size == 400

    def test_zero_traffic_walks_down_to_min_and_idles(self):
        controller = AdaptiveEpochController(min_size=100, max_size=1000,
                                             initial=1000, cooldown_rounds=2)
        for _ in range(20):
            controller.observe(0, 100)
        assert controller.size == 100
        adjustments = controller.adjustments
        for _ in range(10):
            controller.observe(0, 100)
        assert controller.size == 100
        assert controller.adjustments == adjustments  # idle: no churn

    def test_bursty_load_settles_wide_instead_of_thrashing(self):
        controller = AdaptiveEpochController(min_size=100, max_size=800,
                                             cooldown_rounds=3)
        # Alternating deep/shallow rounds: immediate growth wins because a
        # single shallow round never satisfies the shrink cooldown.
        for _ in range(6):
            controller.observe(80, 100)
            controller.observe(0, 100)
        assert controller.size == 800

    def test_depth_beyond_capacity_counts_as_full(self):
        controller = AdaptiveEpochController(min_size=100, max_size=400)
        assert controller.observe(250, 100) == 200

    @pytest.mark.parametrize("kwargs", [
        {"min_size": 0, "max_size": 10},
        {"min_size": 20, "max_size": 10},
        {"min_size": 1, "max_size": 10, "grow_factor": 1.0},
        {"min_size": 1, "max_size": 10, "shrink_factor": 1.0},
        {"min_size": 1, "max_size": 10, "shrink_factor": 0.0},
        {"min_size": 1, "max_size": 10, "low_fraction": 0.5,
         "high_fraction": 0.5},
        {"min_size": 1, "max_size": 10, "cooldown_rounds": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveEpochController(**kwargs)

    def test_invalid_capacity_rejected(self):
        controller = AdaptiveEpochController(min_size=1, max_size=10)
        with pytest.raises(ConfigurationError):
            controller.observe(0, 0)
