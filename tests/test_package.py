"""Package-level tests: public exports, error hierarchy, example smoke run."""

from __future__ import annotations

import importlib
import runpy
import sys
from pathlib import Path

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in ("Higgs", "HiggsConfig", "TemporalGraphSummary",
                     "GraphStream", "StreamEdge"):
            assert hasattr(repro, name)
            assert name in repro.__all__

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.baselines", "repro.streams", "repro.queries",
        "repro.metrics", "repro.bench", "repro.bench.experiments",
    ])
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} is missing a module docstring"

    def test_all_exports_resolve(self):
        for module_name in ("repro", "repro.core", "repro.baselines",
                            "repro.streams", "repro.queries", "repro.metrics",
                            "repro.bench"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("ConfigurationError", "InsertionError", "QueryError",
                     "DatasetError", "BenchmarkError"):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.ReproError)
            assert issubclass(error_type, Exception)


class TestExamples:
    def test_quickstart_example_runs(self, capsys):
        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples_dir))
        try:
            runpy.run_path(str(examples_dir / "quickstart.py"), run_name="__main__")
        finally:
            sys.path.remove(str(examples_dir))
        output = capsys.readouterr().out
        assert "edge   v2->v3 over [t5, t10]   = 3.0" in output
        assert "vertex v4 outgoing over [t1, t11] = 6.0" in output

    def test_example_scripts_exist_and_are_documented(self):
        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        scripts = sorted(examples_dir.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            text = script.read_text(encoding="utf-8")
            assert '"""' in text.split("\n", 3)[1] + text, script
            assert "def main()" in text, script
