"""Tests for the pipelined / batched insertion paths and the shard workers."""

from __future__ import annotations

import threading
import time

import pytest

from repro import Higgs, HiggsConfig
from repro.core.executor import (InlineShardWorker, ProcessShardWorker,
                                 ThreadShardWorker)
from repro.core.parallel import PipelinedInserter, insert_stream_parallel
from repro.errors import ConfigurationError, ShardingError
from repro.streams.edge import StreamEdge


def _config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=18)


class TestPipelinedInserter:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelinedInserter(Higgs(_config()), mode="warp-drive")

    def test_threaded_mode_survives_failing_stream_iterable(self):
        """A stream iterable that raises mid-iteration must propagate without
        leaking the worker thread (the shutdown sentinel is always sent)."""
        def exploding_stream():
            yield StreamEdge("a", "b", 1.0, 1)
            yield StreamEdge("b", "c", 1.0, 2)
            raise RuntimeError("stream source died")

        summary = Higgs(_config())
        before = threading.active_count()
        with pytest.raises(RuntimeError, match="stream source died"):
            PipelinedInserter(summary, mode="threaded").insert_stream(
                exploding_stream())
        assert threading.active_count() == before
        # The items yielded before the failure were applied.
        assert summary.tree.items_inserted == 2

    @pytest.mark.parametrize("mode", ["serial", "batched", "threaded"])
    def test_all_modes_insert_every_item(self, mode, small_stream):
        summary = Higgs(_config())
        inserted = PipelinedInserter(summary, mode=mode).insert_stream(small_stream)
        assert inserted == len(small_stream)
        assert summary.tree.items_inserted == len(small_stream)

    @pytest.mark.parametrize("mode", ["batched", "threaded"])
    def test_modes_build_equivalent_structures(self, mode, small_stream, small_truth):
        serial = Higgs(_config())
        serial.insert_stream(small_stream)
        other = Higgs(_config())
        insert_stream_parallel(other, small_stream, mode=mode)

        assert other.leaf_count == serial.leaf_count
        assert other.height == serial.height
        t_min, t_max = small_stream.time_span
        for source, destination in sorted(small_stream.distinct_edges())[:50]:
            assert other.edge_query(source, destination, t_min, t_max) == \
                pytest.approx(serial.edge_query(source, destination, t_min, t_max))

    def test_batched_respects_batch_size(self, small_stream):
        summary = Higgs(_config())
        inserter = PipelinedInserter(summary, mode="batched", batch_size=17)
        assert inserter.insert_stream(small_stream) == len(small_stream)

    def test_batch_size_clamped_to_one(self):
        inserter = PipelinedInserter(Higgs(_config()), mode="batched", batch_size=0)
        assert inserter.batch_size == 1


class TestThreadedConsumerFailure:
    """Regression: a consumer-side exception must reach the caller promptly.

    Before the fix, a dead consumer left the bounded work queue full, so the
    producer blocked forever in ``put`` and never sent the shutdown sentinel
    — the pipeline deadlocked instead of raising.
    """

    def _poisoned_summary(self, fail_after: int) -> Higgs:
        summary = Higgs(_config())
        original = summary.tree.insert_hashed
        calls = {"n": 0}

        def poisoned(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > fail_after:
                raise RuntimeError("poisoned insert_hashed")
            return original(*args, **kwargs)

        summary.tree.insert_hashed = poisoned
        return summary

    def test_consumer_exception_propagates_without_hang(self):
        # A small batch_size gives a small bounded queue (4 * batch_size),
        # and the stream is far larger, so the pre-fix producer is guaranteed
        # to block on `put` once the consumer dies.
        summary = self._poisoned_summary(fail_after=3)
        inserter = PipelinedInserter(summary, mode="threaded", batch_size=4)
        stream = [StreamEdge(f"s{i}", f"d{i}", 1.0, i) for i in range(5_000)]

        outcome: dict = {}

        def run() -> None:
            try:
                inserter.insert_stream(stream)
                outcome["result"] = "returned"
            except RuntimeError as exc:
                outcome["error"] = exc

        caller = threading.Thread(target=run, daemon=True)
        caller.start()
        caller.join(timeout=15.0)
        assert not caller.is_alive(), "threaded insert deadlocked"
        assert "error" in outcome
        assert "poisoned insert_hashed" in str(outcome["error"])

    def test_immediate_consumer_failure_propagates(self):
        summary = self._poisoned_summary(fail_after=0)
        inserter = PipelinedInserter(summary, mode="threaded", batch_size=2)
        stream = [StreamEdge(f"s{i}", f"d{i}", 1.0, i) for i in range(1_000)]
        with pytest.raises(RuntimeError, match="poisoned"):
            inserter.insert_stream(stream)


class _SlowTarget:
    """Picklable worker target whose method blocks long enough to be killed."""

    def nap(self, seconds: float = 60.0) -> str:
        time.sleep(seconds)
        return "rested"

    def ping(self) -> str:
        return "pong"


class TestProcessWorkerDeath:
    """Regression: a worker that dies between submit and collect must surface
    a :class:`ShardingError` naming the shard, not hang on the result pipe."""

    def test_killed_worker_fails_collect_promptly(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-7")
        try:
            worker.submit("nap", (60.0,))
            # Let the child dequeue the call, then kill it mid-nap: nothing
            # will ever arrive on the result pipe for this submit.
            time.sleep(0.2)
            worker._process.kill()

            outcome: dict = {}

            def collect() -> None:
                outcome["result"] = worker.collect()

            caller = threading.Thread(target=collect, daemon=True)
            start = time.perf_counter()
            caller.start()
            caller.join(timeout=10.0)
            assert not caller.is_alive(), "collect hung on a dead worker"
            assert time.perf_counter() - start < 10.0
            result = outcome["result"]
            assert not result.ok
            assert isinstance(result.error, ShardingError)
            assert "shard-7" in str(result.error)
        finally:
            worker.close()

    def test_collect_timeout_on_slow_worker(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-3")
        try:
            worker.submit("nap", (60.0,))
            start = time.perf_counter()
            result = worker.collect(timeout=0.5)
            elapsed = time.perf_counter() - start
            assert elapsed < 5.0
            assert not result.ok
            assert isinstance(result.error, ShardingError)
            assert "timed out" in str(result.error)
            assert "shard-3" in str(result.error)
        finally:
            worker._process.kill()  # don't wait out the 60s nap in close()
            worker.close()

    def test_healthy_worker_still_collects(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-0")
        try:
            result = worker.call("ping")
            assert result.ok and result.value == "pong"
        finally:
            worker.close()


class TestWorkerDrain:
    """The reserved drain op is a FIFO barrier on every worker kind."""

    @pytest.mark.parametrize("worker_cls", [InlineShardWorker, ThreadShardWorker])
    def test_drain_waits_for_submitted_work(self, worker_cls):
        events: list = []

        class Recorder:
            def work(self, tag: str) -> None:
                time.sleep(0.02)
                events.append(tag)

        worker = worker_cls(Recorder)
        try:
            worker.submit("work", ("a",))
            worker.submit("work", ("b",))
            worker.collect()
            worker.collect()
            result = worker.drain(timeout=5.0)
            assert result.ok
            assert events == ["a", "b"]
        finally:
            worker.close()

    def test_process_worker_drain(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-1")
        try:
            worker.submit("ping")
            assert worker.collect(timeout=5.0).value == "pong"
            assert worker.drain(timeout=5.0).ok
        finally:
            worker.close()


class TestCollectTimeoutPairing:
    """A timed-out collect abandons its call without desynchronizing the
    FIFO submit/collect pairing: the stale result is discarded when it
    arrives, and later collects return their own calls' results."""

    def test_thread_worker_stays_paired_after_timeout(self):
        worker = ThreadShardWorker(_SlowTarget, name="shard-5")
        try:
            worker.submit("nap", (0.4,))
            timed_out = worker.collect(timeout=0.05)
            assert not timed_out.ok and "timed out" in str(timed_out.error)
            # The abandoned nap's "rested" must NOT surface as ping's result.
            result = worker.call("ping")
            assert result.ok and result.value == "pong"
        finally:
            worker.close()

    def test_process_worker_stays_paired_after_timeout(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-6")
        try:
            worker.submit("nap", (0.4,))
            timed_out = worker.collect(timeout=0.05)
            assert not timed_out.ok and "timed out" in str(timed_out.error)
            result = worker.call("ping")
            assert result.ok and result.value == "pong"
        finally:
            worker.close()


class TestDrainWithOutstandingCalls:
    """drain() must be a real barrier even when submitted calls were never
    collected: it discards their results and returns the barrier op's own
    result, leaving the FIFO pairing clean for subsequent calls."""

    @pytest.mark.parametrize("worker_cls", [InlineShardWorker, ThreadShardWorker])
    def test_drain_discards_uncollected_results(self, worker_cls):
        worker = worker_cls(_SlowTarget)
        try:
            worker.submit("nap", (0.1,))   # never collected by the caller
            worker.submit("ping")          # never collected by the caller
            assert worker.outstanding == 2
            result = worker.drain(timeout=10.0)
            assert result.ok and result.value is None
            assert worker.outstanding == 0
            # Pairing is clean: the next call gets its own result, not a
            # leftover "rested"/"pong" from before the barrier.
            follow_up = worker.call("ping")
            assert follow_up.ok and follow_up.value == "pong"
        finally:
            worker.close()

    def test_process_worker_drain_discards_uncollected_results(self):
        worker = ProcessShardWorker(_SlowTarget, name="shard-9")
        try:
            worker.submit("nap", (0.1,))
            assert worker.outstanding == 1
            result = worker.drain(timeout=10.0)
            assert result.ok and result.value is None
            follow_up = worker.call("ping")
            assert follow_up.ok and follow_up.value == "pong"
        finally:
            worker.close()
