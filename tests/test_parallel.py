"""Tests for the pipelined / batched insertion paths."""

from __future__ import annotations

import threading

import pytest

from repro import Higgs, HiggsConfig
from repro.core.parallel import PipelinedInserter, insert_stream_parallel
from repro.streams.edge import StreamEdge


def _config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=18)


class TestPipelinedInserter:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PipelinedInserter(Higgs(_config()), mode="warp-drive")

    def test_threaded_mode_survives_failing_stream_iterable(self):
        """A stream iterable that raises mid-iteration must propagate without
        leaking the worker thread (the shutdown sentinel is always sent)."""
        def exploding_stream():
            yield StreamEdge("a", "b", 1.0, 1)
            yield StreamEdge("b", "c", 1.0, 2)
            raise RuntimeError("stream source died")

        summary = Higgs(_config())
        before = threading.active_count()
        with pytest.raises(RuntimeError, match="stream source died"):
            PipelinedInserter(summary, mode="threaded").insert_stream(
                exploding_stream())
        assert threading.active_count() == before
        # The items yielded before the failure were applied.
        assert summary.tree.items_inserted == 2

    @pytest.mark.parametrize("mode", ["serial", "batched", "threaded"])
    def test_all_modes_insert_every_item(self, mode, small_stream):
        summary = Higgs(_config())
        inserted = PipelinedInserter(summary, mode=mode).insert_stream(small_stream)
        assert inserted == len(small_stream)
        assert summary.tree.items_inserted == len(small_stream)

    @pytest.mark.parametrize("mode", ["batched", "threaded"])
    def test_modes_build_equivalent_structures(self, mode, small_stream, small_truth):
        serial = Higgs(_config())
        serial.insert_stream(small_stream)
        other = Higgs(_config())
        insert_stream_parallel(other, small_stream, mode=mode)

        assert other.leaf_count == serial.leaf_count
        assert other.height == serial.height
        t_min, t_max = small_stream.time_span
        for source, destination in sorted(small_stream.distinct_edges())[:50]:
            assert other.edge_query(source, destination, t_min, t_max) == \
                pytest.approx(serial.edge_query(source, destination, t_min, t_max))

    def test_batched_respects_batch_size(self, small_stream):
        summary = Higgs(_config())
        inserter = PipelinedInserter(summary, mode="batched", batch_size=17)
        assert inserter.insert_stream(small_stream) == len(small_stream)

    def test_batch_size_clamped_to_one(self):
        inserter = PipelinedInserter(Higgs(_config()), mode="batched", batch_size=0)
        assert inserter.batch_size == 1


class TestThreadedConsumerFailure:
    """Regression: a consumer-side exception must reach the caller promptly.

    Before the fix, a dead consumer left the bounded work queue full, so the
    producer blocked forever in ``put`` and never sent the shutdown sentinel
    — the pipeline deadlocked instead of raising.
    """

    def _poisoned_summary(self, fail_after: int) -> Higgs:
        summary = Higgs(_config())
        original = summary.tree.insert_hashed
        calls = {"n": 0}

        def poisoned(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > fail_after:
                raise RuntimeError("poisoned insert_hashed")
            return original(*args, **kwargs)

        summary.tree.insert_hashed = poisoned
        return summary

    def test_consumer_exception_propagates_without_hang(self):
        # A small batch_size gives a small bounded queue (4 * batch_size),
        # and the stream is far larger, so the pre-fix producer is guaranteed
        # to block on `put` once the consumer dies.
        summary = self._poisoned_summary(fail_after=3)
        inserter = PipelinedInserter(summary, mode="threaded", batch_size=4)
        stream = [StreamEdge(f"s{i}", f"d{i}", 1.0, i) for i in range(5_000)]

        outcome: dict = {}

        def run() -> None:
            try:
                inserter.insert_stream(stream)
                outcome["result"] = "returned"
            except RuntimeError as exc:
                outcome["error"] = exc

        caller = threading.Thread(target=run, daemon=True)
        caller.start()
        caller.join(timeout=15.0)
        assert not caller.is_alive(), "threaded insert deadlocked"
        assert "error" in outcome
        assert "poisoned insert_hashed" in str(outcome["error"])

    def test_immediate_consumer_failure_propagates(self):
        summary = self._poisoned_summary(fail_after=0)
        inserter = PipelinedInserter(summary, mode="threaded", batch_size=2)
        stream = [StreamEdge(f"s{i}", f"d{i}", 1.0, i) for i in range(1_000)]
        with pytest.raises(RuntimeError, match="poisoned"):
            inserter.insert_stream(stream)
