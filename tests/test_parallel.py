"""Tests for the pipelined / batched insertion paths."""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.core.parallel import PipelinedInserter, insert_stream_parallel


def _config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=18)


class TestPipelinedInserter:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PipelinedInserter(Higgs(_config()), mode="warp-drive")

    @pytest.mark.parametrize("mode", ["serial", "batched", "threaded"])
    def test_all_modes_insert_every_item(self, mode, small_stream):
        summary = Higgs(_config())
        inserted = PipelinedInserter(summary, mode=mode).insert_stream(small_stream)
        assert inserted == len(small_stream)
        assert summary.tree.items_inserted == len(small_stream)

    @pytest.mark.parametrize("mode", ["batched", "threaded"])
    def test_modes_build_equivalent_structures(self, mode, small_stream, small_truth):
        serial = Higgs(_config())
        serial.insert_stream(small_stream)
        other = Higgs(_config())
        insert_stream_parallel(other, small_stream, mode=mode)

        assert other.leaf_count == serial.leaf_count
        assert other.height == serial.height
        t_min, t_max = small_stream.time_span
        for source, destination in sorted(small_stream.distinct_edges())[:50]:
            assert other.edge_query(source, destination, t_min, t_max) == \
                pytest.approx(serial.edge_query(source, destination, t_min, t_max))

    def test_batched_respects_batch_size(self, small_stream):
        summary = Higgs(_config())
        inserter = PipelinedInserter(summary, mode="batched", batch_size=17)
        assert inserter.insert_stream(small_stream) == len(small_stream)

    def test_batch_size_clamped_to_one(self):
        inserter = PipelinedInserter(Higgs(_config()), mode="batched", batch_size=0)
        assert inserter.batch_size == 1
