"""Tests for the CI performance-regression gate (``tools/check_perf.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_perf():
    spec = importlib.util.spec_from_file_location(
        "check_perf", REPO_ROOT / "tools" / "check_perf.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_perf", module)
    spec.loader.exec_module(module)
    return module


check_perf = _load_check_perf()


class TestCompare:
    BASELINES = {"batch_higgs_speedup_x": {"value": 2.0},
                 "sharded_parallel_x4": {"value": 2.4}}

    def test_within_tolerance_passes(self):
        measured = {"batch_higgs_speedup_x": 1.5, "sharded_parallel_x4": 2.0,
                    "batch_higgs_eps": 100_000.0}
        rows = check_perf.compare(measured, self.BASELINES, tolerance=0.30)
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["batch_higgs_speedup_x"]["ok"]          # 1.5 >= 1.4
        assert by_metric["sharded_parallel_x4"]["ok"]            # 2.0 >= 1.68
        info = by_metric["batch_higgs_eps"]
        assert not info["gated"] and info["ok"]

    def test_regression_past_tolerance_fails(self):
        measured = {"batch_higgs_speedup_x": 1.3, "sharded_parallel_x4": 2.4}
        rows = check_perf.compare(measured, self.BASELINES, tolerance=0.30)
        failed = [row for row in rows if row["gated"] and not row["ok"]]
        assert [row["metric"] for row in failed] == ["batch_higgs_speedup_x"]
        assert failed[0]["floor"] == pytest.approx(1.4)

    def test_missing_gated_metric_fails(self):
        rows = check_perf.compare({"batch_higgs_speedup_x": 2.0},
                                  self.BASELINES, tolerance=0.30)
        missing = [row for row in rows if row["measured"] is None]
        assert [row["metric"] for row in missing] == ["sharded_parallel_x4"]
        assert missing[0]["gated"] and not missing[0]["ok"]


class TestCommittedBaselines:
    def test_baselines_file_is_well_formed(self):
        spec = json.loads((REPO_ROOT / "benchmarks" / "baselines.json")
                          .read_text(encoding="utf-8"))
        assert 0.0 < spec["tolerance"] < 1.0
        assert spec["scale"] > 0
        assert set(spec["metrics"]) == {"batch_higgs_speedup_x",
                                        "sharded_parallel_x4",
                                        "rebalance_recovery_x"}
        for entry in spec["metrics"].values():
            assert entry["value"] > 1.0, "a gated speedup baseline must be >1x"


class TestInjectedSlowdown:
    """The gate must demonstrably fail when the guarded path gets slower."""

    def test_injected_slowdown_collapses_batch_speedup(self, monkeypatch):
        from repro.core.higgs import Higgs

        original = Higgs.insert_batch

        def slowed(self, edges):
            time.sleep(0.02)
            return original(self, edges)

        # Miniature clean measurement first, then the same with a real
        # slowdown injected into the batch path; the gated ratio must
        # collapse below a 30% tolerance floor of the clean figure.
        clean = check_perf.run_measurements(scale=0.01)
        monkeypatch.setattr(Higgs, "insert_batch", slowed)
        slow = check_perf.run_measurements(scale=0.01)

        baselines = {"batch_higgs_speedup_x":
                     {"value": clean["batch_higgs_speedup_x"]}}
        rows = check_perf.compare(slow, baselines, tolerance=0.30)
        gated = next(row for row in rows
                     if row["metric"] == "batch_higgs_speedup_x")
        assert not gated["ok"], (
            f"injected slowdown did not trip the gate: clean "
            f"{clean['batch_higgs_speedup_x']:.2f}x vs slowed "
            f"{slow['batch_higgs_speedup_x']:.2f}x")
