"""Tests for the CI performance-regression gate (``tools/check_perf.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_perf():
    spec = importlib.util.spec_from_file_location(
        "check_perf", REPO_ROOT / "tools" / "check_perf.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_perf", module)
    spec.loader.exec_module(module)
    return module


check_perf = _load_check_perf()


class TestCompare:
    BASELINES = {"batch_higgs_speedup_x": {"value": 2.0},
                 "sharded_parallel_x4": {"value": 2.4}}

    def test_within_tolerance_passes(self):
        measured = {"batch_higgs_speedup_x": 1.5, "sharded_parallel_x4": 2.0,
                    "batch_higgs_eps": 100_000.0}
        rows = check_perf.compare(measured, self.BASELINES, tolerance=0.30)
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["batch_higgs_speedup_x"]["ok"]          # 1.5 >= 1.4
        assert by_metric["sharded_parallel_x4"]["ok"]            # 2.0 >= 1.68
        info = by_metric["batch_higgs_eps"]
        assert not info["gated"] and info["ok"]

    def test_regression_past_tolerance_fails(self):
        measured = {"batch_higgs_speedup_x": 1.3, "sharded_parallel_x4": 2.4}
        rows = check_perf.compare(measured, self.BASELINES, tolerance=0.30)
        failed = [row for row in rows if row["gated"] and not row["ok"]]
        assert [row["metric"] for row in failed] == ["batch_higgs_speedup_x"]
        assert failed[0]["limit"] == pytest.approx(1.4)
        assert failed[0]["direction"] == "higher"

    def test_missing_gated_metric_fails(self):
        rows = check_perf.compare({"batch_higgs_speedup_x": 2.0},
                                  self.BASELINES, tolerance=0.30)
        missing = [row for row in rows if row["measured"] is None]
        assert [row["metric"] for row in missing] == ["sharded_parallel_x4"]
        assert missing[0]["gated"] and not missing[0]["ok"]

    def test_lower_direction_gates_as_a_ceiling(self):
        baselines = {"serving_read_p99_p50_x":
                     {"value": 5.0, "direction": "lower"}}
        ok_rows = check_perf.compare({"serving_read_p99_p50_x": 6.0},
                                     baselines, tolerance=0.30)
        assert ok_rows[0]["ok"]                                  # 6.0 <= 6.5
        assert ok_rows[0]["limit"] == pytest.approx(6.5)
        bad_rows = check_perf.compare({"serving_read_p99_p50_x": 7.0},
                                      baselines, tolerance=0.30)
        assert not bad_rows[0]["ok"]                             # 7.0 > 6.5

    def test_per_metric_tolerance_overrides_file_wide(self):
        baselines = {"serving_shed_fraction":
                     {"value": 0.5, "direction": "lower", "tolerance": 0.1}}
        rows = check_perf.compare({"serving_shed_fraction": 0.6},
                                  baselines, tolerance=0.30)
        # File-wide 30% would allow 0.65; the per-metric 10% caps at 0.55.
        assert rows[0]["limit"] == pytest.approx(0.55)
        assert not rows[0]["ok"]

    def test_unknown_direction_rejected(self):
        baselines = {"some_metric": {"value": 1.0, "direction": "sideways"}}
        with pytest.raises(ValueError):
            check_perf.compare({"some_metric": 1.0}, baselines, tolerance=0.3)

    def test_min_cores_skips_on_small_host(self, monkeypatch):
        baselines = {"sharded_wall_x4": {"value": 2.0, "min_cores": 4}}
        monkeypatch.setattr(check_perf.os, "cpu_count", lambda: 2)
        rows = check_perf.compare({"sharded_wall_x4": 0.9}, baselines,
                                  tolerance=0.30)
        # Way below the limit, yet recorded-but-skipped: the host cannot
        # realize parallel speedup, so the verdict is a skip, not a failure.
        assert rows[0]["ok"]
        assert rows[0]["skipped"] == "skipped: 2 cores"
        assert rows[0]["measured"] == 0.9

    def test_min_cores_enforced_on_big_host(self, monkeypatch):
        baselines = {"sharded_wall_x4": {"value": 2.0, "min_cores": 4}}
        monkeypatch.setattr(check_perf.os, "cpu_count", lambda: 8)
        rows = check_perf.compare({"sharded_wall_x4": 0.9}, baselines,
                                  tolerance=0.30)
        assert not rows[0]["ok"]
        assert rows[0]["skipped"] is None


class TestMarkdownSummary:
    def _rows(self):
        baselines = {
            "batch_higgs_speedup_x": {"value": 2.0},
            "sharded_wall_x4": {"value": 2.0, "min_cores": 4},
        }
        return check_perf.compare(
            {"batch_higgs_speedup_x": 1.0, "sharded_wall_x4": 1.1,
             "host_cores": 1.0},
            baselines, tolerance=0.30)

    def test_table_includes_every_metric_with_verdicts(self, monkeypatch):
        monkeypatch.setattr(check_perf.os, "cpu_count", lambda: 1)
        text = check_perf.render_markdown(self._rows(), scale=0.1,
                                          tolerance=0.30)
        assert "| metric | measured | baseline | delta | verdict |" in text
        assert "| `batch_higgs_speedup_x` | 1.000 | 2.000 | -50.0% |" in text
        assert "❌ FAIL" in text
        assert "skipped: 1 cores" in text
        assert "| `host_cores` | 1.000 | — | — | info |" in text

    def test_summary_flag_appends_to_step_summary_file(
            self, tmp_path, monkeypatch):
        target = tmp_path / "step_summary.md"
        target.write_text("prior content\n", encoding="utf-8")
        monkeypatch.setattr(check_perf.os, "cpu_count", lambda: 1)
        markdown = check_perf.render_markdown(self._rows(), scale=0.1,
                                              tolerance=0.30)
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
        text = target.read_text(encoding="utf-8")
        assert text.startswith("prior content\n")
        assert "### Perf gate" in text


class TestCommittedBaselines:
    def test_baselines_file_is_well_formed(self):
        spec = json.loads((REPO_ROOT / "benchmarks" / "baselines.json")
                          .read_text(encoding="utf-8"))
        assert 0.0 < spec["tolerance"] < 1.0
        assert spec["scale"] > 0
        assert set(spec["metrics"]) == {"batch_higgs_speedup_x",
                                        "sharded_parallel_x4",
                                        "sharded_wall_x4",
                                        "rebalance_recovery_x",
                                        "serving_read_p99_p50_x",
                                        "serving_shed_fraction"}
        # The measured-parallel metric is hardware-gated: enforced only on
        # runners with at least four cores.
        assert spec["metrics"]["sharded_wall_x4"]["min_cores"] == 4
        assert spec["metrics"]["sharded_wall_x4"]["value"] >= 2.0
        for name, entry in spec["metrics"].items():
            direction = entry.get("direction", "higher")
            assert direction in ("higher", "lower")
            if direction == "higher":
                assert entry["value"] > 1.0, \
                    "a gated speedup baseline must be >1x"
        shed = spec["metrics"]["serving_shed_fraction"]
        assert 0.0 < shed["value"] < 1.0
        # The ceiling must leave the gate able to trip: shed fraction never
        # exceeds 1, so baseline * (1 + tolerance) has to stay below it.
        assert shed["value"] * (1.0 + shed["tolerance"]) < 1.0


class TestInjections:
    """The gate must demonstrably fail when the guarded path gets slower."""

    def test_injected_slowdown_collapses_batch_speedup(self, monkeypatch):
        from repro.core.higgs import Higgs

        original = Higgs.insert_batch

        def slowed(self, edges):
            time.sleep(0.02)
            return original(self, edges)

        # Miniature clean measurement first, then the same with a real
        # slowdown injected into the batch path; the gated ratio must
        # collapse below a 30% tolerance floor of the clean figure.
        clean = check_perf.run_measurements(scale=0.01)
        monkeypatch.setattr(Higgs, "insert_batch", slowed)
        slow = check_perf.run_measurements(scale=0.01)

        baselines = {"batch_higgs_speedup_x":
                     {"value": clean["batch_higgs_speedup_x"]}}
        rows = check_perf.compare(slow, baselines, tolerance=0.30)
        gated = next(row for row in rows
                     if row["metric"] == "batch_higgs_speedup_x")
        assert not gated["ok"], (
            f"injected slowdown did not trip the gate: clean "
            f"{clean['batch_higgs_speedup_x']:.2f}x vs slowed "
            f"{slow['batch_higgs_speedup_x']:.2f}x")

    def test_read_tail_injection_is_tail_shaped(self, monkeypatch):
        # The latency gate's proof relies on the injection hitting only
        # every READ_TAIL_EVERY-th read: p50 must hold while p99 inflates.
        from repro.core.higgs import Higgs

        monkeypatch.setattr(Higgs, "query_batch",
                            lambda self, queries: [0.0])
        sleeps = []
        monkeypatch.setattr(check_perf.time, "sleep", sleeps.append)
        check_perf.inject_read_tail(0.05)
        for _ in range(2 * check_perf.READ_TAIL_EVERY):
            assert Higgs.query_batch(None, []) == [0.0]
        assert sleeps == [0.05, 0.05]

    def test_admission_squeeze_hits_only_drop_policy(self, monkeypatch):
        from repro.baselines.exact import ExactTemporalGraph
        from repro.core.config import ServingConfig
        from repro.serving.engine import ServingEngine

        monkeypatch.setattr(ServingEngine, "__init__",
                            ServingEngine.__init__)
        check_perf.inject_admission_squeeze(divisor=32)

        with ServingEngine(ExactTemporalGraph(),
                           ServingConfig(admission="drop",
                                         max_pending=4096)) as dropped, \
                ServingEngine(ExactTemporalGraph(),
                              ServingConfig(admission="block",
                                            max_pending=4096)) as blocking:
            assert dropped.config.max_pending == 128
            assert blocking.config.max_pending == 4096
