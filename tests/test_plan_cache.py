"""Tests for the query-plan caches.

HIGGS memoizes boundary-search decompositions per
``(t_start, t_end, tree.version)`` (:class:`repro.core.boundary.QueryPlanCache`);
the dyadic baselines memoize their interval decompositions process-wide.
Both caches must be invisible to results and invalidate on mutation.
"""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.baselines.dyadic import dyadic_intervals
from repro.core.boundary import QueryPlanCache, boundary_search
from repro.errors import ConfigurationError


def _loaded_higgs(items: int = 600) -> Higgs:
    summary = Higgs(HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                                fingerprint_bits=12, num_probes=1,
                                enable_overflow_blocks=False))
    for i in range(items):
        summary.insert(f"s{i}", f"d{i}", 1.0, i)
    return summary


class TestQueryPlanCache:
    def test_repeated_range_hits_cache(self):
        summary = _loaded_higgs()
        baseline_hits = summary.plan_cache.hits
        for _ in range(5):
            summary.edge_query("s1", "d1", 100, 400)
        stats = summary.plan_cache_stats()
        assert stats["hits"] >= baseline_hits + 4

    def test_cached_plan_matches_fresh_search(self):
        summary = _loaded_higgs()
        summary.edge_query("s1", "d1", 50, 450)  # populate the cache
        cached = summary.plan_cache.lookup(summary.tree, 50, 450)
        fresh = boundary_search(summary.tree, 50, 450)
        assert [node.index for node in cached.aggregated_nodes] == \
            [node.index for node in fresh.aggregated_nodes]
        assert [leaf.index for leaf in cached.boundary_leaves] == \
            [leaf.index for leaf in fresh.boundary_leaves]

    def test_insert_invalidates_cached_plans(self):
        summary = _loaded_higgs()
        before = summary.edge_query("s1", "d1", 0, 10_000)
        version = summary.tree.version
        summary.insert("s1", "d1", 2.5, 700)
        assert summary.tree.version > version
        after = summary.edge_query("s1", "d1", 0, 10_000)
        assert after == pytest.approx(before + 2.5)

    def test_delete_invalidates_cached_plans(self):
        summary = _loaded_higgs()
        before = summary.edge_query("s3", "d3", 0, 10_000)
        summary.delete("s3", "d3", 1.0, 3)
        assert summary.edge_query("s3", "d3", 0, 10_000) == \
            pytest.approx(before - 1.0)

    def test_lru_eviction_bounds_size(self):
        summary = _loaded_higgs(200)
        cache = QueryPlanCache(maxsize=8)
        for start in range(32):
            cache.lookup(summary.tree, start, start + 50)
        assert len(cache) <= 8
        assert cache.stats()["misses"] == 32

    def test_maxsize_validated(self):
        with pytest.raises(ConfigurationError):
            QueryPlanCache(maxsize=0)

    def test_shared_across_edge_and_vertex_queries(self):
        summary = _loaded_higgs()
        summary.edge_query("s1", "d1", 100, 400)
        misses = summary.plan_cache.misses
        summary.vertex_query("s1", 100, 400)
        # Same range, unchanged tree: the vertex query reuses the plan.
        assert summary.plan_cache.misses == misses


class TestDyadicCache:
    def test_memoized_decomposition_is_stable(self):
        first = dyadic_intervals(13, 799, max_level=12)
        second = dyadic_intervals(13, 799, max_level=12)
        assert first == second
        covered = []
        for level, prefix in first:
            start = prefix << level
            covered.extend(range(start, start + (1 << level)))
        assert covered == list(range(13, 800))

    def test_allowed_levels_iterables_normalize(self):
        as_list = dyadic_intervals(0, 255, allowed_levels=[0, 2, 4],
                                   max_level=8)
        as_tuple = dyadic_intervals(0, 255, allowed_levels=(4, 2, 0),
                                    max_level=8)
        assert as_list == as_tuple
