"""Tests for query types, workload generation and evaluation."""

from __future__ import annotations

import pytest

from repro import Higgs, HiggsConfig
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import ConfigurationError
from repro.queries import (EdgeQuery, PathQuery, QueryWorkloadGenerator,
                           SubgraphQuery, VertexQuery, WorkloadConfig,
                           evaluate_methods, evaluate_queries)
from repro.streams.edge import GraphStream


class TestQueryTypes:
    def test_each_query_evaluates_against_a_summary(self, tiny_stream):
        truth = ExactTemporalGraph()
        truth.insert_stream(tiny_stream)
        assert EdgeQuery("v2", "v3", 5, 10).evaluate(truth) == 3.0
        assert VertexQuery("v4", 1, 11).evaluate(truth) == 6.0
        assert VertexQuery("v3", 1, 11, direction="in").evaluate(truth) == 5.0
        path = PathQuery(("v2", "v3", "v7"), 1, 11)
        assert path.hops == 2
        assert path.evaluate(truth) == 5.0 + 3.0
        subgraph = SubgraphQuery((("v2", "v3"), ("v3", "v7"), ("v2", "v4")), 4, 8)
        assert subgraph.size == 3
        assert subgraph.evaluate(truth) == 3.0


class TestWorkloadGenerator:
    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryWorkloadGenerator(GraphStream([]))

    def test_edge_queries_have_requested_shape(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream, WorkloadConfig(seed=1))
        queries = generator.edge_queries(25, range_length=100)
        assert len(queries) == 25
        t_min, t_max = small_stream.time_span
        for query in queries:
            assert query.t_end - query.t_start + 1 <= 100
            assert t_min <= query.t_start <= query.t_end <= t_max

    def test_range_length_clamped_to_span(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        query = generator.edge_queries(1, range_length=10**9)[0]
        t_min, t_max = small_stream.time_span
        assert (query.t_start, query.t_end) == (t_min, t_max)

    def test_generation_is_deterministic_per_seed(self, small_stream):
        a = QueryWorkloadGenerator(small_stream, WorkloadConfig(seed=7))
        b = QueryWorkloadGenerator(small_stream, WorkloadConfig(seed=7))
        assert a.edge_queries(10, 50) == b.edge_queries(10, 50)

    def test_existing_fraction_controls_hit_rate(self, small_stream, small_truth):
        t_min, t_max = small_stream.time_span
        always = QueryWorkloadGenerator(
            small_stream, WorkloadConfig(seed=3, existing_fraction=1.0))
        hits = sum(small_truth.edge_query(q.source, q.destination, t_min, t_max) > 0
                   for q in always.edge_queries(40, t_max - t_min + 1))
        assert hits == 40

    def test_vertex_queries(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.vertex_queries(15, range_length=200, direction="in")
        assert len(queries) == 15
        assert all(q.direction == "in" for q in queries)

    def test_path_queries_have_requested_hops(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        for hops in (1, 3, 5):
            queries = generator.path_queries(5, hops=hops, range_length=300)
            assert all(q.hops == hops for q in queries)
        with pytest.raises(ConfigurationError):
            generator.path_queries(1, hops=0, range_length=10)

    def test_subgraph_queries_have_requested_size(self, small_stream):
        generator = QueryWorkloadGenerator(small_stream)
        for size in (5, 20):
            queries = generator.subgraph_queries(3, size=size, range_length=300)
            assert all(q.size == size for q in queries)
        with pytest.raises(ConfigurationError):
            generator.subgraph_queries(1, size=0, range_length=10)


class TestEvaluation:
    def test_exact_summary_scores_zero_error(self, small_stream, small_truth):
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.edge_queries(30, 500)
        result = evaluate_queries(small_truth, queries, small_truth)
        assert result.aae == 0.0
        assert result.are == 0.0
        assert result.accuracy.exact_fraction == 1.0
        assert result.total_queries == 30
        assert result.average_latency_micros >= 0.0

    def test_higgs_is_one_sided_in_evaluation(self, small_stream, small_truth):
        summary = Higgs(HiggsConfig(fingerprint_bits=16))
        summary.insert_stream(small_stream)
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.edge_queries(40, 400) + generator.vertex_queries(10, 400)
        result = evaluate_queries(summary, queries, small_truth)
        assert result.accuracy.underestimates == 0
        assert result.method == "HIGGS"

    def test_evaluate_methods_returns_one_result_per_summary(self, small_stream,
                                                             small_truth):
        summaries = [small_truth]
        generator = QueryWorkloadGenerator(small_stream)
        queries = generator.edge_queries(5, 100)
        results = evaluate_methods(summaries, queries, small_truth)
        assert len(results) == 1
        assert results[0].total_queries == 5
