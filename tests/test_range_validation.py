"""Every summary must reject malformed temporal ranges identically.

``TemporalGraphSummary.check_range`` is the single validation point: an
inverted range or a negative timestamp raises :class:`repro.errors.QueryError`
from HIGGS and every baseline alike — no method may silently return 0.
"""

from __future__ import annotations

import pytest

from repro.baselines import AuxoTime, Horae, PGSS
from repro.baselines.exact import ExactTemporalGraph
from repro.core import Higgs, HiggsConfig
from repro.errors import QueryError
from repro.summary import TemporalGraphSummary


def _all_summaries():
    return [
        Higgs(HiggsConfig(leaf_matrix_size=8, fingerprint_bits=14)),
        Horae(expected_items=100, time_span=64),
        AuxoTime(time_span=64, matrix_size=8, fingerprint_bits=10),
        PGSS(expected_items=100, time_span=64),
        ExactTemporalGraph(),
    ]


@pytest.fixture(params=_all_summaries(), ids=lambda s: s.name)
def summary(request) -> TemporalGraphSummary:
    instance = request.param
    instance.insert("a", "b", 1.0, 5)
    return instance


class TestRangeValidation:
    def test_inverted_range_raises_edge_query(self, summary):
        with pytest.raises(QueryError):
            summary.edge_query("a", "b", 10, 4)

    def test_inverted_range_raises_vertex_query(self, summary):
        with pytest.raises(QueryError):
            summary.vertex_query("a", 10, 4)

    def test_negative_start_raises(self, summary):
        with pytest.raises(QueryError):
            summary.edge_query("a", "b", -1, 4)
        with pytest.raises(QueryError):
            summary.vertex_query("a", -3, -1)

    def test_composites_inherit_validation(self, summary):
        with pytest.raises(QueryError):
            summary.path_query(["a", "b"], 9, 2)
        with pytest.raises(QueryError):
            summary.subgraph_query([("a", "b")], -5, 5)

    def test_valid_ranges_still_answer(self, summary):
        assert summary.edge_query("a", "b", 0, 10) >= 0.0

    def test_check_range_boundary_values(self):
        TemporalGraphSummary.check_range(0, 0)
        TemporalGraphSummary.check_range(3, 3)
        with pytest.raises(QueryError):
            TemporalGraphSummary.check_range(4, 3)
        with pytest.raises(QueryError):
            TemporalGraphSummary.check_range(-1, 3)
