"""Live migration, rebalancing, and crash recovery of the sharded engine.

Three contracts (ARCHITECTURE.md, "Elastic sharding & recovery"):

* **Migration is invisible**: moving a shard across workers (and executor
  modes) changes no query answer, and a failed migration leaves the old
  worker serving — never a torn shard.
* **Rebalancing is exact**: reassigning a hot vertex moves only its future
  edges; reads union the owner history, so every query type still answers
  exactly as an unsharded reference does.
* **Recovery is loss-bounded**: a killed worker process is rebuilt from the
  last snapshot and loses exactly the edges *it* acknowledged after that
  snapshot (``shard_items()[i] - snapshot_items()[i]``); surviving shards
  lose nothing.  The fault-injection harness (tests/faultinject.py)
  provides the kill/delay/error machinery.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from faultinject import FaultSpec, FaultyShardWorker, inject_fault, kill_worker
from repro import RebalancePlan, ShardedSummary, SnapshotConfig
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import ShardingError
from repro.streams.edge import StreamEdge

FULL = (0, 10**9)


def _reference(stream) -> ExactTemporalGraph:
    truth = ExactTemporalGraph()
    truth.insert_batch(list(stream))
    return truth


def _assert_matches_reference(engine, truth, stream) -> None:
    pairs = sorted({(e.source, e.destination) for e in stream})
    vertices = sorted({v for e in stream for v in (e.source, e.destination)})
    for source, destination in pairs:
        assert engine.edge_query(source, destination, *FULL) == \
            truth.edge_query(source, destination, *FULL)
    for vertex in vertices:
        for direction in ("out", "in"):
            assert engine.vertex_query(vertex, *FULL, direction) == \
                truth.vertex_query(vertex, *FULL, direction)
    assert engine.subgraph_query(pairs, *FULL) == \
        truth.subgraph_query(pairs, *FULL)


class TestMigration:
    """migrate_shard moves live state without changing a single answer."""

    @pytest.mark.parametrize("target_mode", ["serial", "thread", "process"])
    def test_migration_preserves_every_answer(self, small_stream, target_mode):
        edges = list(small_stream)
        truth = _reference(edges)
        with ShardedSummary(ExactTemporalGraph, shards=4) as engine:
            engine.insert_batch(edges)
            for shard in range(4):
                engine.migrate_shard(shard, executor=target_mode)
            _assert_matches_reference(engine, truth, edges)
            # The engine stays writable on the new workers.
            engine.insert("post", "migration", 1.0, 5)
            assert engine.edge_query("post", "migration", *FULL) == 1.0

    def test_migration_from_process_to_serial_regains_inspection(
            self, small_stream):
        with ShardedSummary(ExactTemporalGraph, shards=2,
                            executor="process") as engine:
            engine.insert_stream(small_stream)
            with pytest.raises(ShardingError):
                engine.shard_summaries()
            engine.migrate_shard(0, executor="serial")
            engine.migrate_shard(1, executor="serial")
            summaries = engine.shard_summaries()
            assert sum(s.item_count for s in summaries) == \
                engine.items_ingested

    def test_migration_validates_arguments(self):
        with ShardedSummary(ExactTemporalGraph, shards=2) as engine:
            with pytest.raises(ShardingError, match="out of range"):
                engine.migrate_shard(7)
            with pytest.raises(ShardingError, match="not both"):
                engine.migrate_shard(0, engine._workers[0], executor="thread")

    @pytest.mark.faultinject
    def test_failed_migration_keeps_old_worker_serving(self, small_stream):
        """A replacement that cannot load is discarded; the shard is not
        torn — the old worker keeps answering exactly as before."""
        edges = list(small_stream)
        with ShardedSummary(ExactTemporalGraph, shards=2) as engine:
            engine.insert_batch(edges)
            before = engine.vertex_query(edges[0].source, *FULL, "out")
            broken = FaultyShardWorker(
                engine._workers[0].__class__(ExactTemporalGraph),
                FaultSpec(kind="error", method="__load__"))
            with pytest.raises(ShardingError, match="failed to load"):
                engine.migrate_shard(0, broken)
            assert engine.vertex_query(edges[0].source, *FULL, "out") == before


class TestRebalance:
    """rebalance() reassigns keys and migrates shards, exactly."""

    def test_reassigned_vertex_keeps_answering_exactly(self, small_stream):
        edges = list(small_stream)
        truth = _reference(edges)
        with ShardedSummary(ExactTemporalGraph, shards=4) as engine:
            half = len(edges) // 2
            engine.insert_batch(edges[:half])
            # Move the two hottest sources to fresh shards mid-stream.
            from collections import Counter
            hot = [v for v, _ in Counter(
                e.source for e in edges).most_common(2)]
            plan = RebalancePlan(reassign={
                v: (engine.partitioner.shard_of_vertex(v) + 1) % 4
                for v in hot})
            engine.rebalance(plan)
            assert engine.partitioner.has_reassignments
            engine.insert_batch(edges[half:])
            _assert_matches_reference(engine, truth, edges)
            # The hot vertices' edges really are split across owners now.
            for v in hot:
                assert len(engine.partitioner.owners_of_vertex(v)) == 2

    def test_rebalance_can_migrate_executors(self, small_stream):
        with ShardedSummary(ExactTemporalGraph, shards=2) as engine:
            engine.insert_stream(small_stream)
            items = engine.items_ingested
            engine.rebalance(RebalancePlan(migrate={0: "thread",
                                                    1: "thread"}))
            assert engine.items_ingested == items
            assert all(w.__class__.__name__ == "ThreadShardWorker"
                       for w in engine._workers)

    def test_rebalance_survives_snapshot_round_trip(self, small_stream):
        """Reassignment state (owner history) travels with the snapshot."""
        edges = list(small_stream)
        truth = _reference(edges)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            with ShardedSummary(ExactTemporalGraph, shards=4) as engine:
                half = len(edges) // 2
                engine.insert_batch(edges[:half])
                hot = edges[0].source
                engine.rebalance(RebalancePlan(reassign={
                    hot: (engine.partitioner.shard_of_vertex(hot) + 1) % 4}))
                engine.insert_batch(edges[half:])
                engine.snapshot(path)
                restored = ShardedSummary.restore(path)
                assert restored.partitioner.has_reassignments
                _assert_matches_reference(restored, truth, edges)
                restored.close()

    def test_rebalance_validates_the_whole_plan_first(self, small_stream):
        with ShardedSummary(ExactTemporalGraph, shards=2) as engine:
            engine.insert_stream(small_stream)
            items = engine.shard_items()
            with pytest.raises(ShardingError, match="out of range"):
                engine.rebalance(RebalancePlan(reassign={"v1": 9}))
            with pytest.raises(ShardingError, match="out of range"):
                engine.rebalance(RebalancePlan(migrate={5: "thread"}))
            with pytest.raises(ShardingError, match="executor"):
                engine.rebalance(RebalancePlan(migrate={0: "quantum"}))
            assert engine.shard_items() == items  # nothing changed

    def test_reassignment_requires_source_partitioning(self):
        with ShardedSummary(ExactTemporalGraph, shards=2,
                            partition_by="edge") as engine, \
                pytest.raises(ShardingError, match="source"):
            engine.rebalance(RebalancePlan(reassign={"v1": 0}))


@pytest.mark.faultinject
class TestCrashRecovery:
    """Kill-a-worker recovery: exact, test-asserted loss bound."""

    def _engine(self, snapdir):
        return ShardedSummary(ExactTemporalGraph, shards=3,
                              executor="process",
                              snapshot=SnapshotConfig(directory=snapdir))

    def test_loss_bound_is_exactly_acked_since_snapshot(self, small_stream):
        edges = list(small_stream)
        with tempfile.TemporaryDirectory() as tmp, \
                self._engine(os.path.join(tmp, "snap")) as engine:
            half = len(edges) // 2
            engine.insert_batch(edges[:half])
            engine.snapshot()
            engine.insert_batch(edges[half:])
            before = engine.shard_items()
            snap = engine.snapshot_items()
            victim = 1
            kill_worker(engine, victim)
            recovered = engine.recover_dead_shards()
            assert recovered == [victim]
            after = engine.shard_items()
            # The victim is back at its snapshot count — it lost exactly
            # what it acknowledged after the snapshot, nothing more.
            assert after[victim] == snap[victim]
            assert before[victim] - after[victim] == \
                before[victim] - snap[victim]
            # Survivors lost nothing.
            for shard in range(3):
                if shard != victim:
                    assert after[shard] == before[shard]
            # The recovered shard answers its snapshot prefix exactly.
            truth = _reference(edges[:half])
            part = engine.partitioner
            for edge in edges[:half]:
                if part.shard_of_edge(edge.source,
                                      edge.destination) == victim:
                    assert engine.edge_query(edge.source,
                                             edge.destination, *FULL) == \
                        truth.edge_query(edge.source, edge.destination,
                                         *FULL)

    def test_without_snapshot_the_shard_restarts_empty(self, small_stream):
        with ShardedSummary(ExactTemporalGraph, shards=3,
                            executor="process") as engine:
            engine.insert_stream(small_stream)
            before = engine.shard_items()
            kill_worker(engine, 2)
            assert engine.recover_dead_shards() == [2]
            assert engine.shard_items() == (before[0], before[1], 0)

    def test_auto_recovery_fires_on_the_failure_path(self, small_stream):
        """The failed operation still raises (no silent retry), but the
        next operation finds the shard rebuilt from the snapshot."""
        edges = list(small_stream)
        with tempfile.TemporaryDirectory() as tmp, \
                self._engine(os.path.join(tmp, "snap")) as engine:
            engine.insert_batch(edges)
            engine.snapshot()
            snap = engine.snapshot_items()
            kill_worker(engine, 0)
            with pytest.raises(ShardingError):
                engine.memory_bytes()
            # No explicit recover_dead_shards() call needed:
            assert all(w.alive() for w in engine._workers)
            assert engine.shard_items()[0] == snap[0]
            assert engine.memory_bytes() > 0

    def test_kill_fault_fires_at_a_chosen_operation(self, small_stream):
        """FaultyShardWorker kills the child exactly at the Nth matching
        call, so the crash lands mid-scatter — between submit and collect."""
        edges = list(small_stream)
        with tempfile.TemporaryDirectory() as tmp, \
                self._engine(os.path.join(tmp, "snap")) as engine:
            engine.insert_batch(edges)
            engine.snapshot()
            inject_fault(engine, 1,
                         FaultSpec(kind="kill", method="insert_batch"))
            with pytest.raises(ShardingError):
                engine.insert_batch(edges)
            assert all(w.alive() for w in engine._workers)

    def test_delay_fault_slows_but_does_not_break(self, small_stream):
        with ShardedSummary(ExactTemporalGraph, shards=2,
                            executor="process") as engine:
            inject_fault(engine, 0, FaultSpec(kind="delay", delay_s=0.02,
                                              once=False))
            engine.insert_stream(small_stream)
            assert engine.items_ingested == len(list(small_stream))
