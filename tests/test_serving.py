"""Tests for the concurrent serving engine, its config, metrics, and the
mixed-workload generator — including the epoch-consistency stress test."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ServingConfig, ServingEngine, ShardedSummary
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import ConfigurationError, DatasetError, QueryError, ServingError
from repro.queries.types import EdgeQuery, VertexQuery
from repro.serving import LatencyTracker, nearest_rank
from repro.streams.edge import StreamEdge
from repro.streams.generators import (MixedWorkloadSpec, StreamSpec,
                                      generate_mixed_workload, generate_stream)


def _edges(n, offset=0):
    return [StreamEdge(f"s{(i + offset) % 11}", f"d{(i + offset) % 7}", 1.0,
                       i + offset) for i in range(n)]


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.admission == "block"
        assert config.max_pending >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_pending": 0},
        {"admission": "explode"},
        {"max_batch_writes": 0},
        {"max_batch_reads": 0},
        {"poll_interval_s": 0.0},
        {"latency_window": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)


class TestLatencyTracker:
    def test_nearest_rank_percentiles(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert nearest_rank(samples, 50.0) == 50.0
        assert nearest_rank(samples, 95.0) == 95.0
        assert nearest_rank(samples, 99.0) == 99.0
        assert nearest_rank(samples, 100.0) == 100.0
        assert nearest_rank([7.0], 50.0) == 7.0

    def test_nearest_rank_rejects_bad_input(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)

    def test_window_and_snapshot(self):
        tracker = LatencyTracker(window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            tracker.record("read", value)
        report = tracker.percentiles("read")
        # The window dropped the 1.0 sample; p50 over [2,3,4,100] is 3.
        assert report["p50"] == 3.0
        assert tracker.count("read") == 5
        assert tracker.percentiles("write") == {}
        snapshot = tracker.snapshot()
        assert snapshot["read"]["count"] == 5.0


class TestServingEngineBasics:
    def test_writes_then_reads_are_exact(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            engine.submit_write(StreamEdge("a", "b", 2.0, 5)).result(5)
            engine.submit_write([("a", "b", 1.0, 7), ("b", "c", 3.0, 8)]).result(5)
            assert engine.submit_query(EdgeQuery("a", "b", 0, 10)).result(5) == 3.0
            assert engine.submit_query(
                VertexQuery("b", 0, 10, "out")).result(5) == 3.0
            stats = engine.stats()
            assert stats["edges_inserted"] == 3
            assert stats["writes_served"] == 2
            assert stats["reads_served"] == 2
            assert stats["epochs"] >= 1
            assert stats["latency"]["write"]["count"] == 2.0

    def test_write_future_reports_per_request_count(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            futures = [engine.submit_write(_edges(3, offset=i * 3))
                       for i in range(5)]
            assert [future.result(5) for future in futures] == [3] * 5

    def test_empty_write_rejected(self):
        with ServingEngine(ExactTemporalGraph()) as engine, \
                pytest.raises(ServingError):
            engine.submit_write([])

    def test_malformed_query_rejected_at_admission(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            with pytest.raises(QueryError):
                engine.submit_query(EdgeQuery("a", "b", 10, 5))
            # The engine still serves well-formed traffic afterwards.
            engine.submit_write(StreamEdge("a", "b", 1.0, 1)).result(5)
            assert engine.submit_query(EdgeQuery("a", "b", 0, 5)).result(5) == 1.0

    def test_submit_after_close_rejected(self):
        engine = ServingEngine(ExactTemporalGraph())
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ServingError):
            engine.submit_write(StreamEdge("a", "b", 1.0, 1))
        with pytest.raises(ServingError):
            engine.submit_query(EdgeQuery("a", "b", 0, 5))

    def test_close_drains_admitted_requests(self):
        engine = ServingEngine(ExactTemporalGraph())
        futures = [engine.submit_write(_edges(2, offset=2 * i))
                   for i in range(50)]
        engine.close()
        assert all(future.result(5) == 2 for future in futures)

    def test_write_failure_delivered_via_future(self):
        class Exploding(ExactTemporalGraph):
            def insert_batch(self, edges):
                raise RuntimeError("disk on fire")

        with ServingEngine(Exploding()) as engine:
            future = engine.submit_write(StreamEdge("a", "b", 1.0, 1))
            with pytest.raises(RuntimeError, match="disk on fire"):
                future.result(5)
            assert engine.stats()["failed"] == 1

    def test_latency_percentiles_exposed(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            for i in range(20):
                engine.submit_write(StreamEdge("a", "b", 1.0, i)).result(5)
            report = engine.latency_percentiles("write")
            assert set(report) == {"p50", "p95", "p99", "mean"}
            assert report["p50"] <= report["p95"] <= report["p99"]


class TestBackpressure:
    def test_drop_policy_rejects_at_capacity(self):
        config = ServingConfig(max_pending=4, admission="drop",
                               poll_interval_s=0.01)

        class Slow(ExactTemporalGraph):
            def insert_batch(self, edges):
                time.sleep(0.05)
                return super().insert_batch(edges)

        engine = ServingEngine(Slow(), config)
        try:
            dropped = 0
            futures = []
            for i in range(100):
                try:
                    futures.append(engine.submit_write(
                        StreamEdge("a", "b", 1.0, i)))
                except ServingError:
                    dropped += 1
            assert dropped > 0
            assert engine.stats()["dropped"] == dropped
            for future in futures:
                assert future.result(30) == 1
        finally:
            engine.close()

    @pytest.mark.lockgraph
    def test_block_policy_admits_everything(self, lock_monitor):
        config = ServingConfig(max_pending=2, admission="block",
                               poll_interval_s=0.01)
        with ServingEngine(ExactTemporalGraph(), config) as engine:
            futures = [engine.submit_write(StreamEdge("a", "b", 1.0, i))
                       for i in range(200)]
            assert all(future.result(10) == 1 for future in futures)
            assert engine.stats()["dropped"] == 0
            assert engine.stats()["edges_inserted"] == 200


class TestServingOverShards:
    @pytest.mark.lockgraph
    def test_sharded_serving_matches_exact(self, tiny_stream, lock_monitor):
        with ShardedSummary(ExactTemporalGraph, shards=3,
                            executor="thread") as sharded:
            with ServingEngine(sharded) as engine:
                for edge in tiny_stream:
                    engine.submit_write(edge)
                engine.flush(10)
                t_min, t_max = tiny_stream.time_span
                truth = ExactTemporalGraph()
                truth.insert_stream(tiny_stream)
                for source, destination in tiny_stream.distinct_edges():
                    served = engine.submit_query(
                        EdgeQuery(source, destination, t_min, t_max)).result(5)
                    assert served == truth.edge_query(source, destination,
                                                      t_min, t_max)
            assert sharded.items_ingested == len(tiny_stream)

    @pytest.mark.lockgraph
    def test_flush_goes_idle(self, lock_monitor):
        with (ShardedSummary(ExactTemporalGraph, shards=2,
                             executor="thread") as sharded,
              ServingEngine(sharded) as engine):
            for i in range(100):
                engine.submit_write(StreamEdge(f"v{i % 5}", "d", 1.0, i))
            assert engine.flush(timeout=10)
            stats = engine.stats()
            assert stats["pending"] == 0 and stats["inflight"] == 0
            assert stats["edges_inserted"] == 100


class TestEpochConsistency:
    """Stress test: concurrent reads through the engine must always observe a
    prefix-consistent state — the summary exactly as it was after some whole
    number of committed write epochs, never a torn mid-batch shard state.

    Shards hold Exact summaries, so any torn read (one shard ahead of
    another inside a write batch) would produce a value that matches *no*
    prefix of acknowledged batches.
    """

    QUERY = ("s1", "d1")
    BATCHES = 60
    BATCH = 40

    def _batches(self):
        batches = []
        t = 0
        for _ in range(self.BATCHES):
            batch = []
            for j in range(self.BATCH):
                # Every batch adds weight to the probed edge from several
                # sources, spread across shards, so a torn read mid-batch
                # would surface as a non-prefix value.
                batch.append(StreamEdge(f"s{j % 5}", f"d{j % 3}", 1.0, t))
                t += 1
            batches.append(batch)
        return batches

    @pytest.mark.lockgraph
    def test_interleaved_reads_observe_prefix_states(self, lock_monitor):
        batches = self._batches()
        t_max = self.BATCHES * self.BATCH + 1

        # Expected value of the probed query after each whole-batch prefix.
        truth = ExactTemporalGraph()
        source, destination = self.QUERY
        prefix_values = {0.0}
        for batch in batches:
            truth.insert_batch(batch)
            prefix_values.add(truth.edge_query(source, destination, 0, t_max))

        violations = []
        stop_reading = threading.Event()

        with (ShardedSummary(ExactTemporalGraph, shards=3,
                             executor="thread") as sharded,
              ServingEngine(sharded) as engine):
            def reader():
                while not stop_reading.is_set():
                    value = engine.submit_query(
                        EdgeQuery(source, destination, 0, t_max)).result(30)
                    if value not in prefix_values:
                        violations.append(value)

            readers = [threading.Thread(target=reader, daemon=True)
                       for _ in range(4)]
            for thread in readers:
                thread.start()
            write_futures = [engine.submit_write(batch)
                             for batch in batches]
            for future in write_futures:
                future.result(30)
            stop_reading.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in readers)

        assert violations == [], (
            f"torn reads observed values outside every prefix state: "
            f"{sorted(set(violations))[:5]}")
        final = truth.edge_query(source, destination, 0, t_max)
        assert max(prefix_values) == final


class TestMixedWorkloadGenerator:
    def _stream(self):
        return generate_stream(StreamSpec(num_vertices=50, num_edges=1_000,
                                          time_span=1_000, seed=3,
                                          name="workload-src"))

    def test_deterministic_and_ratio_respected(self):
        stream = self._stream()
        # 200 requests at ratio 0.5 expect ~100 writes; the 1000-edge stream
        # supports 125 write_batch=8 requests, so the write side never runs
        # dry and the realized ratio stays near the configured one.
        spec = MixedWorkloadSpec(num_requests=200, read_ratio=0.5,
                                 write_batch=8, seed=5)
        ops_a = generate_mixed_workload(stream, spec)
        ops_b = generate_mixed_workload(stream, spec)
        assert [op.kind for op in ops_a] == [op.kind for op in ops_b]
        reads = sum(1 for op in ops_a if op.kind == "read")
        assert 0.35 <= reads / len(ops_a) <= 0.65
        assert ops_a[0].kind == "write"

    def test_writes_replay_stream_in_order(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=300, read_ratio=0.3,
                                 write_batch=16, seed=5)
        ops = generate_mixed_workload(stream, spec)
        replayed = [edge for op in ops if op.kind == "write"
                    for edge in op.edges]
        assert replayed == list(stream)[:len(replayed)]

    def test_reads_are_valid_queries_on_seen_keys(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=200, read_ratio=0.6, seed=9)
        ops = generate_mixed_workload(stream, spec)
        t_min, t_max = stream.time_span
        sources = {edge.source for edge in stream}
        pairs = stream.distinct_edges()
        for op in ops:
            if op.kind != "read":
                continue
            query = op.query
            assert t_min <= query.t_start <= query.t_end <= t_max
            if isinstance(query, EdgeQuery):
                assert (query.source, query.destination) in pairs
            else:
                assert query.vertex in sources

    def test_open_loop_arrivals_monotonic(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=100, read_ratio=0.5,
                                 arrival="open", rate_rps=500.0, seed=2)
        ops = generate_mixed_workload(stream, spec)
        arrivals = [op.arrival_s for op in ops]
        assert all(a is not None for a in arrivals)
        assert arrivals == sorted(arrivals)
        closed = generate_mixed_workload(
            stream, MixedWorkloadSpec(num_requests=10, seed=2))
        assert all(op.arrival_s is None for op in closed)

    @pytest.mark.parametrize("kwargs", [
        {"num_requests": 0},
        {"num_requests": 10, "read_ratio": 1.5},
        {"num_requests": 10, "write_batch": 0},
        {"num_requests": 10, "arrival": "warp"},
        {"num_requests": 10, "arrival": "open", "rate_rps": 0.0},
        {"num_requests": 10, "edge_fraction": -0.1},
        {"num_requests": 10, "range_fraction": 0.0},
    ])
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            generate_mixed_workload(self._stream(), MixedWorkloadSpec(**kwargs))

    def test_empty_stream_rejected(self):
        from repro.streams.edge import GraphStream
        with pytest.raises(DatasetError):
            generate_mixed_workload(GraphStream([]),
                                    MixedWorkloadSpec(num_requests=5))


class TestFailedEpochAbortsReads:
    """A read coalesced into a round whose write epoch fails must NOT be
    answered against the partially-applied state — it fails with
    ServingError instead (the no-torn-reads guarantee's error path)."""

    class _BlockingQuery:
        """Query whose evaluation parks the scheduler until released."""

        def __init__(self):
            self.started = threading.Event()
            self.release = threading.Event()

        def evaluate(self, summary):
            self.started.set()
            assert self.release.wait(10)
            return 0.0

    def test_reads_in_failed_round_get_serving_error(self):
        class PoisonedBatch(ExactTemporalGraph):
            def insert_batch(self, edges):
                if any(edge.source == "poison" for edge in edges):
                    raise RuntimeError("shard blew up mid-epoch")
                return super().insert_batch(edges)

        with ServingEngine(PoisonedBatch()) as engine:
            # Round 1: a blocking read parks the scheduler so the next
            # submissions are guaranteed to coalesce into one round.
            blocker = self._BlockingQuery()
            blocked_future = engine.submit_query(blocker)
            assert blocker.started.wait(10)
            poisoned_write = engine.submit_write(
                StreamEdge("poison", "b", 1.0, 1))
            coalesced_read = engine.submit_query(EdgeQuery("a", "b", 0, 10))
            blocker.release.set()
            assert blocked_future.result(10) == 0.0

            with pytest.raises(RuntimeError, match="blew up"):
                poisoned_write.result(10)
            with pytest.raises(ServingError, match="write epoch failed"):
                coalesced_read.result(10)

            # The engine keeps serving after the failed round.
            engine.submit_write(StreamEdge("a", "b", 2.0, 3)).result(10)
            assert engine.submit_query(EdgeQuery("a", "b", 0, 10)).result(10) == 2.0


class TestSchedulerRobustness:
    """An unexpected scheduler error fails the round's futures instead of
    silently killing the scheduler thread and stranding all requests."""

    def test_short_query_batch_fails_round_but_engine_survives(self):
        class ShortAnswers(ExactTemporalGraph):
            def query_batch(self, queries):
                return []  # broken contract: fewer answers than queries

        with ServingEngine(ShortAnswers()) as engine:
            engine.submit_write(StreamEdge("a", "b", 1.0, 1)).result(5)
            future = engine.submit_query(EdgeQuery("a", "b", 0, 10))
            with pytest.raises(ServingError, match="0 answers for 1 queries"):
                future.result(10)
            # The scheduler survived: writes still serve and flush goes idle.
            assert engine.submit_write(StreamEdge("a", "b", 1.0, 2)).result(10) == 1
            assert engine.flush(timeout=10)


class TestMaintenanceRounds:
    """run_maintenance executes between epochs with the summary to itself."""

    @pytest.mark.lockgraph
    def test_maintenance_sees_all_prior_writes_and_blocks_later_ones(
            self, lock_monitor):
        observed = []
        with (ShardedSummary(ExactTemporalGraph, shards=2,
                             executor="thread") as sharded,
              ServingEngine(sharded) as engine):
            for batch in (_edges(30), _edges(30, offset=100)):
                engine.submit_write(batch)
            fence = engine.run_maintenance(
                lambda s: observed.append(s.items_ingested))
            engine.submit_write(_edges(30, offset=200))
            engine.flush(timeout=30)
            fence.result(10)
        # The maintenance round ran after both earlier epochs committed
        # (60 edges) and before the later epoch started (90 edges).
        assert observed == [60]

    def test_maintenance_failure_fails_only_its_future(self):
        with (ShardedSummary(ExactTemporalGraph, shards=2) as sharded,
              ServingEngine(sharded) as engine):
            bad = engine.run_maintenance(
                lambda s: (_ for _ in ()).throw(ValueError("surgery slipped")))
            with pytest.raises(ValueError, match="surgery slipped"):
                bad.result(10)
            assert engine.submit_write(StreamEdge("a", "b", 1.0, 1)).result(10) == 1
            assert engine.submit_query(EdgeQuery("a", "b", 0, 10)).result(10) == 1.0


@pytest.mark.faultinject
class TestChaosRecovery:
    """Kill a process shard worker mid-epoch under live serving traffic.

    The probed edge's source pins it to the victim shard and is written
    only *before* the snapshot, so across the kill and the snapshot-based
    recovery every successful read of it must return exactly the committed
    pre-snapshot value — a torn or rolled-back-too-far read would produce
    anything else.  Failed requests may only carry the engine's typed
    errors (ServingError / ShardingError), never a raw worker exception.
    """

    PROBE_WRITES = 8

    @pytest.mark.lockgraph
    def test_reads_stay_prefix_consistent_across_recovery(
            self, lock_monitor, tmp_path):
        from faultinject import kill_worker
        from repro import SnapshotConfig
        from repro.errors import ShardingError

        with ShardedSummary(
                ExactTemporalGraph, shards=3, executor="process",
                snapshot=SnapshotConfig(directory=str(tmp_path / "snap"))
                ) as sharded:
            part = sharded.partitioner
            probe_src, probe_dst = "hot-src", "hot-dst"
            victim = part.shard_of_vertex(probe_src)
            # Phase-2 filler sources that share the victim shard but are
            # not the probed edge, plus some spread over other shards.
            fillers = [f"f{i}" for i in range(200)]
            t_max = 10**6

            with ServingEngine(sharded) as engine:
                # Phase 1: commit the probed edge's full history, snapshot.
                for i in range(self.PROBE_WRITES):
                    engine.submit_write(
                        StreamEdge(probe_src, probe_dst, float(i + 1), i))
                assert engine.flush(timeout=30)
                final = float(sum(range(1, self.PROBE_WRITES + 1)))
                engine.run_maintenance(lambda s: s.snapshot()).result(30)

                # Phase 2: victim-shard traffic + concurrent probed reads.
                torn, bad_errors = [], []
                stop = threading.Event()

                def reader():
                    while not stop.is_set():
                        try:
                            value = engine.submit_query(EdgeQuery(
                                probe_src, probe_dst, 0, t_max)).result(30)
                        except (ServingError, ShardingError):
                            continue  # aborted round / dead shard: typed, ok
                        except BaseException as exc:
                            # Anything untyped leaking out of the engine is
                            # exactly what this test exists to catch.
                            bad_errors.append(exc)
                            return
                        if value != final:
                            torn.append(value)

                readers = [threading.Thread(target=reader, daemon=True)
                           for _ in range(3)]
                for thread in readers:
                    thread.start()
                write_futures = []
                for round_no in range(30):
                    batch = [StreamEdge(fillers[(round_no * 7 + j) % 200],
                                        f"d{j}", 1.0, 1000 + round_no)
                             for j in range(10)]
                    write_futures.append(engine.submit_write(batch))
                    if round_no == 10:
                        kill_worker(sharded, victim)
                    time.sleep(0.002)
                failed = 0
                for future in write_futures:
                    try:
                        future.result(30)
                    except (ServingError, ShardingError):
                        failed += 1
                stop.set()
                for thread in readers:
                    thread.join(timeout=30)
                assert not any(thread.is_alive() for thread in readers)

                assert torn == [], (
                    f"reads observed non-prefix values across recovery: "
                    f"{sorted(set(torn))[:5]}")
                assert bad_errors == [], bad_errors
                # Auto-recovery rebuilt the victim from the snapshot and
                # the engine kept serving typed failures only.
                assert all(worker.alive() for worker in sharded._workers)
                assert engine.submit_query(EdgeQuery(
                    probe_src, probe_dst, 0, t_max)).result(30) == final
                # The victim shard holds at least its snapshot prefix.
                assert sharded.shard_items()[victim] >= \
                    sharded.snapshot_items()[victim]


class TestServingMetrics:
    """The engine's ``serving_*`` metric families track real traffic."""

    def test_counters_follow_traffic(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            for edge in _edges(20):
                engine.submit_write(edge)
            queries = [EdgeQuery(f"s{i % 11}", f"d{i % 7}", 0, 100)
                       for i in range(5)]
            futures = [engine.submit_query(query) for query in queries]
            engine.run_maintenance(lambda s: None).result(30)
            assert engine.flush(timeout=30)
            for future in futures:
                future.result(30)

            registry = engine.metrics
            requests = registry.get("serving_requests_total")
            assert requests.value(kind="write") == 20.0
            assert requests.value(kind="read") == 5.0
            assert requests.value(kind="maintenance") == 1.0
            assert registry.get("serving_edges_inserted_total").value() == 20.0
            assert registry.get("serving_maintenance_total").value() == 1.0
            epochs = registry.get("serving_epochs_total").value()
            assert 1.0 <= epochs <= 20.0
            assert epochs == float(engine.epoch)
            # Every committed epoch contributed one coalescing-size sample.
            assert registry.get("serving_epoch_edges").count() == epochs
            assert registry.get("serving_queue_depth_peak").value() >= 1.0

    def test_queue_depth_gauges_are_live(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            release = threading.Event()
            gate = engine.run_maintenance(lambda s: release.wait(10))
            deadline = time.time() + 10
            while engine.stats()["inflight"] == 0 and time.time() < deadline:
                time.sleep(0.001)
            blocked = engine.submit_write(_edges(3))
            depth = engine.metrics.get("serving_queue_depth")
            inflight = engine.metrics.get("serving_inflight")
            assert depth.value() >= 1.0  # the gated write is visibly queued
            assert inflight.value() >= 1.0
            release.set()
            gate.result(30)
            blocked.result(30)
            assert engine.flush(timeout=30)
            assert depth.value() == 0.0
            assert inflight.value() == 0.0

    def test_dropped_counter_under_drop_policy(self):
        config = ServingConfig(admission="drop", max_pending=2)
        with ServingEngine(ExactTemporalGraph(), config) as engine:
            release = threading.Event()
            gate = engine.run_maintenance(lambda s: release.wait(10))
            admitted, dropped = [], 0
            for edge in _edges(30):
                try:
                    admitted.append(engine.submit_write(edge))
                except ServingError:
                    dropped += 1
            release.set()
            gate.result(30)
            assert engine.flush(timeout=30)
            assert dropped >= 1
            registry = engine.metrics
            assert registry.get("serving_dropped_total").value() == \
                float(dropped)
            assert engine.stats()["dropped"] == dropped

    def test_failed_counter_on_failed_epoch(self):
        class ExplodingSummary(ExactTemporalGraph):
            def insert_batch(self, edges):
                raise RuntimeError("disk on fire")

        with ServingEngine(ExplodingSummary()) as engine:
            future = engine.submit_write(_edges(1))
            with pytest.raises(RuntimeError):
                future.result(30)
            assert engine.flush(timeout=30)
            assert engine.metrics.get("serving_failed_total").value() == 1.0

    def test_latency_tracker_folded_into_registry(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            engine.submit_write(_edges(1)[0]).result(30)
            histogram = engine.metrics.get("serving_latency_seconds")
            assert histogram is not None
            assert histogram.count(kind="write") == 1
            report = engine.stats()["latency"]
            assert report["write"]["count"] == 1

    def test_render_prometheus_exposes_the_families(self):
        with ServingEngine(ExactTemporalGraph()) as engine:
            engine.submit_write(_edges(2)).result(30)
            text = engine.render_prometheus()
            assert "# TYPE serving_queue_depth gauge" in text
            # One admitted request carrying a two-edge batch.
            assert 'serving_requests_total{kind="write"} 1' in text
            assert "serving_edges_inserted_total 2" in text
            assert "# TYPE serving_latency_seconds summary" in text

    def test_caller_provided_registry_is_used(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        with ServingEngine(ExactTemporalGraph(), registry=registry) as engine:
            assert engine.metrics is registry
            engine.submit_write(_edges(1)[0]).result(30)
        assert registry.get("serving_requests_total").value(kind="write") == 1.0


class TestAdaptiveEpochSizing:
    """Closed-loop stress: queue depth drives the write-epoch cap."""

    CONFIG = dict(adaptive_epochs=True, min_epoch_size=4, max_epoch_size=16,
                  max_batch_writes=1024, max_pending=32,
                  queue_high_fraction=0.5, queue_low_fraction=0.125,
                  epoch_cooldown_rounds=3)

    @staticmethod
    def _gated_backlog(engine, n):
        """Hold the scheduler on a maintenance gate while ``n`` writes pile
        up behind it, then release — the next round observes the full
        backlog at once."""
        started, release = threading.Event(), threading.Event()

        def gate(summary):
            started.set()
            release.wait(10)

        maintenance = engine.run_maintenance(gate)
        assert started.wait(10)
        futures = [engine.submit_write(edge) for edge in _edges(n)]
        release.set()
        maintenance.result(30)
        return futures

    def test_fixed_engine_never_moves_the_cap(self):
        with ServingEngine(ExactTemporalGraph(),
                           ServingConfig(max_batch_writes=8)) as engine:
            assert engine.stats()["epoch_limit"] == 8
            for future in self._gated_backlog(engine, 20):
                future.result(30)
            assert engine.stats()["epoch_limit"] == 8

    def test_deep_queue_widens_then_quiet_traffic_narrows(self):
        with ServingEngine(ExactTemporalGraph(),
                           ServingConfig(**self.CONFIG)) as engine:
            assert engine.stats()["epoch_limit"] == 4  # starts at min

            # Each saturated backlog (16/32 >= high fraction) is one deep
            # observation -> one immediate doubling: 4 -> 8 -> 16.
            for expected in (8, 16):
                futures = self._gated_backlog(engine, 16)
                for future in futures:
                    future.result(30)
                assert engine.flush(timeout=30)
                assert engine.stats()["epoch_limit"] == expected

            # Quiet traffic: single awaited writes keep depth at 1/32,
            # below the low fraction.  Every cooldown_rounds-th quiet round
            # halves the cap until it rests at min and stays there.
            for edge in _edges(6 * self.CONFIG["epoch_cooldown_rounds"],
                               offset=100):
                engine.submit_write(edge).result(30)
            assert engine.stats()["epoch_limit"] == 4
            gauge = engine.metrics.get("serving_epoch_limit")
            assert gauge.value() == 4.0

    def test_wide_epochs_actually_coalesce_wider(self):
        with ServingEngine(ExactTemporalGraph(),
                           ServingConfig(**self.CONFIG)) as engine:
            for _ in range(2):
                for future in self._gated_backlog(engine, 16):
                    future.result(30)
            assert engine.flush(timeout=30)
            histogram = engine.metrics.get("serving_epoch_edges")
            report = histogram.report()
            # At least one committed epoch coalesced past the fixed minimum.
            assert report["p99"] > self.CONFIG["min_epoch_size"]


class TestBurstyWorkloadGenerator:
    def _stream(self):
        return generate_stream(StreamSpec(num_vertices=50, num_edges=2_000,
                                          time_span=1_000, seed=3,
                                          name="bursty-src"))

    @pytest.mark.parametrize("kwargs", [
        {"burst_factor": 0.5},
        {"burst_factor": 4.0},  # bursty but arrival stays "closed"
        {"arrival": "open", "rate_rps": 100.0, "burst_factor": 4.0},
        {"arrival": "open", "rate_rps": 100.0, "burst_factor": 4.0,
         "burst_period_s": 1.0, "burst_duty": 1.0},
    ])
    def test_invalid_burst_specs_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            MixedWorkloadSpec(num_requests=10, **kwargs).validate()

    def test_bursty_arrivals_deterministic_and_monotone(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=400, arrival="open",
                                 rate_rps=200.0, burst_factor=8.0,
                                 burst_period_s=0.5, burst_duty=0.25, seed=7)
        ops_a = generate_mixed_workload(stream, spec)
        ops_b = generate_mixed_workload(stream, spec)
        assert [op.arrival_s for op in ops_a] == \
            [op.arrival_s for op in ops_b]
        arrivals = [op.arrival_s for op in ops_a]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    def test_burst_windows_carry_excess_arrival_mass(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=1_000, arrival="open",
                                 rate_rps=100.0, burst_factor=10.0,
                                 burst_period_s=1.0, burst_duty=0.25, seed=7)
        ops = generate_mixed_workload(stream, spec)
        in_window = sum(1 for op in ops
                        if (op.arrival_s % spec.burst_period_s) <
                        spec.burst_period_s * spec.burst_duty)
        # 25% duty at 10x rate: the burst window should hold the majority
        # of arrivals (10*0.25 / (10*0.25 + 0.75) ~ 77%), far above the
        # ~25% a homogeneous process would put there.
        assert in_window / len(ops) > 0.5

    def test_homogeneous_default_keeps_uniform_rate(self):
        stream = self._stream()
        spec = MixedWorkloadSpec(num_requests=1_000, arrival="open",
                                 rate_rps=100.0, seed=7)
        ops = generate_mixed_workload(stream, spec)
        arrivals = [op.arrival_s for op in ops]
        in_window = sum(1 for t in arrivals if (t % 1.0) < 0.25)
        assert 0.15 < in_window / len(arrivals) < 0.35
