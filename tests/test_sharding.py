"""Tests for the sharded summary engine (:mod:`repro.sharding`)."""

from __future__ import annotations

import pytest

from repro import (Higgs, HiggsConfig, HiggsShardFactory, ShardedSummary,
                   ShardingConfig, SnapshotConfig)
from repro.core.executor import make_shard_worker, resolve_executor
from repro.core.hashing import shard_of
from repro.errors import ConfigurationError, QueryError, ShardingError
from repro.queries.types import EdgeQuery, PathQuery, SubgraphQuery, VertexQuery
from repro.sharding import ShardPartitioner
from repro.streams.edge import GraphStream, StreamEdge
from repro.streams.generators import StreamSpec, generate_stream, reskew_to_shards
from repro.summary import TemporalGraphSummary


def _config() -> HiggsConfig:
    return HiggsConfig(leaf_matrix_size=8, fingerprint_bits=14)


def _factory() -> HiggsShardFactory:
    return HiggsShardFactory(_config())


def _ranges(stream):
    t_min, t_max = stream.time_span
    mid = (t_min + t_max) // 2
    return [(t_min, t_max), (t_min, mid), (mid, t_max)]


class TestPartitioner:
    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPartitioner(0)
        with pytest.raises(ConfigurationError):
            ShardPartitioner(2, partition_by="rainbow")

    def test_assignment_is_deterministic_and_stable(self):
        a = ShardPartitioner(4, partition_by="source", seed=3)
        b = ShardPartitioner(4, partition_by="source", seed=3)
        for vertex in ("v1", "v2", 77, "x"):
            assert a.shard_of_vertex(vertex) == b.shard_of_vertex(vertex)
            assert a.shard_of_vertex(vertex) == shard_of(vertex, 4, 3)

    def test_source_mode_keeps_all_out_edges_together(self, small_stream):
        partitioner = ShardPartitioner(4, partition_by="source")
        for edge in small_stream:
            assert (partitioner.shard_of_edge(edge.source, edge.destination)
                    == partitioner.shard_of_vertex(edge.source))

    def test_split_preserves_order_and_loses_nothing(self, small_stream):
        partitioner = ShardPartitioner(3, partition_by="edge")
        parts = partitioner.split(small_stream)
        assert sum(len(part) for part in parts) == len(small_stream)
        for shard, part in enumerate(parts):
            expected = [e for e in small_stream
                        if partitioner.shard_of_edge(e.source, e.destination) == shard]
            assert part == expected

    def test_group_pairs_matches_edge_assignment(self):
        partitioner = ShardPartitioner(4, partition_by="source")
        pairs = [("a", "b"), ("c", "d"), ("a", "z")]
        grouped = partitioner.group_pairs(pairs)
        for shard, members in grouped.items():
            for source, destination in members:
                assert partitioner.shard_of_edge(source, destination) == shard


class TestShardingConfig:
    def test_defaults_valid(self):
        config = ShardingConfig()
        assert config.num_shards == 4

    @pytest.mark.parametrize("kwargs", [
        {"num_shards": 0},
        {"partition_by": "destination"},
        {"executor": "quantum"},
        {"batch_size": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShardingConfig(**kwargs)

    def test_resolve_executor_passthrough(self):
        assert resolve_executor("serial") == "serial"
        assert resolve_executor("auto") in ("serial", "process")


class TestSingleShardBitIdentity:
    """``shards=1`` must be indistinguishable from the wrapped summary."""

    def test_queries_identical_to_unsharded(self, small_stream):
        plain = Higgs(_config())
        plain.insert_stream(small_stream)
        sharded = ShardedSummary(_factory(), shards=1)
        sharded.insert_stream(small_stream)

        edges = sorted(small_stream.distinct_edges())[:80]
        vertices = sorted(small_stream.vertices())[:40]
        for t_start, t_end in _ranges(small_stream):
            for source, destination in edges:
                assert (sharded.edge_query(source, destination, t_start, t_end)
                        == plain.edge_query(source, destination, t_start, t_end))
            for vertex in vertices:
                for direction in ("out", "in"):
                    assert (sharded.vertex_query(vertex, t_start, t_end, direction)
                            == plain.vertex_query(vertex, t_start, t_end, direction))

    def test_composites_and_memory_identical(self, small_stream):
        plain = Higgs(_config())
        plain.insert_stream(small_stream)
        sharded = ShardedSummary(_factory(), shards=1)
        sharded.insert_stream(small_stream)

        edges = sorted(small_stream.distinct_edges())[:6]
        path = [edges[0][0], edges[0][1], edges[1][1], edges[2][1]]
        t_min, t_max = small_stream.time_span
        assert (sharded.path_query(path, t_min, t_max)
                == plain.path_query(path, t_min, t_max))
        assert (sharded.subgraph_query(edges, t_min, t_max)
                == plain.subgraph_query(edges, t_min, t_max))
        assert sharded.memory_bytes() == plain.memory_bytes()

    def test_structure_identical(self, small_stream):
        plain = Higgs(_config())
        plain.insert_stream(small_stream)
        sharded = ShardedSummary(_factory(), shards=1)
        sharded.insert_stream(small_stream)
        (inner,) = sharded.shard_summaries()
        assert inner.leaf_count == plain.leaf_count
        assert inner.height == plain.height
        assert inner.tree.items_inserted == plain.tree.items_inserted


class TestScatterGather:
    def test_sharded_result_is_sum_of_per_shard_results(self, small_stream):
        sharded = ShardedSummary(_factory(), shards=4, partition_by="source")
        sharded.insert_stream(small_stream)
        shards = sharded.shard_summaries()
        t_min, t_max = small_stream.time_span

        for source, destination in sorted(small_stream.distinct_edges())[:50]:
            expected = sum(s.edge_query(source, destination, t_min, t_max)
                           for s in shards)
            assert (sharded.edge_query(source, destination, t_min, t_max)
                    == pytest.approx(expected))
        for vertex in sorted(small_stream.vertices())[:25]:
            for direction in ("out", "in"):
                expected = sum(s.vertex_query(vertex, t_min, t_max, direction)
                               for s in shards)
                assert (sharded.vertex_query(vertex, t_min, t_max, direction)
                        == pytest.approx(expected))

    def test_every_item_lands_on_exactly_one_shard(self, small_stream):
        sharded = ShardedSummary(_factory(), shards=4)
        sharded.insert_stream(small_stream)
        assert sharded.items_ingested == len(small_stream)
        assert sum(sharded.shard_items()) == len(small_stream)
        inner_total = sum(s.tree.items_inserted for s in sharded.shard_summaries())
        assert inner_total == len(small_stream)

    def test_query_batch_matches_per_item_queries(self, small_stream):
        sharded = ShardedSummary(_factory(), shards=3, partition_by="source")
        sharded.insert_stream(small_stream)
        edges = sorted(small_stream.distinct_edges())
        t_min, t_max = small_stream.time_span
        queries = [
            EdgeQuery(*edges[0], t_min, t_max),
            VertexQuery(edges[1][0], t_min, t_max, "out"),
            VertexQuery(edges[2][1], t_min, t_max, "in"),
            PathQuery((edges[3][0], edges[3][1], edges[4][1]), t_min, t_max),
            SubgraphQuery(tuple(edges[5:8]), t_min, t_max),
            EdgeQuery(*edges[9], t_min, t_max),
        ]
        batched = sharded.query_batch(queries)
        singles = [query.evaluate(sharded) for query in queries]
        assert batched == singles

    def test_accuracy_matches_unsharded_at_equal_config(self, small_stream,
                                                        small_truth):
        """Sharding must not degrade estimates: same config per shard means
        the same collision regime, and shard sums are exact unions."""
        plain = Higgs(_config())
        plain.insert_stream(small_stream)
        sharded = ShardedSummary(_factory(), shards=4)
        sharded.insert_stream(small_stream)
        t_min, t_max = small_stream.time_span
        edges = sorted(small_stream.distinct_edges())[:60]
        plain_err = sharded_err = 0.0
        for source, destination in edges:
            truth = small_truth.edge_query(source, destination, t_min, t_max)
            plain_err += abs(plain.edge_query(source, destination, t_min, t_max)
                             - truth)
            sharded_err += abs(sharded.edge_query(source, destination, t_min, t_max)
                               - truth)
        assert sharded_err <= plain_err + 1e-9


class TestExecutors:
    @pytest.mark.lockgraph
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_agree(self, executor, small_stream, lock_monitor):
        with ShardedSummary(_factory(), shards=3, executor=executor) as sharded:
            sharded.insert_stream(small_stream)
            assert sharded.items_ingested == len(small_stream)
            t_min, t_max = small_stream.time_span
            results = [sharded.edge_query(s, d, t_min, t_max)
                       for s, d in sorted(small_stream.distinct_edges())[:30]]
        serial = ShardedSummary(_factory(), shards=3, executor="serial")
        serial.insert_stream(small_stream)
        expected = [serial.edge_query(s, d, t_min, t_max)
                    for s, d in sorted(small_stream.distinct_edges())[:30]]
        assert results == expected

    def test_process_mode_hides_shard_summaries(self):
        with ShardedSummary(_factory(), shards=2, executor="process") as sharded:
            sharded.insert("a", "b", 1.0, 5)
            assert sharded.edge_query("a", "b", 0, 10) >= 0.0
            with pytest.raises(ShardingError):
                sharded.shard_summaries()

    def test_process_factory_failure_raises(self):
        def boom():
            raise RuntimeError("no summary for you")
        with pytest.raises(ShardingError):
            make_shard_worker("process", boom)

    def test_dead_worker_process_surfaces_as_sharding_error(self, small_stream):
        """Killing a shard child mid-life must not desynchronize the engine:
        the failed operation raises ShardingError (never a raw OSError), and
        — with auto-recovery disabled — later scatters keep failing cleanly
        while the surviving shard still answers routed queries."""
        with ShardedSummary(_factory(), shards=2, executor="process",
                            snapshot=SnapshotConfig(auto_recover=False)) as sharded:
            sharded.insert_stream(small_stream)
            sharded._workers[1]._process.terminate()
            sharded._workers[1]._process.join(timeout=5)
            with pytest.raises(ShardingError):
                sharded.memory_bytes()
            # Pairing intact: a second scatter still fails cleanly, and the
            # surviving shard still answers routed queries.
            with pytest.raises(ShardingError):
                sharded.memory_bytes()
            partitioner = sharded.partitioner
            vertex = next(f"v{i}" for i in range(1000)
                          if partitioner.shard_of_vertex(f"v{i}") == 0)
            assert sharded.vertex_query(vertex, 0, 10**6, "out") >= 0.0

    def test_dead_worker_auto_recovers_by_default(self, small_stream):
        """With the default SnapshotConfig, the first failed operation still
        raises (no silent retry) but rebuilds the dead shard, so subsequent
        operations succeed; without a snapshot the shard restarts empty."""
        with ShardedSummary(_factory(), shards=2, executor="process") as sharded:
            sharded.insert_stream(small_stream)
            survivor_items = sharded.shard_items()[0]
            sharded._workers[1]._process.terminate()
            sharded._workers[1]._process.join(timeout=5)
            with pytest.raises(ShardingError):
                sharded.memory_bytes()
            assert all(worker.alive() for worker in sharded._workers)
            assert sharded.memory_bytes() >= 0
            assert sharded.shard_items() == (survivor_items, 0)

    def test_busy_seconds_accumulate(self, small_stream):
        sharded = ShardedSummary(_factory(), shards=2)
        sharded.insert_stream(small_stream)
        busy = sharded.shard_busy_seconds()
        assert len(busy) == 2
        assert all(b >= 0.0 for b in busy)
        assert sum(b > 0.0 for b in busy) >= 1


class _FailingSummary(TemporalGraphSummary):
    """Inserts normally until the fuse burns, then raises forever."""

    name = "failing"

    def __init__(self, fuse: int) -> None:
        self.fuse = fuse
        self.count = 0

    def insert(self, source, destination, weight, timestamp):
        if self.count >= self.fuse:
            raise RuntimeError("shard blew its fuse")
        self.count += 1

    def edge_query(self, source, destination, t_start, t_end):
        return 0.0

    def vertex_query(self, vertex, t_start, t_end, direction="out"):
        return 0.0

    def memory_bytes(self):
        return 0


class TestFailureSemantics:
    def _engine_with_one_failing_shard(self, fuse: int) -> ShardedSummary:
        sharded = ShardedSummary(_factory(), shards=2, partition_by="source")
        # Replace shard 1's summary with a failing stub (serial workers hold
        # their targets in-process).
        sharded._workers[1].target = _FailingSummary(fuse)
        return sharded

    def test_mid_batch_failure_keeps_accounting_consistent(self, small_stream):
        sharded = self._engine_with_one_failing_shard(fuse=10)
        edges = list(small_stream)[:400]
        partitioner = sharded.partitioner
        healthy = [e for e in edges
                   if partitioner.shard_of_edge(e.source, e.destination) == 0]
        with pytest.raises(ShardingError) as excinfo:
            sharded.insert_batch(edges)
        assert "shard(s) [1]" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The healthy shard's items were acknowledged and counted; the failed
        # shard contributed nothing to the engine's count.
        assert sharded.shard_items() == (len(healthy), 0)
        assert sharded.items_ingested == len(healthy)
        # The engine stays usable: the healthy shard still answers queries.
        source, destination = healthy[0].source, healthy[0].destination
        assert sharded.edge_query(source, destination, 0, 10**6) >= 0.0

    def test_single_insert_failure_reraises_original(self):
        sharded = self._engine_with_one_failing_shard(fuse=0)
        partitioner = sharded.partitioner
        vertex = next(f"v{i}" for i in range(1000)
                      if partitioner.shard_of_vertex(f"v{i}") == 1)
        with pytest.raises(RuntimeError):
            sharded.insert(vertex, "dst", 1.0, 1)
        assert sharded.items_ingested == 0


class TestValidation:
    def test_malformed_ranges_rejected_before_dispatch(self):
        sharded = ShardedSummary(_factory(), shards=2)
        with pytest.raises(QueryError):
            sharded.edge_query("a", "b", 10, 5)
        with pytest.raises(QueryError):
            sharded.vertex_query("a", -1, 5)
        with pytest.raises(QueryError):
            sharded.path_query(["a"], 0, 5)
        with pytest.raises(QueryError):
            sharded.subgraph_query([], 0, 5)
        with pytest.raises(QueryError):
            sharded.vertex_query("a", 0, 5, direction="sideways")

    def test_insert_stream_returns_acknowledged_count(self, small_stream):
        sharded = ShardedSummary(_factory(), shards=4, batch_size=64)
        assert sharded.insert_stream(small_stream) == len(small_stream)


class TestShardSkewGenerator:
    def test_reskew_concentrates_sources_on_hot_shards(self, small_stream):
        skewed = reskew_to_shards(small_stream, num_shards=4, hot_shards=1,
                                  hot_fraction=1.0)
        assert len(skewed) == len(small_stream)
        assert all(shard_of(edge.source, 4, 0) == 0 for edge in skewed)
        # Everything except sources is untouched.
        for original, rerouted in zip(small_stream, skewed, strict=True):
            assert rerouted.destination == original.destination
            assert rerouted.weight == original.weight
            assert rerouted.timestamp == original.timestamp

    def test_reskew_is_deterministic(self, small_stream):
        a = reskew_to_shards(small_stream, num_shards=4, hot_fraction=0.5, seed=5)
        b = reskew_to_shards(small_stream, num_shards=4, hot_fraction=0.5, seed=5)
        assert list(a) == list(b)

    def test_reskew_validates_arguments(self, small_stream):
        from repro.errors import DatasetError
        with pytest.raises(DatasetError):
            reskew_to_shards(small_stream, num_shards=4, hot_shards=5)
        with pytest.raises(DatasetError):
            reskew_to_shards(small_stream, num_shards=4, hot_fraction=1.5)

    def test_reskewed_stream_unbalances_source_partitioning(self, small_stream):
        skewed = reskew_to_shards(small_stream, num_shards=4, hot_shards=1,
                                  hot_fraction=1.0)
        partitioner = ShardPartitioner(4, partition_by="source")
        parts = partitioner.split(skewed)
        assert len(parts[0]) == len(skewed)


class TestAsyncBatchInterleaveGuard:
    """While an insert_batch_async handle is unresolved, every other engine
    operation must fail loudly instead of silently collecting the pending
    batch's shard results."""

    def _engine(self):
        from repro.baselines.exact import ExactTemporalGraph
        return ShardedSummary(ExactTemporalGraph, shards=2, executor="thread")

    def test_interleaved_operations_rejected_until_resolved(self):
        from repro.errors import ShardingError
        from repro.streams.edge import StreamEdge
        edges = [StreamEdge(f"s{i}", f"d{i}", 1.0, i) for i in range(10)]
        with self._engine() as engine:
            pending = engine.insert_batch_async(edges)
            with pytest.raises(ShardingError, match="unresolved"):
                engine.edge_query("s1", "d1", 0, 100)
            with pytest.raises(ShardingError, match="unresolved"):
                engine.insert_batch(edges)
            with pytest.raises(ShardingError, match="unresolved"):
                engine.quiesce(timeout=1.0)
            with pytest.raises(ShardingError, match="unresolved"):
                engine.insert_batch_async(edges)
            assert pending.result() == 10
            # Resolved: the engine serves normally again.
            assert engine.edge_query("s1", "d1", 0, 100) == 1.0
            engine.quiesce(timeout=5.0)
            assert engine.items_ingested == 10

    def test_empty_async_batch_needs_no_resolution(self):
        with self._engine() as engine:
            assert engine.insert_batch_async([]) is None
            engine.quiesce(timeout=5.0)  # nothing pending; must not raise


class TestShardingMetrics:
    """The engine's ``sharding_*`` metric families track real shard state."""

    def test_items_gauge_tracks_acknowledged_inserts(self):
        with ShardedSummary(_factory(), shards=3, executor="thread") as sharded:
            for i in range(30):
                sharded.insert(f"s{i % 7}", f"d{i % 5}", 1.0, i)
            items = sharded.metrics.get("sharding_shard_items")
            per_shard = [items.value(shard=str(s)) for s in range(3)]
            assert sum(per_shard) == 30.0
            assert per_shard == [float(n) for n in sharded.shard_items()]

    def test_shard_stats_sweep_refreshes_load_gauges(self):
        with ShardedSummary(_factory(), shards=2, executor="thread") as sharded:
            for i in range(20):
                sharded.insert(f"s{i}", f"d{i}", 1.0, i)
            stats = sharded.shard_stats()
            assert all(set(entry) == {"busy_seconds", "calls"}
                       for entry in stats)
            assert sum(entry["calls"] for entry in stats) >= 20
            busy = sharded.metrics.get("sharding_shard_busy_seconds")
            calls = sharded.metrics.get("sharding_shard_calls")
            for shard, entry in enumerate(stats):
                assert busy.value(shard=str(shard)) == entry["busy_seconds"]
                assert calls.value(shard=str(shard)) == float(entry["calls"])

    def test_migration_and_snapshot_counters(self, tmp_path):
        with ShardedSummary(
                _factory(), shards=2, executor="thread",
                snapshot=SnapshotConfig(directory=str(tmp_path))) as sharded:
            sharded.insert("a", "b", 1.0, 5)
            registry = sharded.metrics
            assert registry.get("sharding_migrations_total").value() == 0.0
            sharded.migrate_shard(0, executor="serial")
            assert registry.get("sharding_migrations_total").value() == 1.0
            sharded.snapshot()
            assert registry.get("sharding_snapshots_total").value() == 1.0
            # Nothing died: a recovery sweep is a no-op and counts nothing.
            assert sharded.recover_dead_shards() == []
            assert registry.get("sharding_recoveries_total").value() == 0.0

    def test_caller_provided_registry_shared_with_serving(self):
        from repro.observability import MetricsRegistry
        from repro.serving import ServingEngine

        registry = MetricsRegistry()
        with ShardedSummary(_factory(), shards=2, executor="thread",
                            registry=registry) as sharded, \
                ServingEngine(sharded, registry=registry) as engine:
            engine.submit_write(StreamEdge("a", "b", 1.0, 5)).result(30)
            assert sharded.metrics is registry
            text = registry.render_prometheus()
            # One dashboard covers both layers.
            assert "sharding_shard_items" in text
            assert "serving_epochs_total 1" in text


class TestWorkerStats:
    def test_worker_stats_round_trip(self):
        worker = make_shard_worker("thread", _factory(), name="stats-probe")
        try:
            assert worker.stats() == {"busy_seconds": 0.0, "calls": 0}
            result = worker.call("insert", "a", "b", 1.0, 5)
            assert result.ok
            stats = worker.stats()
            assert stats["calls"] == 1
            assert stats["busy_seconds"] >= 0.0
            # The reserved stats op itself never counts toward load.
            assert worker.stats()["calls"] == 1
        finally:
            worker.close()

    @pytest.mark.faultinject
    def test_dead_worker_reports_zeros(self):
        from faultinject import kill_inner_process

        worker = make_shard_worker("process", _factory(), name="dead-probe")
        try:
            assert worker.call("insert", "a", "b", 1.0, 5).ok
            kill_inner_process(worker)
            assert not worker.alive()
            # A metrics sweep over a pool with a crashed shard must still
            # complete: the dead worker contributes zeros, not an exception.
            assert worker.stats() == {"busy_seconds": 0.0, "calls": 0}
        finally:
            worker.close()
