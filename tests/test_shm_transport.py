"""The packed-edge shared-memory transport: ring allocator, wire format,
worker integration, and crash-safe segment cleanup.

The transport (``repro.core.shm``) must be invisible to correctness — a
packed batch read back by the child is edge-for-edge the list the parent
submitted — and invisible to resource accounting: whatever happens to the
worker (clean close, crash mid-transfer), the parent unlinks the segment
and nothing is left behind under ``/dev/shm``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import shm
from repro.core.config import set_pure_python
from repro.core.executor import make_shard_worker
from repro.errors import ShardingError
from repro.sharding import ShardedSummary
from repro.streams.edge import StreamEdge

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="numpy not importable; transport disabled")


def _edges(count, vertices=40):
    return [StreamEdge(f"v{i % vertices}", f"v{(i * 7 + 1) % vertices}",
                       float(i % 5 + 1), i) for i in range(count)]


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")


class TestPackedEdges:
    def test_round_trip_preserves_edges(self):
        edges = _edges(100)
        packed = shm.pack_edges(edges)
        assert len(packed) == 100
        assert list(packed) == edges

    def test_packed_arrays_match_batch_order(self):
        edges = _edges(50)
        packed = shm.pack_edges(edges)
        vertices, src, dst, weights, timestamps = packed.packed_arrays()
        for i, edge in enumerate(edges):
            assert vertices[src[i]] == edge.source
            assert vertices[dst[i]] == edge.destination
            assert weights[i] == edge.weight
            assert timestamps[i] == edge.timestamp

    def test_record_bytes_matches_dtype(self):
        assert shm.pack_edges(_edges(1)).records.nbytes == shm.RECORD_BYTES

    def test_pack_rejects_unconvertible_timestamp(self):
        bad = [StreamEdge("a", "b", 1.0, "not-a-time")]
        with pytest.raises((TypeError, ValueError)):
            shm.pack_edges(bad)


class TestRingAllocator:
    def _sender(self, capacity):
        return shm.ShmRingSender("ring-test", capacity=capacity)

    def test_fifo_alloc_and_free(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 100)
        try:
            refs = [sender.send(shm.pack_edges(_edges(10))) for _ in range(3)]
            assert [ref.offset for ref in refs] == [0, 240, 480]
            assert sender.live_regions == 3
            sender.free_oldest()
            sender.free_oldest()
            sender.free_oldest()
            assert sender.live_regions == 0
            # Empty ring resets the head: the next batch starts at zero.
            assert sender.send(shm.pack_edges(_edges(10))).offset == 0
        finally:
            sender.destroy()

    def test_wraps_before_oldest_live_region(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 100)
        try:
            first = sender.send(shm.pack_edges(_edges(40)))   # [0, 960)
            second = sender.send(shm.pack_edges(_edges(40)))  # [960, 1920)
            assert (first.offset, second.offset) == (0, 960)
            sender.free_oldest()                              # free [0, 960)
            # 30 more records do not fit in [1920, 2400) but do fit in the
            # freed prefix [0, 960) — the ring wraps.
            third = sender.send(shm.pack_edges(_edges(30)))
            assert third.offset == 0
        finally:
            sender.destroy()

    def test_full_ring_rejects_without_blocking(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 100)
        try:
            assert sender.send(shm.pack_edges(_edges(60))) is not None
            assert sender.send(shm.pack_edges(_edges(60))) is None
            assert sender.live_regions == 1
        finally:
            sender.destroy()

    def test_oversized_batch_rejected(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 8)
        try:
            assert sender.send(shm.pack_edges(_edges(9))) is None
        finally:
            sender.destroy()

    def test_cancel_last_restores_head(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 100)
        try:
            sender.send(shm.pack_edges(_edges(10)))
            ref = sender.send(shm.pack_edges(_edges(10)))
            sender.cancel_last()
            assert sender.live_regions == 1
            replay = sender.send(shm.pack_edges(_edges(10)))
            assert replay.offset == ref.offset
        finally:
            sender.destroy()

    def test_destroy_unlinks_segment_idempotently(self):
        sender = self._sender(capacity=shm.RECORD_BYTES * 10)
        name = sender.shm_name
        assert _segment_exists(name)
        sender.destroy()
        assert not _segment_exists(name)
        sender.destroy()  # second destroy is a no-op


@pytest.fixture()
def accelerated():
    set_pure_python(False)
    yield
    set_pure_python(None)


def _higgs_factory():
    from repro.sharding.engine import HiggsShardFactory
    return HiggsShardFactory()


class TestWorkerTransport:
    def test_process_worker_ships_packed_batches(self, accelerated):
        worker = make_shard_worker("process", _higgs_factory(),
                                   name="shm-probe")
        try:
            edges = _edges(200)
            result = worker.call("insert_batch", edges)
            assert result.ok and result.value == 200
            stats = worker.transport_stats()
            assert stats["packed_batches"] == 1
            assert stats["packed_bytes"] == 200 * shm.RECORD_BYTES
            assert stats["fallback_batches"] == 0
            assert stats["live_regions"] == 0  # freed when the result arrived
            # The child really ingested the packed form.
            assert worker.call("edge_query", "v0", "v1", 0, 300).value >= 1.0
        finally:
            worker.close()

    def test_small_batches_fall_through_to_pickle(self, accelerated):
        worker = make_shard_worker("process", _higgs_factory(),
                                   name="shm-small")
        try:
            result = worker.call("insert_batch",
                                 _edges(shm.MIN_PACK_EDGES - 1))
            assert result.ok
            assert worker.transport_stats()["packed_batches"] == 0
        finally:
            worker.close()

    def test_pure_python_mode_never_packs(self):
        set_pure_python(True)
        try:
            worker = make_shard_worker("process", _higgs_factory(),
                                       name="shm-pure")
            try:
                assert worker.call("insert_batch", _edges(200)).ok
                assert worker.transport_stats()["packed_batches"] == 0
            finally:
                worker.close()
        finally:
            set_pure_python(None)

    def test_packed_and_pickled_results_identical(self, accelerated):
        packed_worker = make_shard_worker("process", _higgs_factory(),
                                          name="shm-eq-a")
        inline_worker = make_shard_worker("serial", _higgs_factory(),
                                          name="shm-eq-b")
        try:
            edges = _edges(500)
            assert packed_worker.call("insert_batch", edges).value == 500
            assert inline_worker.call("insert_batch", edges).value == 500
            assert packed_worker.transport_stats()["packed_batches"] == 1
            for source, destination in {(e.source, e.destination)
                                        for e in edges}:
                a = packed_worker.call("edge_query", source, destination,
                                       0, 600).value
                b = inline_worker.call("edge_query", source, destination,
                                       0, 600).value
                assert a == b
        finally:
            packed_worker.close()
            inline_worker.close()

    def test_clean_close_unlinks_segment(self, accelerated):
        worker = make_shard_worker("process", _higgs_factory(),
                                   name="shm-close")
        assert worker.call("insert_batch", _edges(200)).ok
        name = worker._transport.shm_name
        assert _segment_exists(name)
        worker.close()
        assert not _segment_exists(name)

    @pytest.mark.faultinject
    def test_killed_worker_unlinks_segment(self, accelerated):
        from faultinject import kill_inner_process

        worker = make_shard_worker("process", _higgs_factory(),
                                   name="shm-kill")
        try:
            assert worker.call("insert_batch", _edges(200)).ok
            name = worker._transport.shm_name
            assert _segment_exists(name)
            kill_inner_process(worker)
            worker.submit("insert_batch", _edges(200))
            result = worker.collect()
            assert not result.ok
            assert isinstance(result.error, ShardingError)
            assert not worker.alive()
            assert not _segment_exists(name)
            assert worker.transport_stats()["live_regions"] == 0
        finally:
            worker.close()

    @pytest.mark.faultinject
    def test_engine_survives_shard_crash_without_leaking(self, accelerated):
        from faultinject import kill_worker

        engine = ShardedSummary(shards=2, executor="process")
        try:
            engine.insert_batch(_edges(400))
            names = [w._transport.shm_name for w in engine._workers
                     if w._transport is not None]
            assert names and all(_segment_exists(n) for n in names)
            kill_worker(engine, 0)
            with pytest.raises(ShardingError):
                engine.insert_batch(_edges(400))
                engine.memory_bytes()
            assert not _segment_exists(names[0])
        finally:
            engine.close()
        assert all(not _segment_exists(n) for n in names)


class TestEngineTransportStats:
    def test_process_engine_reports_packed_traffic(self, accelerated):
        engine = ShardedSummary(shards=2, executor="process")
        try:
            engine.insert_batch(_edges(400))
            stats = engine.transport_stats()
            assert stats["packed_batches"] >= 2
            assert stats["packed_bytes"] == 400 * shm.RECORD_BYTES
            rendered = engine.metrics.render_prometheus()
            assert ("sharding_transport_packed_batches "
                    f"{stats['packed_batches']}") in rendered
        finally:
            engine.close()

    def test_serial_engine_reports_zeros(self):
        engine = ShardedSummary(shards=2)
        try:
            engine.insert_batch(_edges(400))
            assert engine.transport_stats() == {
                "packed_batches": 0, "packed_bytes": 0,
                "fallback_batches": 0, "live_regions": 0}
            assert "transport" in engine.stats()
        finally:
            engine.close()
